//! Throughput and freshness accounting — the two quantities MVCom trades
//! off (paper §I: "the blockchain throughput can be significantly degraded
//! because of the large transaction's cumulative age") — plus the
//! fault-tolerance counters of the recovering epoch pipeline.

use mvcom_core::epoch_chain::EpochOutcome;
use mvcom_core::{Instance, Solution};
use mvcom_elastico::recovery::RobustnessReport;
use serde::{Deserialize, Serialize};

/// Metrics of one epoch's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Committees admitted.
    pub admitted: usize,
    /// Transactions admitted to the final block.
    pub admitted_txs: u64,
    /// The epoch deadline in seconds (when the final consensus can start).
    pub ddl_secs: f64,
    /// Total cumulative age of admitted transactions' shards, seconds.
    pub cumulative_age: f64,
    /// Mean waiting time per admitted *transaction*, seconds — cumulative
    /// age weighted by each shard's transaction count.
    pub mean_tx_age_secs: f64,
    /// Effective epoch throughput: admitted TXs per second of deadline.
    pub tps: f64,
}

impl ScheduleMetrics {
    /// Computes the metrics of `solution` under `instance`.
    pub fn compute(instance: &Instance, solution: &Solution) -> ScheduleMetrics {
        let admitted = solution.selected_count();
        let admitted_txs = solution.tx_total();
        let ddl_secs = instance.ddl().as_secs();
        let cumulative_age = instance.cumulative_age(solution);
        // TX-weighted waiting time.
        let weighted_age: f64 = solution
            .iter_selected()
            .map(|i| instance.age(i) * instance.shards()[i].tx_count() as f64)
            .sum();
        let mean_tx_age_secs = if admitted_txs == 0 {
            0.0
        } else {
            weighted_age / admitted_txs as f64
        };
        let tps = if ddl_secs > 0.0 {
            admitted_txs as f64 / ddl_secs
        } else {
            0.0
        };
        ScheduleMetrics {
            admitted,
            admitted_txs,
            ddl_secs,
            cumulative_age,
            mean_tx_age_secs,
            tps,
        }
    }
}

/// Aggregate metrics over a multi-epoch run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChainMetrics {
    /// Epochs aggregated.
    pub epochs: usize,
    /// Total admitted transactions.
    pub total_txs: u64,
    /// Sum of epoch deadlines — the root chain's busy time.
    pub total_ddl_secs: f64,
    /// Total cumulative age across epochs.
    pub total_age: f64,
    /// Overall throughput: total TXs / total deadline seconds.
    pub tps: f64,
    /// Shards still pending re-entry at the end of the run.
    pub pending_carryovers: usize,
}

impl ChainMetrics {
    /// Aggregates a sequence of [`EpochOutcome`]s.
    pub fn aggregate<'a, I>(outcomes: I, pending_carryovers: usize) -> ChainMetrics
    where
        I: IntoIterator<Item = &'a EpochOutcome>,
    {
        let mut m = ChainMetrics {
            pending_carryovers,
            ..ChainMetrics::default()
        };
        for o in outcomes {
            m.epochs += 1;
            m.total_txs += o.admitted_txs;
            m.total_ddl_secs += o.ddl.as_secs();
            m.total_age += o.cumulative_age;
        }
        if m.total_ddl_secs > 0.0 {
            m.tps = m.total_txs as f64 / m.total_ddl_secs;
        }
        m
    }
}

/// Flattened fault-tolerance counters of one or more recovering epochs,
/// ready for the CLI and experiment tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessMetrics {
    /// Epochs that carried robustness telemetry.
    pub epochs: usize,
    /// Heartbeat pings sent by the final committee.
    pub heartbeats_sent: u64,
    /// Heartbeats that went unanswered.
    pub heartbeats_missed: u64,
    /// Committees declared failed by the detector.
    pub failures_detected: u64,
    /// Committees classified as stragglers.
    pub stragglers: u64,
    /// Shard resubmission attempts beyond each first send.
    pub submission_retries: u64,
    /// Committees whose shard never arrived before the deadline.
    pub submissions_timed_out: u64,
    /// Messages dropped by the chaos injector (lossy links + outages).
    pub chaos_dropped: u64,
    /// Extra latency spikes injected.
    pub chaos_spiked: u64,
    /// Epochs whose final block lost at least one committee to a failure.
    pub degraded_epochs: usize,
}

impl RobustnessMetrics {
    /// Aggregates the [`RobustnessReport`]s of a sequence of epochs.
    pub fn aggregate<'a, I>(reports: I) -> RobustnessMetrics
    where
        I: IntoIterator<Item = &'a RobustnessReport>,
    {
        let mut m = RobustnessMetrics::default();
        for r in reports {
            m.epochs += 1;
            m.heartbeats_sent += r.heartbeats_sent;
            m.heartbeats_missed += r.heartbeats_missed;
            m.failures_detected += r.failures_detected.len() as u64;
            m.stragglers += r.stragglers.len() as u64;
            m.submission_retries += r.submission_retries;
            m.submissions_timed_out += r.submissions_timed_out.len() as u64;
            m.chaos_dropped += r.chaos.dropped + r.chaos.crash_dropped;
            m.chaos_spiked += r.chaos.spiked;
            if r.degraded {
                m.degraded_epochs += 1;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcom_core::problem::InstanceBuilder;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};

    fn instance() -> Instance {
        InstanceBuilder::new()
            .alpha(1.5)
            .capacity(10_000)
            .shards(vec![
                ShardInfo::new(
                    CommitteeId(0),
                    1_000,
                    TwoPhaseLatency::from_total(SimTime::from_secs(500.0)),
                ),
                ShardInfo::new(
                    CommitteeId(1),
                    2_000,
                    TwoPhaseLatency::from_total(SimTime::from_secs(1_000.0)),
                ),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn schedule_metrics_arithmetic() {
        let inst = instance();
        let sol = Solution::from_indices(2, [0, 1], &inst);
        let m = ScheduleMetrics::compute(&inst, &sol);
        assert_eq!(m.admitted, 2);
        assert_eq!(m.admitted_txs, 3_000);
        assert_eq!(m.ddl_secs, 1_000.0);
        // Ages: shard0 = 500, shard1 = 0 → cumulative 500.
        assert_eq!(m.cumulative_age, 500.0);
        // TX-weighted: (500·1000 + 0·2000) / 3000 ≈ 166.7 s.
        assert!((m.mean_tx_age_secs - 500_000.0 / 3_000.0).abs() < 1e-9);
        assert!((m.tps - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_selection_is_safe() {
        let inst = instance();
        let sol = Solution::empty(2);
        let m = ScheduleMetrics::compute(&inst, &sol);
        assert_eq!(m.admitted_txs, 0);
        assert_eq!(m.mean_tx_age_secs, 0.0);
        assert_eq!(m.tps, 0.0);
    }

    #[test]
    fn robustness_metrics_aggregate_over_epochs() {
        use mvcom_simnet::ChaosStats;
        let reports = [
            RobustnessReport {
                heartbeats_sent: 100,
                heartbeats_missed: 4,
                failures_detected: vec![(CommitteeId(2), SimTime::from_secs(2_000.0))],
                stragglers: vec![CommitteeId(5)],
                submission_retries: 3,
                submissions_timed_out: vec![],
                chaos: ChaosStats {
                    dropped: 7,
                    spiked: 2,
                    crash_dropped: 4,
                },
                degraded: true,
            },
            RobustnessReport {
                heartbeats_sent: 80,
                heartbeats_missed: 0,
                failures_detected: vec![],
                stragglers: vec![],
                submission_retries: 0,
                submissions_timed_out: vec![CommitteeId(9)],
                chaos: ChaosStats::default(),
                degraded: false,
            },
        ];
        let m = RobustnessMetrics::aggregate(&reports);
        assert_eq!(m.epochs, 2);
        assert_eq!(m.heartbeats_sent, 180);
        assert_eq!(m.heartbeats_missed, 4);
        assert_eq!(m.failures_detected, 1);
        assert_eq!(m.stragglers, 1);
        assert_eq!(m.submission_retries, 3);
        assert_eq!(m.submissions_timed_out, 1);
        assert_eq!(m.chaos_dropped, 11);
        assert_eq!(m.chaos_spiked, 2);
        assert_eq!(m.degraded_epochs, 1);
    }

    #[test]
    fn chain_metrics_aggregate() {
        use mvcom_core::epoch_chain::{EpochChain, EpochChainConfig};
        use mvcom_core::se::SeConfig;
        let config = EpochChainConfig {
            se: SeConfig::fast_test(1),
            ..EpochChainConfig::paper(1)
        };
        let mut chain = EpochChain::new(config).unwrap();
        let mut outcomes = Vec::new();
        for e in 0..3u32 {
            let shards: Vec<ShardInfo> = (0..12)
                .map(|i| {
                    ShardInfo::new(
                        CommitteeId(e * 100 + i),
                        900,
                        TwoPhaseLatency::from_total(SimTime::from_secs(
                            400.0 + f64::from(i) * 90.0,
                        )),
                    )
                })
                .collect();
            outcomes.push(chain.run_epoch(shards).unwrap());
        }
        let m = ChainMetrics::aggregate(&outcomes, chain.pending());
        assert_eq!(m.epochs, 3);
        assert!(m.total_txs > 0);
        assert!(m.tps > 0.0);
        assert_eq!(m.pending_carryovers, chain.pending());
    }
}
