//! The `mvcom` command-line tool.
//!
//! ```text
//! mvcom dataset generate [--blocks N] [--seed S] [--out FILE]
//! mvcom dataset stats <FILE>                      # JSON or CSV trace
//! mvcom schedule [--committees N] [--alpha A] [--capacity C]
//!                [--n-min K] [--solver se|sa|dp|woa|greedy|bnb]
//!                [--seed S] [--trace FILE]
//! mvcom simulate [--nodes N] [--epochs E] [--seed S] [--scheduler se|all]
//! ```

use std::process::ExitCode;

use mvcom::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("dataset") => dataset(&args[1..]),
        Some("schedule") => schedule(&args[1..]),
        Some("simulate") => simulate(&args[1..]),
        Some("--help" | "-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(Error::invalid_config(
            "subcommand",
            format!("unknown subcommand `{other}`"),
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         mvcom dataset generate [--blocks N] [--seed S] [--out FILE]\n  \
         mvcom dataset stats <FILE>\n  \
         mvcom schedule [--committees N] [--alpha A] [--capacity C] [--n-min K]\n           \
         [--solver se|sa|dp|woa|greedy|bnb] [--seed S] [--trace FILE]\n  \
         mvcom simulate [--nodes N] [--epochs E] [--seed S] [--scheduler se|all]"
    );
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
struct Flags {
    pairs: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = iter.next().ok_or_else(|| {
                    Error::invalid_config("flags", format!("--{key} needs a value"))
                })?;
                pairs.push((key.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Flags { pairs, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                Error::invalid_config("flags", format!("--{key} got a non-numeric value `{raw}`"))
            }),
        }
    }
}

fn load_trace(flags: &Flags, default_seed: u64) -> Result<Trace> {
    match flags.get("trace") {
        None => Ok(Trace::generate(
            TraceConfig::jan_2016(),
            flags.num("seed", default_seed)?,
        )),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| Error::invalid_config("trace", format!("reading {path}: {e}")))?;
            if text.trim_start().starts_with('{') {
                Trace::from_json(&text)
            } else {
                Trace::from_csv(&text)
            }
        }
    }
}

fn dataset(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args.get(1..).unwrap_or(&[]))?;
    match args.first().map(String::as_str) {
        Some("generate") => {
            let blocks: usize = flags.num("blocks", 1378usize)?;
            let seed: u64 = flags.num("seed", 2016u64)?;
            let trace = Trace::generate(TraceConfig::tiny(blocks), seed);
            let json = trace.to_json();
            match flags.get("out") {
                Some(path) => {
                    std::fs::write(path, &json).map_err(|e| {
                        Error::invalid_config("out", format!("writing {path}: {e}"))
                    })?;
                    println!(
                        "wrote {path}: {} blocks, {} TXs",
                        trace.blocks().len(),
                        trace.total_txs()
                    );
                }
                None => println!("{json}"),
            }
            Ok(())
        }
        Some("stats") => {
            let path = flags.positional.first().ok_or_else(|| {
                Error::invalid_config("dataset stats", "needs a trace file argument")
            })?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| Error::invalid_config("trace", format!("reading {path}: {e}")))?;
            let trace = if text.trim_start().starts_with('{') {
                Trace::from_json(&text)?
            } else {
                Trace::from_csv(&text)?
            };
            let blocks = trace.blocks();
            println!("blocks:        {}", blocks.len());
            println!("transactions:  {}", trace.total_txs());
            println!("mean txs/blk:  {:.1}", trace.mean_txs());
            println!(
                "time span:     {}s ({} → {})",
                blocks.last().map(|b| b.btime).unwrap_or(0) - blocks[0].btime,
                blocks[0].btime,
                blocks.last().map(|b| b.btime).unwrap_or(0),
            );
            Ok(())
        }
        _ => Err(Error::invalid_config(
            "dataset",
            "expected `generate` or `stats`",
        )),
    }
}

fn schedule(args: &[String]) -> Result<()> {
    use mvcom::baselines::{dp::DpConfig, sa::SaConfig, woa::WoaConfig};
    let flags = Flags::parse(args)?;
    let committees: usize = flags.num("committees", 50usize)?;
    let alpha: f64 = flags.num("alpha", 1.5f64)?;
    let seed: u64 = flags.num("seed", 0u64)?;
    let capacity: u64 = flags.num("capacity", 1_000 * committees as u64)?;
    let n_min: usize = flags.num("n-min", committees / 2)?;
    let solver = flags.get("solver").unwrap_or("se");

    let trace = load_trace(&flags, seed)?;
    let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), seed);
    let shards = gen.next_epoch_with_replacement(committees, 1)?;
    let instance = InstanceBuilder::new()
        .alpha(alpha)
        .capacity(capacity)
        .n_min(n_min)
        .shards(shards)
        .build()?;

    let (name, solution): (String, Solution) = match solver {
        "se" => {
            let outcome = SeEngine::new(&instance, SeConfig::paper(seed))?.run();
            ("SE".into(), outcome.best_solution)
        }
        "sa" => {
            let o = SaSolver::new(SaConfig::paper(seed)).solve(&instance)?;
            ("SA".into(), o.best_solution)
        }
        "dp" => {
            let o = DpSolver::new(DpConfig::paper()).solve(&instance)?;
            ("DP".into(), o.best_solution)
        }
        "woa" => {
            let o = WoaSolver::new(WoaConfig::paper(seed)).solve(&instance)?;
            ("WOA".into(), o.best_solution)
        }
        "greedy" => {
            let o = GreedySolver::new().solve(&instance)?;
            ("greedy".into(), o.best_solution)
        }
        "bnb" => {
            let o = BnbSolver::default().solve(&instance)?;
            ("branch-and-bound".into(), o.best_solution)
        }
        other => {
            return Err(Error::invalid_config(
                "solver",
                format!("unknown solver `{other}`"),
            ))
        }
    };
    let metrics = ScheduleMetrics::compute(&instance, &solution);
    println!(
        "{name} schedule over |I| = {} (α = {alpha}, Ĉ = {capacity}, N_min = {n_min}):",
        instance.len()
    );
    println!("  utility:          {:.1}", instance.utility(&solution));
    println!("  admitted:         {} committees", metrics.admitted);
    println!("  block txs:        {} / {capacity}", metrics.admitted_txs);
    println!("  deadline:         {:.1}s", metrics.ddl_secs);
    println!("  cumulative age:   {:.1}s", metrics.cumulative_age);
    println!("  mean tx age:      {:.1}s", metrics.mean_tx_age_secs);
    println!("  epoch throughput: {:.2} TX/s", metrics.tps);
    Ok(())
}

fn simulate(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    let nodes: u32 = flags.num("nodes", 240u32)?;
    let epochs: usize = flags.num("epochs", 3usize)?;
    let seed: u64 = flags.num("seed", 0u64)?;
    let scheduler = flags.get("scheduler").unwrap_or("all");
    let mut sim = ElasticoSim::new(ElasticoConfig::with_nodes(nodes, 12), seed)?;
    let mut se_selector = SeSelector::adaptive(seed, 0.6);
    for _ in 0..epochs {
        let report = match scheduler {
            "se" => sim.run_epoch_with(&mut se_selector)?,
            "all" => sim.run_epoch_with(&mut WaitForAll)?,
            other => {
                return Err(Error::invalid_config(
                    "scheduler",
                    format!("unknown scheduler `{other}` (use se|all)"),
                ))
            }
        };
        let start = report
            .shards
            .iter()
            .filter(|s| report.final_block.included.contains(&s.committee()))
            .map(|s| s.two_phase_latency())
            .max()
            .unwrap_or(SimTime::ZERO);
        println!(
            "epoch {}: {} committees, {} shards, {} admitted, final consensus from {:.0}s, block {} TXs ({})",
            report.epoch.value(),
            report.formed.len(),
            report.shards.len(),
            report.final_block.included.len(),
            start.as_secs(),
            report.final_block.total_txs,
            if report.final_block.committed { "committed" } else { "FAILED" },
        );
    }
    Ok(())
}
