//! The `mvcom` command-line tool.
//!
//! ```text
//! mvcom dataset generate [--blocks N] [--seed S] [--out FILE]
//! mvcom dataset stats <FILE>                      # JSON or CSV trace
//! mvcom solve    [--committees N] [--alpha A] [--capacity C]
//!                [--n-min K] [--solver se|par-se|sa|dp|woa|greedy|bnb]
//!                [--seed S] [--trace FILE] [--threads T]
//!                [--obs-out FILE] [--obs-level off|summary|events|trace]
//! mvcom simulate [--nodes N] [--epochs E] [--seed S] [--scheduler se|all]
//!                [--threads T]
//!                [--chaos-drop P] [--crash IDX@SECS[..SECS]] [--heartbeat SECS]
//!                [--adv-fraction P] [--adv-strategy misreport|freerider|starver]
//!                [--defense on|off]
//!                [--obs-out FILE] [--obs-level off|summary|events|trace]
//! ```
//!
//! `schedule` is accepted as an alias of `solve`.
//!
//! Any of `--chaos-drop`, `--crash`, `--heartbeat` switches `simulate` to
//! the fault-tolerant epoch runner: shards are submitted over a
//! chaos-wrapped network with retries, the final committee heartbeats the
//! member committees, and detected failures are trimmed out of the running
//! schedule. `--crash` may be repeated; `IDX` addresses the IDX-th
//! surviving shard's committee (see `submission_node`).
//!
//! `--adv-fraction` / `--adv-strategy` switch `simulate` to the
//! *strategic* fault model instead: the given fraction of committees lies
//! at formation time (see DESIGN.md §10). With `--defense on` (the
//! default) the SE scheduler runs behind the reputation layer —
//! median-of-window estimate correction, trust-weighted utility
//! discounting and quarantine-with-backoff; `--defense off` schedules on
//! the raw claims. Fractions (`--adv-fraction`, `--chaos-drop`) must lie
//! in `[0, 1]`. Adversarial and fault-tolerant modes are mutually
//! exclusive.
//!
//! `--obs-out FILE` streams the structured telemetry documented in
//! OBSERVABILITY.md as JSON Lines; `--obs-level` picks the verbosity
//! (default `events`). With telemetry on, `--solver par-se` runs the
//! deterministic lockstep emulation of the parallel runner, so the event
//! file is byte-identical across same-seed runs.

#![forbid(unsafe_code)]
use std::process::ExitCode;

use mvcom::obs::Value;
use mvcom::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("dataset") => dataset(&args[1..]),
        Some("solve" | "schedule") => solve(&args[1..]),
        Some("simulate") => simulate(&args[1..]),
        Some("daemon") => daemon(&args[1..]),
        Some("--help" | "-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(Error::invalid_config(
            "subcommand",
            format!("unknown subcommand `{other}`"),
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         mvcom dataset generate [--blocks N] [--seed S] [--out FILE]\n  \
         mvcom dataset stats <FILE>\n  \
         mvcom solve    [--committees N] [--alpha A] [--capacity C] [--n-min K]\n           \
         [--solver se|par-se|sa|dp|woa|greedy|bnb] [--seed S] [--trace FILE]\n           \
         [--threads T] [--obs-out FILE] [--obs-level off|summary|events|trace]\n  \
         mvcom simulate [--nodes N] [--epochs E] [--seed S] [--scheduler se|all]\n           \
         [--threads T]\n           \
         [--chaos-drop P] [--crash IDX@SECS[..SECS]] [--heartbeat SECS]\n           \
         [--adv-fraction P] [--adv-strategy misreport|freerider|starver]\n           \
         [--defense on|off]\n           \
         [--obs-out FILE] [--obs-level off|summary|events|trace]\n  \
         mvcom daemon   [--help for the full flag table]\n           \
         long-running scheduling service: streaming ingest, epoch history,\n           \
         crash recovery, metrics endpoint (see OPERATIONS.md)"
    );
}

/// Renders the daemon flag table from its single source of truth.
fn daemon_usage() -> String {
    let mut out = String::from(
        "usage: mvcom daemon [flags]\n\
         Long-running MVCom scheduling service (see OPERATIONS.md).\n\nflags:\n",
    );
    let width = mvcom::daemon::DAEMON_FLAGS
        .iter()
        .map(|f| f.flag.len() + 1 + f.value.len())
        .max()
        .unwrap_or(0);
    for spec in mvcom::daemon::DAEMON_FLAGS {
        let head = format!("{} {}", spec.flag, spec.value);
        let default = if spec.default.is_empty() {
            String::new()
        } else {
            format!(" [default: {}]", spec.default)
        };
        out.push_str(&format!("  {head:width$}  {}{default}\n", spec.help));
    }
    out
}

/// Builds the telemetry handle from `--obs-out` / `--obs-level` and emits
/// the `run_info` header. Without `--obs-out` the handle is disabled and
/// every emission downstream is a no-op.
fn obs_from_flags(flags: &Flags, tool: &str, seed: u64) -> Result<Obs> {
    let level = match flags.get("obs-level") {
        None => ObsLevel::Events,
        Some(raw) => ObsLevel::parse(raw).ok_or_else(|| {
            Error::invalid_config(
                "obs-level",
                format!("unknown level `{raw}` (use off|summary|events|trace)"),
            )
        })?,
    };
    let obs = match flags.get("obs-out") {
        None => Obs::off(),
        Some(path) => Obs::to_file(level, std::path::Path::new(path))
            .map_err(|e| Error::invalid_config("obs-out", format!("opening {path}: {e}")))?,
    };
    obs.emit(
        "run_info",
        0.0,
        &[
            ("tool", Value::from(tool)),
            ("schema", Value::U64(u64::from(mvcom::obs::SCHEMA_VERSION))),
            ("seed", Value::U64(seed)),
            ("level", Value::from(level.as_str())),
        ],
    );
    Ok(obs)
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
struct Flags {
    pairs: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = iter.next().ok_or_else(|| {
                    Error::invalid_config("flags", format!("--{key} needs a value"))
                })?;
                pairs.push((key.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Flags { pairs, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable flag, in order.
    fn all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.pairs
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                Error::invalid_config("flags", format!("--{key} got a non-numeric value `{raw}`"))
            }),
        }
    }

    /// A probability/fraction-valued flag: parsed as `f64` and validated
    /// to lie in `[0, 1]`, so a typo'd `--chaos-drop 20` fails here with a
    /// clear message instead of producing nonsense downstream.
    fn fraction(&self, key: &'static str, default: f64) -> Result<f64> {
        let value: f64 = self.num(key, default)?;
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(Error::invalid_config(
                key,
                format!("--{key} must be a fraction in [0, 1], got `{value}`"),
            ));
        }
        Ok(value)
    }
}

fn load_trace(flags: &Flags, default_seed: u64) -> Result<Trace> {
    match flags.get("trace") {
        None => Ok(Trace::generate(
            TraceConfig::jan_2016(),
            flags.num("seed", default_seed)?,
        )),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| Error::invalid_config("trace", format!("reading {path}: {e}")))?;
            if text.trim_start().starts_with('{') {
                Trace::from_json(&text)
            } else {
                Trace::from_csv(&text)
            }
        }
    }
}

fn dataset(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args.get(1..).unwrap_or(&[]))?;
    match args.first().map(String::as_str) {
        Some("generate") => {
            let blocks: usize = flags.num("blocks", 1378usize)?;
            let seed: u64 = flags.num("seed", 2016u64)?;
            let trace = Trace::generate(TraceConfig::tiny(blocks), seed);
            let json = trace.to_json();
            match flags.get("out") {
                Some(path) => {
                    std::fs::write(path, &json).map_err(|e| {
                        Error::invalid_config("out", format!("writing {path}: {e}"))
                    })?;
                    println!(
                        "wrote {path}: {} blocks, {} TXs",
                        trace.blocks().len(),
                        trace.total_txs()
                    );
                }
                None => println!("{json}"),
            }
            Ok(())
        }
        Some("stats") => {
            let path = flags.positional.first().ok_or_else(|| {
                Error::invalid_config("dataset stats", "needs a trace file argument")
            })?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| Error::invalid_config("trace", format!("reading {path}: {e}")))?;
            let trace = if text.trim_start().starts_with('{') {
                Trace::from_json(&text)?
            } else {
                Trace::from_csv(&text)?
            };
            let blocks = trace.blocks();
            println!("blocks:        {}", blocks.len());
            println!("transactions:  {}", trace.total_txs());
            println!("mean txs/blk:  {:.1}", trace.mean_txs());
            let (first_btime, last_btime) = match (blocks.first(), blocks.last()) {
                (Some(first), Some(last)) => (first.btime, last.btime),
                _ => (0, 0),
            };
            println!(
                "time span:     {}s ({} → {})",
                last_btime - first_btime,
                first_btime,
                last_btime,
            );
            Ok(())
        }
        _ => Err(Error::invalid_config(
            "dataset",
            "expected `generate` or `stats`",
        )),
    }
}

fn solve(args: &[String]) -> Result<()> {
    use mvcom::baselines::{dp::DpConfig, sa::SaConfig, solve_observed, woa::WoaConfig};
    let flags = Flags::parse(args)?;
    let committees: usize = flags.num("committees", 50usize)?;
    let alpha: f64 = flags.num("alpha", 1.5f64)?;
    let seed: u64 = flags.num("seed", 0u64)?;
    let capacity: u64 = flags.num("capacity", 1_000 * committees as u64)?;
    let n_min: usize = flags.num("n-min", committees / 2)?;
    let solver = flags.get("solver").unwrap_or("se");
    // SE replica fan-out (DESIGN.md §14): byte-identical to the serial
    // run at any count, so 0 is a hard error, not "auto".
    let threads: usize = flags.num("threads", 1usize)?;
    if threads == 0 {
        return Err(Error::invalid_config(
            "threads",
            "--threads must be >= 1 (use 1 for a serial run), got `0`",
        ));
    }

    let trace = load_trace(&flags, seed)?;
    let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), seed);
    let shards = gen.next_epoch_with_replacement(committees, 1)?;
    let instance = InstanceBuilder::new()
        .alpha(alpha)
        .capacity(capacity)
        .n_min(n_min)
        .shards(shards)
        .build()?;

    let obs = obs_from_flags(&flags, "mvcom solve", seed)?;
    let span = obs.span("solve", 0.0, &[("solver", Value::from(solver))]);
    let mut resets: Option<ResetStats> = None;
    // The logical end of the run on the solver's iteration clock.
    let mut t_end = 0.0f64;
    let (name, solution): (String, Solution) = match solver {
        "se" => {
            let outcome = SeEngine::new(&instance, SeConfig::paper(seed))?
                .with_threads(threads)
                .with_obs(obs.clone())
                .run();
            t_end = outcome.iterations as f64;
            obs.emit(
                "solver_done",
                t_end,
                &[
                    ("solver", Value::from("se")),
                    ("iters", Value::U64(outcome.iterations)),
                    ("best", Value::F64(outcome.best_utility)),
                ],
            );
            ("SE".into(), outcome.best_solution)
        }
        "par-se" => {
            let config = SeConfig::paper(seed);
            let runner = ParallelRunner::new(config);
            // With telemetry on, run the deterministic lockstep emulation
            // so the event file replays byte-identically per seed; the
            // threaded runner stays the fast path otherwise.
            let (_, solution, stats) = if obs.enabled(ObsLevel::Summary) {
                runner.run_lockstep(&instance, &obs)?
            } else {
                runner.run_with_stats(&instance)?
            };
            t_end = config.max_iterations as f64;
            resets = Some(stats);
            ("parallel SE".into(), solution)
        }
        "sa" => {
            let o = solve_observed(&SaSolver::new(SaConfig::paper(seed)), &instance, &obs)?;
            t_end = o.trajectory.last().map_or(0.0, |&(i, _)| i as f64);
            ("SA".into(), o.best_solution)
        }
        "dp" => {
            let o = solve_observed(&DpSolver::new(DpConfig::paper()), &instance, &obs)?;
            ("DP".into(), o.best_solution)
        }
        "woa" => {
            let o = solve_observed(&WoaSolver::new(WoaConfig::paper(seed)), &instance, &obs)?;
            t_end = o.trajectory.last().map_or(0.0, |&(i, _)| i as f64);
            ("WOA".into(), o.best_solution)
        }
        "greedy" => {
            let o = solve_observed(&GreedySolver::new(), &instance, &obs)?;
            ("greedy".into(), o.best_solution)
        }
        "bnb" => {
            let o = solve_observed(&BnbSolver::default(), &instance, &obs)?;
            ("branch-and-bound".into(), o.best_solution)
        }
        other => {
            return Err(Error::invalid_config(
                "solver",
                format!("unknown solver `{other}`"),
            ))
        }
    };
    let metrics = ScheduleMetrics::compute(&instance, &solution);
    println!(
        "{name} schedule over |I| = {} (α = {alpha}, Ĉ = {capacity}, N_min = {n_min}):",
        instance.len()
    );
    println!("  utility:          {:.1}", instance.utility(&solution));
    println!("  admitted:         {} committees", metrics.admitted);
    println!("  block txs:        {} / {capacity}", metrics.admitted_txs);
    println!("  deadline:         {:.1}s", metrics.ddl_secs);
    println!("  cumulative age:   {:.1}s", metrics.cumulative_age);
    println!("  mean tx age:      {:.1}s", metrics.mean_tx_age_secs);
    println!("  epoch throughput: {:.2} TX/s", metrics.tps);
    if let Some(r) = resets {
        println!(
            "  RESET signals:    {} broadcast, {} applied, {} ignored stale",
            r.broadcast, r.applied, r.ignored_stale
        );
    }
    span.close(t_end);
    obs.flush_metrics(t_end);
    obs.flush();
    if let Some(table) = obs.metrics_table() {
        println!("metrics:\n{table}");
    }
    Ok(())
}

/// Parses a `--crash` operand: `IDX@SECS` (permanent) or
/// `IDX@SECS..SECS` (crash then restart).
fn parse_crash(raw: &str) -> Result<CrashEvent> {
    let bad = |why: &str| Error::invalid_config("crash", format!("`{raw}`: {why}"));
    let (idx, times) = raw
        .split_once('@')
        .ok_or_else(|| bad("expected IDX@SECS or IDX@SECS..SECS"))?;
    let idx: usize = idx.parse().map_err(|_| bad("IDX must be an integer"))?;
    let node = submission_node(idx);
    match times.split_once("..") {
        None => {
            let at: f64 = times.parse().map_err(|_| bad("SECS must be a number"))?;
            Ok(CrashEvent::permanent(node, SimTime::from_secs(at)))
        }
        Some((at, restart)) => {
            let at: f64 = at.parse().map_err(|_| bad("crash SECS must be a number"))?;
            let restart: f64 = restart
                .parse()
                .map_err(|_| bad("restart SECS must be a number"))?;
            Ok(CrashEvent::with_restart(
                node,
                SimTime::from_secs(at),
                SimTime::from_secs(restart),
            ))
        }
    }
}

fn simulate(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    let nodes: u32 = flags.num("nodes", 240u32)?;
    let epochs: usize = flags.num("epochs", 3usize)?;
    let seed: u64 = flags.num("seed", 0u64)?;
    let scheduler = flags.get("scheduler").unwrap_or("all");
    let chaos_drop: f64 = flags.fraction("chaos-drop", 0.0)?;
    let crashes: Vec<CrashEvent> = flags.all("crash").map(parse_crash).collect::<Result<_>>()?;
    let fault_tolerant = flags.get("chaos-drop").is_some()
        || flags.get("heartbeat").is_some()
        || !crashes.is_empty();
    if !matches!(scheduler, "se" | "all") {
        return Err(Error::invalid_config(
            "scheduler",
            format!("unknown scheduler `{scheduler}` (use se|all)"),
        ));
    }
    let adv_fraction: f64 = flags.fraction("adv-fraction", 0.0)?;
    let adversarial = flags.get("adv-fraction").is_some() || flags.get("adv-strategy").is_some();
    let defense_on = match flags.get("defense") {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            return Err(Error::invalid_config(
                "defense",
                format!("unknown defense mode `{other}` (use on|off)"),
            ))
        }
    };
    if adversarial && fault_tolerant {
        return Err(Error::invalid_config(
            "adv-fraction",
            "adversarial mode does not compose with --chaos-drop/--crash/--heartbeat; \
             run the two fault models separately",
        ));
    }

    // Committee-parallel stage 3 (DESIGN.md §11): byte-identical to the
    // serial run at any count, so 0 is a hard error, not "auto".
    let threads: usize = flags.num("threads", 1usize)?;
    if threads == 0 {
        return Err(Error::invalid_config(
            "threads",
            "--threads must be >= 1 (use 1 for a serial run), got `0`",
        ));
    }
    let obs = obs_from_flags(&flags, "mvcom simulate", seed)?;
    let mut sim = ElasticoSim::new(ElasticoConfig::with_nodes(nodes, 12), seed)?
        .with_obs(obs.clone())
        .with_threads(threads);
    let mut se_selector = SeSelector::adaptive(seed, 0.6).with_obs(obs.clone());
    let recovery = {
        let mut chaos = ChaosConfig::lossy(chaos_drop);
        chaos.crashes = crashes;
        RecoveryConfig {
            chaos,
            heartbeat: HeartbeatConfig {
                interval: SimTime::from_secs(flags.num("heartbeat", 30.0f64)?),
                ..HeartbeatConfig::paper()
            },
            ..RecoveryConfig::paper()
        }
    };
    // Adversarial mode keeps one adversary and one reputation engine alive
    // across epochs — the defense's value is exactly its memory.
    let adversary = if adversarial {
        Some(build_adversary(
            flags.get("adv-strategy").unwrap_or("misreport"),
            AdversaryConfig::new(adv_fraction, seed)?,
        )?)
    } else {
        None
    };
    let mut defended = DefendedSeSelector::new(
        SeSelector::adaptive(seed, 0.6).with_obs(obs.clone()),
        DefenseEngine::new(DefenseConfig::paper())?.with_obs(obs.clone()),
    );
    let mut robustness_reports = Vec::new();
    for _ in 0..epochs {
        let mut adversary_reports = Vec::new();
        let report = match &adversary {
            Some(adversary) => {
                let (report, reports) = match (scheduler, defense_on) {
                    ("se", true) => defended.run_epoch(&mut sim, adversary.as_ref())?,
                    ("se", false) => {
                        sim.run_epoch_adversarial(&mut se_selector, adversary.as_ref())?
                    }
                    _ => sim.run_epoch_adversarial(&mut WaitForAll, adversary.as_ref())?,
                };
                adversary_reports = reports;
                report
            }
            None => match (scheduler, fault_tolerant) {
                ("se", false) => sim.run_epoch_with(&mut se_selector)?,
                ("all", false) => sim.run_epoch_with(&mut WaitForAll)?,
                ("se", true) => {
                    let mut selector =
                        SeRecoverySelector::adaptive(seed, 0.6).with_obs(obs.clone());
                    sim.run_epoch_recovering(&mut selector, &recovery)?
                }
                ("all", true) => {
                    sim.run_epoch_recovering(&mut SurvivorsOnly::default(), &recovery)?
                }
                _ => unreachable!("scheduler validated above"),
            },
        };
        let start = report
            .shards
            .iter()
            .filter(|s| report.final_block.included.contains(&s.committee()))
            .map(|s| s.two_phase_latency())
            .max()
            .unwrap_or(SimTime::ZERO);
        println!(
            "epoch {}: {} committees, {} shards, {} admitted, final consensus from {:.0}s, block {} TXs ({})",
            report.epoch.value(),
            report.formed.len(),
            report.shards.len(),
            report.final_block.included.len(),
            start.as_secs(),
            report.final_block.total_txs,
            if report.final_block.committed { "committed" } else { "FAILED" },
        );
        if let Some(adversary) = &adversary {
            let liars: Vec<_> = adversary_reports.iter().filter(|r| r.adversarial).collect();
            let admitted_liars = liars
                .iter()
                .filter(|r| report.final_block.included.contains(&r.committee()))
                .count();
            let quarantined = adversary_reports
                .iter()
                .filter(|r| {
                    defended
                        .defense
                        .is_quarantined(r.committee(), report.epoch.value())
                })
                .count();
            println!(
                "  adversary: {} × {} committee(s), {} admitted into the block, \
                 defense {} ({} quarantined)",
                liars.len(),
                adversary.name(),
                admitted_liars,
                if defense_on { "on" } else { "off" },
                quarantined,
            );
        }
        if obs.enabled(ObsLevel::Summary) {
            let mut table = mvcom::obs::Table::new(&[
                "committee",
                "members",
                "txs",
                "form s",
                "pbft s",
                "status",
                "admitted",
            ]);
            for (cid, res) in &report.consensus {
                let members = report
                    .formed
                    .iter()
                    .find(|c| c.id == *cid)
                    .map_or(0, |c| c.members.len());
                let formation = report
                    .formed
                    .iter()
                    .find(|c| c.id == *cid)
                    .map_or(0.0, |c| c.formation_latency.as_secs());
                let txs = report
                    .shards
                    .iter()
                    .find(|s| s.committee() == *cid)
                    .map_or(0, ShardInfo::tx_count);
                table.row(&[
                    cid.value().to_string(),
                    members.to_string(),
                    txs.to_string(),
                    format!("{formation:.0}"),
                    format!("{:.0}", res.latency.as_secs()),
                    if res.committed { "committed" } else { "failed" }.to_string(),
                    if report.final_block.included.contains(cid) {
                        "yes"
                    } else {
                        "no"
                    }
                    .to_string(),
                ]);
            }
            print!("{}", table.render());
        }
        if let Some(r) = report.robustness {
            println!(
                "  robustness: {} heartbeats ({} missed), {} failures detected, {} stragglers, \
                 {} submission retries, {} timed out, {} chaos drops{}",
                r.heartbeats_sent,
                r.heartbeats_missed,
                r.failures_detected.len(),
                r.stragglers.len(),
                r.submission_retries,
                r.submissions_timed_out.len(),
                r.chaos.dropped + r.chaos.crash_dropped,
                if r.degraded { " [degraded]" } else { "" },
            );
            for (committee, at) in &r.failures_detected {
                println!("    failure: {committee} detected at {:.0}s", at.as_secs());
            }
            robustness_reports.push(r);
        }
    }
    if robustness_reports.len() > 1 {
        let m = RobustnessMetrics::aggregate(&robustness_reports);
        println!(
            "total over {} epochs: {} heartbeats ({} missed), {} failures, {} retries, \
             {} chaos drops, {} degraded epochs",
            m.epochs,
            m.heartbeats_sent,
            m.heartbeats_missed,
            m.failures_detected,
            m.submission_retries,
            m.chaos_dropped,
            m.degraded_epochs,
        );
    }
    obs.flush_metrics(0.0);
    obs.flush();
    if let Some(table) = obs.metrics_table() {
        println!("metrics:\n{table}");
    }
    Ok(())
}

/// Maps a daemon-crate error into the CLI's error type.
fn daemon_err(e: mvcom::daemon::DaemonError) -> Error {
    Error::invalid_config("daemon", e.to_string())
}

/// The `mvcom daemon` subcommand: the long-running scheduling service.
/// Flags are defined by [`mvcom::daemon::DAEMON_FLAGS`]; semantics are
/// documented in OPERATIONS.md.
fn daemon(args: &[String]) -> Result<()> {
    use mvcom::daemon::{
        AlertConfig, AlertEngine, Daemon, DaemonConfig, IngestSource, JsonlSource, MetricsServer,
        SeededSource, Startup,
    };

    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", daemon_usage());
        return Ok(());
    }
    let flags = Flags::parse(args)?;
    let config = DaemonConfig {
        seed: flags.num("seed", 7)?,
        population: flags.num("committees", 96)?,
        batch_size: flags.num("batch-size", 8)?,
        reports_per_epoch: flags.num("epoch-reports", 48)?,
        batch_interval_s: flags.num("batch-interval", 0.5)?,
        alpha: flags.num("alpha", 1.5)?,
        capacity_per_committee: flags.num("capacity", 1000)?,
        n_min_fraction: flags.fraction("n-min-frac", 0.5)?,
        defense: match flags.get("defense") {
            None | Some("off") => false,
            Some("on") => true,
            Some(other) => {
                return Err(Error::invalid_config(
                    "defense",
                    format!("--defense takes on|off, got `{other}`"),
                ))
            }
        },
        adv_fraction: flags.fraction("adv-fraction", 0.0)?,
        adv_strategy: flags.get("adv-strategy").unwrap_or("").to_string(),
        se_iterations: flags.num("se-iters", 0)?,
        max_epochs: flags.num("epochs", 0)?,
        throttle_ms: flags.num("throttle-ms", 0)?,
    };
    let source: Box<dyn IngestSource> = match flags.get("source") {
        None | Some("seeded") => {
            if u64::from(config.reports_per_epoch) > u64::from(config.population) {
                return Err(Error::invalid_config(
                    "epoch-reports",
                    format!(
                        "--epoch-reports ({}) must not exceed --committees ({}) for a \
                         seeded stream: an epoch would contain duplicate committees",
                        config.reports_per_epoch, config.population
                    ),
                ));
            }
            Box::new(SeededSource::new(config.seed, config.population).map_err(daemon_err)?)
        }
        Some("stdin") => Box::new(JsonlSource::new(std::io::stdin().lock())),
        Some(other) => {
            return Err(Error::invalid_config(
                "source",
                format!("--source takes seeded|stdin, got `{other}`"),
            ))
        }
    };
    let alert_threshold = |key: &'static str| -> Result<Option<f64>> {
        match flags.get(key) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| {
                Error::invalid_config("flags", format!("--{key} got a non-numeric value `{raw}`"))
            }),
        }
    };
    let mut alerts = AlertEngine::new(AlertConfig {
        min_utility: alert_threshold("alert-min-utility")?,
        min_admitted: alert_threshold("alert-min-admitted")?.map(|v: f64| v as u64),
        max_quarantined: alert_threshold("alert-max-quarantined")?.map(|v: f64| v as u64),
    });
    alerts.on_alert(|a| {
        eprintln!(
            "ALERT epoch={} kind={} threshold={} observed={}",
            a.epoch,
            a.kind.name(),
            a.threshold,
            a.observed,
        );
    });
    let level = match flags.get("obs-level") {
        None => ObsLevel::Summary,
        Some(raw) => ObsLevel::parse(raw).ok_or_else(|| {
            Error::invalid_config(
                "obs-level",
                format!("unknown level `{raw}` (use off|summary|events|trace)"),
            )
        })?,
    };
    let obs = match flags.get("obs-out") {
        None => Obs::off(),
        Some(path) => Obs::to_file(level, std::path::Path::new(path))
            .map_err(|e| Error::invalid_config("obs-out", format!("opening {path}: {e}")))?,
    };
    obs.emit(
        "run_info",
        0.0,
        &[
            ("tool", Value::from("daemon")),
            ("schema", Value::U64(u64::from(mvcom::obs::SCHEMA_VERSION))),
            ("seed", Value::U64(config.seed)),
            ("level", Value::from(level.as_str())),
        ],
    );
    let history_path = flags
        .get("history")
        .unwrap_or("mvcom-history.log")
        .to_string();
    let resume = match flags.get("resume") {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => {
            return Err(Error::invalid_config(
                "resume",
                format!("--resume takes on|off, got `{other}`"),
            ))
        }
    };
    let mut daemon = Daemon::open(
        config,
        source,
        std::path::Path::new(&history_path),
        resume,
        obs,
        alerts,
    )
    .map_err(daemon_err)?;
    if let Startup::Resumed {
        epochs,
        cursor,
        dropped_bytes,
    } = daemon.startup()
    {
        eprintln!(
            "resumed from {history_path}: {epochs} epoch(s) replayed, ingest cursor {cursor}, \
             {dropped_bytes} torn byte(s) truncated"
        );
    }
    let _server = match flags.get("http") {
        None | Some("") => None,
        Some(addr) => {
            let server = MetricsServer::start(addr, daemon.snapshot_cell())
                .map_err(|e| Error::invalid_config("http", format!("binding {addr}: {e}")))?;
            eprintln!(
                "metrics endpoint listening on http://{}/metrics",
                server.addr()
            );
            Some(server)
        }
    };
    let closed = daemon
        .run(|s| {
            println!(
                "epoch {}: {} reports ({} adversarial, {} quarantined), \
                 {} admitted / {} offered txs, utility {:.2}",
                s.epoch,
                s.reports,
                s.adversarial,
                s.quarantined,
                s.admitted_txs,
                s.offered_txs,
                s.utility,
            );
        })
        .map_err(daemon_err)?;
    println!(
        "daemon: {closed} epoch(s) closed this run, history {} bytes at {history_path}",
        daemon.history_bytes(),
    );
    Ok(())
}
