//! **MVCom** — scheduling the Most Valuable Committees for a large-scale
//! sharded blockchain.
//!
//! A production-quality Rust reproduction of *"MVCom: Scheduling Most
//! Valuable Committees for the Large-Scale Sharded Blockchain"* (Huang,
//! Huang, Peng, Zheng, Guo — IEEE ICDCS 2021). The workspace contains the
//! paper's contribution and every substrate it runs on:
//!
//! | Layer | Crate | What it provides |
//! |-------|-------|------------------|
//! | scheduler | [`mvcom_core`] | the MVCom problem, the Stochastic-Exploration engine, online dynamics, theory |
//! | baselines | [`mvcom_baselines`] | SA, DP, WOA, greedy, exhaustive |
//! | service | [`mvcom_daemon`] | the long-running scheduling daemon: streaming ingest, crash-safe epoch history, metrics endpoint |
//! | protocol | [`mvcom_elastico`] | the five-stage sharding epoch (PoW, formation, PBFT, final consensus, randomness) |
//! | consensus | [`mvcom_pbft`] | single-decision PBFT with view changes and Byzantine behaviours |
//! | substrate | [`mvcom_simnet`] | discrete-event engine, P2P network, latency models, statistics |
//! | data | [`mvcom_dataset`] | Bitcoin-like transaction trace and epoch shard sampling |
//! | types | [`mvcom_types`] | shared ids, time, latency, errors |
//!
//! This facade crate re-exports the public API and contributes the glue
//! type that the layering keeps out of the lower crates: [`SeSelector`],
//! which runs the SE scheduler inside an Elastico final committee.
//!
//! # Quick start: schedule one epoch
//!
//! ```
//! use mvcom::prelude::*;
//!
//! # fn main() -> Result<(), mvcom::Error> {
//! // Build an epoch from the synthetic Bitcoin-like trace.
//! let trace = Trace::generate(TraceConfig::tiny(300), 7);
//! let mut epochs = EpochGenerator::new(&trace, LatencyConfig::paper(), 7);
//! let shards = epochs.next_epoch_with_replacement(50, 1)?;
//!
//! // Formulate MVCom with the paper's defaults: Ĉ = 1000·|I|, N_min = 50%.
//! let instance = InstanceBuilder::new()
//!     .alpha(1.5)
//!     .capacity(50 * 1000)
//!     .n_min(25)
//!     .shards(shards)
//!     .build()?;
//!
//! // Schedule with Stochastic Exploration.
//! let outcome = SeEngine::new(&instance, SeConfig::paper(7))?.run();
//! assert!(instance.is_feasible(&outcome.best_solution));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;

pub use mvcom_baselines as baselines;
pub use mvcom_core as core;
pub use mvcom_daemon as daemon;
pub use mvcom_dataset as dataset;
pub use mvcom_elastico as elastico;
pub use mvcom_obs as obs;
pub use mvcom_pbft as pbft;
pub use mvcom_simnet as simnet;
pub use mvcom_types as types;

pub use mvcom_types::{Error, Result};

use mvcom_core::defense::{DefenseConfig, DefenseEngine, DefenseObservation};
use mvcom_core::dynamics::{DynamicsPolicy, EventRecord};
use mvcom_core::problem::InstanceBuilder;
use mvcom_core::se::{SeConfig, SeEngine};
use mvcom_dataset::{Adversary, CommitteeReport};
use mvcom_elastico::epoch::{ElasticoSim, EpochReport, ShardSelector};
use mvcom_elastico::recovery::RecoverySelector;
use mvcom_types::{CommitteeId, Result as MvResult, ShardInfo};

/// Everything most programs need, one import away.
pub mod prelude {
    pub use mvcom_baselines::{
        BnbSolver, DpSolver, ExhaustiveSolver, GreedySolver, SaSolver, Solver, SolverOutcome,
        WoaSolver,
    };
    pub use mvcom_core::defense::{
        DefenseCheckpoint, DefenseConfig, DefenseEngine, DefenseObservation, ScreenedReport,
    };
    pub use mvcom_core::dynamics::{run_online, DynamicsPolicy, EventKind, TimedEvent};
    pub use mvcom_core::epoch_chain::{EpochCapacity, EpochChain, EpochChainConfig, EpochOutcome};
    pub use mvcom_core::problem::InstanceBuilder;
    pub use mvcom_core::se::{
        ParallelRunner, ResetStats, SeCheckpoint, SeConfig, SeEngine, SeOutcome,
    };
    pub use mvcom_core::{DdlPolicy, Instance, Solution};
    pub use mvcom_dataset::{
        build_adversary, Adversary, AdversaryConfig, CommitteeReport, EpochGenerator, Freerider,
        LatencyConfig, Misreport, Starver, StrategicPopulation, Trace, TraceConfig,
    };
    pub use mvcom_elastico::detector::{CommitteeHealth, HeartbeatConfig, HeartbeatMonitor};
    pub use mvcom_elastico::epoch::{ElasticoConfig, ElasticoSim, ShardSelector, WaitForAll};
    pub use mvcom_elastico::recovery::{
        submission_node, RecoveryConfig, RecoverySelector, RobustnessReport, SurvivorsOnly,
        FINAL_NODE,
    };
    pub use mvcom_obs::{Obs, ObsLevel};
    pub use mvcom_simnet::{ChaosConfig, ChaosInjector, ChaosStats, CrashEvent};
    pub use mvcom_types::{
        CommitteeId, EpochId, Error, Hash32, NodeId, Result, ShardInfo, SimTime, TwoPhaseLatency,
    };

    pub use crate::metrics::{ChainMetrics, RobustnessMetrics, ScheduleMetrics};
    pub use crate::{CapacityRule, DefendedSeSelector, SeRecoverySelector, SeSelector};
}

/// An Elastico [`ShardSelector`] backed by the MVCom Stochastic-Exploration
/// scheduler — the paper's system, end to end.
///
/// At each epoch's stage 4 the selector:
/// 1. applies the arrival cutoff `N_max` (the final committee stops
///    listening once the configured fraction of committees has submitted —
///    Alg. 1 lines 29–30), keeping the earliest arrivals;
/// 2. builds the MVCom instance with `N_min = n_min_fraction · |I_j|` and
///    capacity `Ĉ = capacity_per_committee · |I_j|` (the paper's scaling);
/// 3. runs [`SeEngine`] and admits the converged selection.
///
/// # Example
///
/// ```
/// use mvcom::SeSelector;
/// use mvcom::elastico::epoch::{ElasticoConfig, ElasticoSim};
///
/// # fn main() -> Result<(), mvcom::Error> {
/// let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 11)?;
/// let mut selector = SeSelector::paper(11);
/// let report = sim.run_epoch_with(&mut selector)?;
/// assert!(report.final_block.committed);
/// assert!(!report.final_block.included.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SeSelector {
    /// The throughput weight `α`.
    pub alpha: f64,
    /// How the final-block capacity `Ĉ` is derived from the epoch.
    pub capacity: CapacityRule,
    /// `N_min` as a fraction of the arrived committees (paper: 0.5).
    pub n_min_fraction: f64,
    /// Arrival cutoff `N_max` as a fraction of submitted shards
    /// (paper: 0.8).
    pub n_max_fraction: f64,
    /// The SE engine configuration.
    pub se: SeConfig,
    obs: mvcom_obs::Obs,
}

/// How a [`SeSelector`] derives the final-block capacity `Ĉ` for an epoch.
///
/// The paper's experiments fix `Ĉ = 1000·|I_j|` because its dataset packs
/// ~1000 TXs per shard; real epochs have shard sizes set by the workload,
/// so a fraction-of-load rule keeps the knapsack meaningfully tight at any
/// scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityRule {
    /// `Ĉ = per_committee · |I_j|` — the paper's rule.
    PerCommittee(u64),
    /// `Ĉ = fraction · Σ_i s_i` over the shards that survived the arrival
    /// cutoff; the fraction is clamped to `(0, 1]`.
    FractionOfLoad(f64),
}

impl CapacityRule {
    fn capacity(&self, shards: &[ShardInfo]) -> u64 {
        match *self {
            CapacityRule::PerCommittee(per) => per.saturating_mul(shards.len() as u64),
            CapacityRule::FractionOfLoad(fraction) => {
                let total: u64 = shards.iter().map(|s| s.tx_count()).sum();
                let f = fraction.clamp(f64::EPSILON, 1.0);
                ((total as f64) * f).round().max(1.0) as u64
            }
        }
    }
}

impl SeSelector {
    /// The paper's §VI-A defaults: `α = 1.5`, `Ĉ = 1000·|I|`,
    /// `N_min = 50%·|I|`, `N_max = 80%`.
    pub fn paper(seed: u64) -> SeSelector {
        SeSelector {
            alpha: 1.5,
            capacity: CapacityRule::PerCommittee(1_000),
            n_min_fraction: 0.5,
            n_max_fraction: 0.8,
            se: SeConfig::paper(seed),
            obs: mvcom_obs::Obs::off(),
        }
    }

    /// Attaches a telemetry handle: each epoch's SE run emits the `se_*`
    /// events documented in OBSERVABILITY.md.
    #[must_use]
    pub fn with_obs(mut self, obs: mvcom_obs::Obs) -> SeSelector {
        self.obs = obs;
        self
    }

    /// A workload-adaptive selector: `Ĉ` is the given fraction of the
    /// submitted transaction load, so the knapsack stays active whatever
    /// the shard sizes are. Suitable for driving [`ElasticoSim`] epochs,
    /// whose shards carry the full trace.
    ///
    /// [`ElasticoSim`]: mvcom_elastico::epoch::ElasticoSim
    pub fn adaptive(seed: u64, load_fraction: f64) -> SeSelector {
        SeSelector {
            capacity: CapacityRule::FractionOfLoad(load_fraction),
            ..SeSelector::paper(seed)
        }
    }
}

impl ShardSelector for SeSelector {
    fn select(&mut self, shards: &[ShardInfo]) -> Vec<CommitteeId> {
        let fallback = || shards.iter().map(|s| s.committee()).collect::<Vec<_>>();
        if shards.len() < 2 {
            return fallback();
        }
        // Arrival cutoff: keep the earliest N_max fraction (at least 2, and
        // at least enough to satisfy N_min of the survivors).
        let keep =
            ((shards.len() as f64 * self.n_max_fraction).round() as usize).clamp(2, shards.len());
        let mut by_arrival: Vec<ShardInfo> = shards.to_vec();
        by_arrival.sort_by_key(|a| a.two_phase_latency());
        by_arrival.truncate(keep);

        let n_min = (by_arrival.len() as f64 * self.n_min_fraction).round() as usize;
        let capacity = self.capacity.capacity(&by_arrival);
        let instance = match InstanceBuilder::new()
            .alpha(self.alpha)
            .capacity(capacity)
            .n_min(n_min)
            .shards(by_arrival)
            .build()
        {
            Ok(instance) => instance,
            // Degenerate epochs (e.g. one giant shard) fall back to
            // admitting everything, like vanilla Elastico.
            Err(_) => return fallback(),
        };
        match SeEngine::new(&instance, self.se) {
            Ok(engine) => {
                let outcome = engine.with_obs(self.obs.clone()).run();
                outcome
                    .best_solution
                    .iter_selected()
                    .map(|i| instance.shards()[i].committee())
                    .collect()
            }
            Err(_) => fallback(),
        }
    }
}

/// A defense-hardened [`SeSelector`]: screens every formation-time report
/// through a [`DefenseEngine`] before the SE scheduler sees it, and feeds
/// realized-vs-reported evidence back after each epoch settles.
///
/// This is the glue the adversarial evaluation (`fig_adv`, the
/// `--adv-fraction` CLI path) runs: strategic committees lie at formation,
/// the reputation layer corrects/discounts/quarantines, and the SE engine
/// schedules over the screened estimates.
///
/// # Example
///
/// ```
/// use mvcom::prelude::*;
///
/// # fn main() -> Result<(), mvcom::Error> {
/// let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 13)?;
/// let adversary = Misreport::new(AdversaryConfig::new(0.25, 13)?);
/// let mut selector = DefendedSeSelector::paper(13)?;
/// let (report, reports) = selector.run_epoch(&mut sim, &adversary)?;
/// assert!(report.final_block.committed);
/// assert!(reports.iter().any(|r| r.adversarial));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DefendedSeSelector {
    /// The inner SE-backed selector (scheduling over screened reports).
    pub selector: SeSelector,
    /// The reputation layer: robust estimation, trust, quarantine.
    pub defense: DefenseEngine,
    epoch: u64,
}

impl DefendedSeSelector {
    /// Paper-default SE selector plus paper-default defenses.
    ///
    /// # Errors
    ///
    /// Propagates [`DefenseConfig`] validation.
    pub fn paper(seed: u64) -> Result<DefendedSeSelector> {
        Ok(DefendedSeSelector {
            selector: SeSelector::paper(seed),
            defense: DefenseEngine::new(DefenseConfig::paper())?,
            epoch: 0,
        })
    }

    /// Wraps an existing selector/defense pair.
    pub fn new(selector: SeSelector, defense: DefenseEngine) -> DefendedSeSelector {
        DefendedSeSelector {
            selector,
            defense,
            epoch: 0,
        }
    }

    /// Attaches a telemetry handle to both layers: the SE engine's `se_*`
    /// events plus the defense `flagged` / `quarantine` / `rehabilitated`
    /// events.
    #[must_use]
    pub fn with_obs(mut self, obs: mvcom_obs::Obs) -> DefendedSeSelector {
        self.selector = self.selector.with_obs(obs.clone());
        self.defense = self.defense.with_obs(obs);
        self
    }

    /// Runs one adversarial epoch end to end: strategic committees file
    /// reports, the defense screens them, the SE engine schedules, stage 4
    /// settles on realized behaviour, and the defense ingests the
    /// observed-vs-reported evidence (true latency for every committee,
    /// true size only for admitted shards).
    ///
    /// # Errors
    ///
    /// See [`ElasticoSim::run_epoch_with`].
    pub fn run_epoch(
        &mut self,
        sim: &mut ElasticoSim,
        adversary: &dyn Adversary,
    ) -> Result<(EpochReport, Vec<CommitteeReport>)> {
        self.epoch = sim.current_epoch().value();
        let (report, reports) = sim.run_epoch_adversarial(self, adversary)?;
        let included = &report.final_block.included;
        let observations: Vec<DefenseObservation> = reports
            .iter()
            .map(|r| DefenseObservation {
                committee: r.committee(),
                reported_size: r.reported.tx_count(),
                reported_latency: r.reported.two_phase_latency(),
                observed_latency: r.truth.two_phase_latency(),
                observed_size: included
                    .contains(&r.committee())
                    .then_some(r.truth.tx_count()),
            })
            .collect();
        self.defense.end_epoch(self.epoch, &observations);
        Ok((report, reports))
    }
}

impl ShardSelector for DefendedSeSelector {
    fn select(&mut self, shards: &[ShardInfo]) -> Vec<CommitteeId> {
        let n_min = (shards.len() as f64 * self.selector.n_min_fraction).round() as usize;
        let screened = self.defense.admissible(self.epoch, shards, n_min);
        self.selector.select(&screened)
    }
}

/// The MVCom scheduler as an *online* admission strategy for the
/// fault-tolerant epoch runner
/// ([`ElasticoSim::run_epoch_recovering`](mvcom_elastico::recovery)).
///
/// Where [`SeSelector`] answers one batch question at stage 4, this
/// selector keeps a live [`SeEngine`] running while the final committee's
/// heartbeat detector watches the member committees. When a committee is
/// declared failed mid-epoch:
///
/// 1. the engine's state is **checkpointed** (version-stamped, serialized
///    through `serde_json` and restored — exercising the same path a
///    killed distributed solver process would take, per §IV-D);
/// 2. the restored engine **trims** the dead committee out of the solution
///    space via [`DynamicsPolicy::Trim`] (paper §V, `F → G`) and keeps
///    iterating — no scripted [`TimedEvent`](mvcom_core::dynamics)
///    sequence involved;
/// 3. the utility perturbation is recorded as an [`EventRecord`], so tests
///    can check it against the Theorem 2 bound.
#[derive(Debug)]
pub struct SeRecoverySelector {
    /// The throughput weight `α`.
    pub alpha: f64,
    /// How the final-block capacity `Ĉ` is derived from the epoch.
    pub capacity: CapacityRule,
    /// `N_min` as a fraction of the submitted committees (paper: 0.5).
    pub n_min_fraction: f64,
    /// The SE engine configuration.
    pub se: SeConfig,
    engine: Option<SeEngine>,
    shards: Vec<ShardInfo>,
    events: Vec<EventRecord>,
    chains_restored: usize,
    obs: mvcom_obs::Obs,
}

impl SeRecoverySelector {
    /// The paper's defaults over a workload-adaptive capacity (60% of the
    /// submitted load), ready to drive an [`ElasticoSim`] epoch.
    ///
    /// [`ElasticoSim`]: mvcom_elastico::epoch::ElasticoSim
    pub fn adaptive(seed: u64, load_fraction: f64) -> SeRecoverySelector {
        SeRecoverySelector {
            alpha: 1.5,
            capacity: CapacityRule::FractionOfLoad(load_fraction),
            n_min_fraction: 0.5,
            se: SeConfig::paper(seed),
            engine: None,
            shards: Vec::new(),
            events: Vec::new(),
            chains_restored: 0,
            obs: mvcom_obs::Obs::off(),
        }
    }

    /// Attaches a telemetry handle: the live engine emits `se_*` events and
    /// each handled failure emits the `se_checkpoint_save` /
    /// `se_checkpoint_restore` / `se_dynamic` sequence.
    #[must_use]
    pub fn with_obs(mut self, obs: mvcom_obs::Obs) -> SeRecoverySelector {
        self.obs = obs;
        self
    }

    /// The utility perturbations recorded around each handled failure.
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Chains rebuilt from checkpoints across all handled failures.
    pub fn chains_restored(&self) -> usize {
        self.chains_restored
    }

    /// The live engine's current best utility, if a scheduling problem has
    /// been posed.
    pub fn current_best_utility(&self) -> Option<f64> {
        self.engine.as_ref().map(SeEngine::current_best_utility)
    }
}

impl RecoverySelector for SeRecoverySelector {
    fn begin(&mut self, shards: &[ShardInfo]) -> MvResult<()> {
        self.shards = shards.to_vec();
        if shards.len() < 2 {
            return Ok(()); // degenerate epoch: finish() admits everything
        }
        let n_min = (shards.len() as f64 * self.n_min_fraction).round() as usize;
        let instance = match InstanceBuilder::new()
            .alpha(self.alpha)
            .capacity(self.capacity.capacity(shards))
            .n_min(n_min)
            .shards(shards.to_vec())
            .build()
        {
            Ok(instance) => instance,
            Err(_) => return Ok(()), // fall back to admitting every survivor
        };
        self.engine = SeEngine::new(&instance, self.se)
            .ok()
            .map(|e| e.with_obs(self.obs.clone()));
        Ok(())
    }

    fn advance(&mut self, iterations: u64) {
        if let Some(engine) = &mut self.engine {
            for _ in 0..iterations {
                if engine.is_converged() {
                    break;
                }
                engine.step();
            }
        }
    }

    fn on_failure(&mut self, committee: CommitteeId) -> MvResult<()> {
        self.shards.retain(|s| s.committee() != committee);
        let Some(engine) = self.engine.take() else {
            return Ok(());
        };
        if engine.instance().index_of(committee).is_none() {
            self.engine = Some(engine);
            return Ok(());
        }
        let utility_before = engine.current_best_utility();
        let at_iteration = engine.iteration();
        // The failure kills the solver process along with the committee:
        // round-trip the version-stamped checkpoint through serialization
        // and restore, as a replacement process would.
        let instance = engine.instance().clone();
        let config = *engine.config();
        let ckpt = engine.checkpoint();
        drop(engine);
        let json = serde_json::to_string(&ckpt)
            .map_err(|e| Error::simulation(format!("checkpoint encode failed: {e}")))?;
        let ckpt: mvcom_core::se::SeCheckpoint = serde_json::from_str(&json)
            .map_err(|e| Error::simulation(format!("checkpoint decode failed: {e}")))?;
        let mut restored =
            SeEngine::from_checkpoint(&instance, config, &ckpt)?.with_obs(self.obs.clone());
        self.chains_restored += restored.restored_chains();
        // §V solution-space surgery: trim the dead committee, keep going.
        match restored.handle_leave(committee, DynamicsPolicy::Trim) {
            Ok(()) => {
                self.events.push(EventRecord {
                    at_iteration,
                    utility_before,
                    utility_after: restored.current_best_utility(),
                    is_join: false,
                });
                self.engine = Some(restored);
            }
            // The trimmed epoch is infeasible for the scheduler (e.g. too
            // few survivors): drop the engine and degrade to
            // admit-all-survivors at finish().
            Err(_) => self.engine = None,
        }
        Ok(())
    }

    fn finish(&mut self) -> Vec<CommitteeId> {
        match self.engine.take() {
            Some(engine) => {
                let instance = engine.instance().clone();
                let outcome = engine.finish();
                outcome
                    .best_solution
                    .iter_selected()
                    .map(|i| instance.shards()[i].committee())
                    .collect()
            }
            None => self.shards.iter().map(|s| s.committee()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcom_types::{SimTime, TwoPhaseLatency};

    fn shard(id: u32, txs: u64, latency: f64) -> ShardInfo {
        ShardInfo::new(
            CommitteeId(id),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(latency)),
        )
    }

    #[test]
    fn selector_applies_arrival_cutoff() {
        let shards: Vec<ShardInfo> = (0..10)
            .map(|i| shard(i, 800, 500.0 + 100.0 * f64::from(i)))
            .collect();
        let mut selector = SeSelector::paper(1);
        let included = selector.select(&shards);
        // N_max = 0.8 keeps the 8 earliest arrivals; the two slowest
        // committees (ids 8 and 9) can never be admitted.
        assert!(!included.contains(&CommitteeId(8)));
        assert!(!included.contains(&CommitteeId(9)));
        // N_min = 50% of the 8 kept = 4.
        assert!(included.len() >= 4);
        assert!(included.len() <= 8);
    }

    #[test]
    fn selector_respects_capacity() {
        let shards: Vec<ShardInfo> = (0..10)
            .map(|i| shard(i, 900, 500.0 + 10.0 * f64::from(i)))
            .collect();
        let mut selector = SeSelector::paper(2);
        let included = selector.select(&shards);
        let total: u64 = shards
            .iter()
            .filter(|s| included.contains(&s.committee()))
            .map(|s| s.tx_count())
            .sum();
        // Capacity is 1000 × 8 kept shards = 8000.
        assert!(total <= 8_000, "selected {total} txs");
    }

    #[test]
    fn degenerate_epochs_fall_back_to_everything() {
        let shards = vec![shard(0, 1_000_000, 100.0)];
        let mut selector = SeSelector::paper(3);
        assert_eq!(selector.select(&shards), vec![CommitteeId(0)]);
    }

    #[test]
    fn adaptive_capacity_tracks_the_load() {
        // Shards of ~90K TXs dwarf the paper's per-committee rule; the
        // adaptive selector must still produce a real (strict) selection.
        let shards: Vec<ShardInfo> = (0..12)
            .map(|i| {
                shard(
                    i,
                    90_000 + 1_000 * u64::from(i),
                    600.0 + 200.0 * f64::from(i),
                )
            })
            .collect();
        let mut selector = SeSelector::adaptive(4, 0.6);
        let included = selector.select(&shards);
        assert!(!included.is_empty());
        assert!(included.len() < shards.len(), "selection must be strict");
        let total: u64 = shards
            .iter()
            .filter(|s| included.contains(&s.committee()))
            .map(|s| s.tx_count())
            .sum();
        // Capacity = 60% of the load surviving the 0.8 arrival cutoff.
        let kept_total: u64 = {
            let mut v = shards.clone();
            v.sort_by_key(|a| a.two_phase_latency());
            v.truncate(10);
            v.iter().map(|s| s.tx_count()).sum()
        };
        assert!(total <= (kept_total as f64 * 0.6).round() as u64 + 1);
    }

    #[test]
    fn recovery_selector_schedules_like_the_batch_selector_without_faults() {
        let shards: Vec<ShardInfo> = (0..12)
            .map(|i| {
                shard(
                    i,
                    90_000 + 1_000 * u64::from(i),
                    600.0 + 200.0 * f64::from(i),
                )
            })
            .collect();
        let mut selector = SeRecoverySelector::adaptive(4, 0.6);
        selector.begin(&shards).unwrap();
        selector.advance(2_000);
        let included = selector.finish();
        assert!(!included.is_empty());
        assert!(included.len() < shards.len(), "selection must be strict");
        assert!(selector.events().is_empty());
        assert_eq!(selector.chains_restored(), 0);
    }

    #[test]
    fn recovery_selector_trims_failures_through_a_checkpoint_restore() {
        let shards: Vec<ShardInfo> = (0..12)
            .map(|i| {
                shard(
                    i,
                    90_000 + 1_000 * u64::from(i),
                    600.0 + 200.0 * f64::from(i),
                )
            })
            .collect();
        let mut selector = SeRecoverySelector::adaptive(5, 0.6);
        selector.begin(&shards).unwrap();
        selector.advance(300);
        selector.on_failure(CommitteeId(3)).unwrap();
        selector.advance(1_000);
        let included = selector.finish();
        assert!(!included.contains(&CommitteeId(3)));
        assert!(!included.is_empty());
        // The failure was handled through a serialized checkpoint restore.
        assert_eq!(selector.events().len(), 1);
        assert!(!selector.events()[0].is_join);
        assert!(selector.chains_restored() > 0);
    }

    #[test]
    fn recovery_selector_handles_unknown_and_degenerate_cases() {
        // Failure of a committee the engine never saw is a no-op.
        let shards: Vec<ShardInfo> = (0..6)
            .map(|i| shard(i, 50_000, 600.0 + 50.0 * f64::from(i)))
            .collect();
        let mut selector = SeRecoverySelector::adaptive(6, 0.6);
        selector.begin(&shards).unwrap();
        selector.on_failure(CommitteeId(99)).unwrap();
        assert!(selector.events().is_empty());
        // A single-shard epoch never builds an engine and admits the shard.
        let mut degenerate = SeRecoverySelector::adaptive(7, 0.6);
        degenerate.begin(&shards[..1]).unwrap();
        degenerate.advance(100);
        assert_eq!(degenerate.finish(), vec![CommitteeId(0)]);
    }

    #[test]
    fn defended_selector_runs_epochs_and_learns_distrust() {
        use mvcom_dataset::{AdversaryConfig, Misreport};
        use mvcom_elastico::epoch::{ElasticoConfig, ElasticoSim};
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 17).unwrap();
        let adversary = Misreport::new(AdversaryConfig::new(0.5, 17).unwrap());
        let mut selector = DefendedSeSelector::paper(17).unwrap();
        let mut lied = std::collections::BTreeSet::new();
        for _ in 0..4 {
            let (report, reports) = selector.run_epoch(&mut sim, &adversary).unwrap();
            assert!(report.final_block.committed);
            lied.extend(
                reports
                    .iter()
                    .filter(|r| r.adversarial)
                    .map(|r| r.committee()),
            );
        }
        assert!(!lied.is_empty());
        // At least one persistent liar must have lost trust by now.
        assert!(
            lied.iter().any(|&c| selector.defense.trust(c) < 1.0),
            "defense never discounted a liar"
        );
    }

    #[test]
    fn defended_selector_is_deterministic() {
        use mvcom_dataset::{AdversaryConfig, Starver};
        use mvcom_elastico::epoch::{ElasticoConfig, ElasticoSim};
        let run = || {
            let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 19).unwrap();
            let adversary = Starver::new(AdversaryConfig::new(0.33, 19).unwrap());
            let mut selector = DefendedSeSelector::paper(19).unwrap();
            selector.selector.se = SeConfig::fast_test(19);
            let mut reports = Vec::new();
            for _ in 0..3 {
                reports.push(selector.run_epoch(&mut sim, &adversary).unwrap());
            }
            (
                reports,
                serde_json::to_string(&selector.defense.checkpoint()).unwrap(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn prelude_compiles_and_exposes_key_types() {
        use crate::prelude::*;
        let _ = SeConfig::paper(0);
        let _ = DynamicsPolicy::Trim;
        let _: fn() -> GreedySolver = GreedySolver::new;
    }
}
