//! The fault-tolerant epoch pipeline under injected chaos.
//!
//! ```text
//! cargo run --release --example chaos_epoch
//! ```
//!
//! Runs one recovering Elastico epoch with the MVCom SE scheduler while a
//! chaos injector drops 10% of submission-network messages and permanently
//! crashes an admitted committee's node mid-epoch. The phi-accrual
//! heartbeat detector notices the silence, the SE engine re-solves through
//! a checkpoint restore (`DynamicsPolicy::Trim`), and the survivors still
//! commit a final block before the consensus deadline.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::elastico::epoch::{ElasticoConfig, ElasticoSim};
use mvcom::prelude::*;

const SEED: u64 = 29;

fn main() -> Result<()> {
    // Kill the second surviving shard's submission node at t = 2500 s and
    // make every remaining link lossy.
    let crash_at = SimTime::from_secs(2_500.0);
    let recovery = RecoveryConfig {
        chaos: ChaosConfig::lossy(0.1)
            .with_crash(CrashEvent::permanent(submission_node(1), crash_at)),
        ..RecoveryConfig::paper()
    };

    let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), SEED)?;
    let mut selector = SeRecoverySelector::adaptive(SEED, 0.6);
    let report = sim.run_epoch_recovering(&mut selector, &recovery)?;
    let robustness = report.robustness.as_ref().expect("recovering telemetry");

    println!("== chaos epoch (seed {SEED}) ==");
    println!(
        "shards submitted:   {} (of {} committees formed)",
        report.shards.len(),
        report.formed.len()
    );
    println!(
        "chaos:              {} dropped, {} crash-dropped, {} latency spikes",
        robustness.chaos.dropped, robustness.chaos.crash_dropped, robustness.chaos.spiked
    );
    println!(
        "heartbeats:         {} sent, {} missed",
        robustness.heartbeats_sent, robustness.heartbeats_missed
    );
    for &(committee, at) in &robustness.failures_detected {
        println!(
            "failure detected:   {committee} at {:.0} s (crash was at {:.0} s)",
            at.as_secs(),
            crash_at.as_secs()
        );
    }
    for record in selector.events() {
        println!(
            "SE trim:            utility {:.1} -> {:.1} at iteration {} \
             ({} chains restored from checkpoint)",
            record.utility_before,
            record.utility_after,
            record.at_iteration,
            selector.chains_restored()
        );
    }
    println!(
        "final block:        {} committees, {} TXs, committed = {}, degraded = {}",
        report.final_block.included.len(),
        report.final_block.total_txs,
        report.final_block.committed,
        robustness.degraded
    );
    Ok(())
}
