//! A tour of the paper's theory, executed.
//!
//! ```text
//! cargo run --release --example theory_tour
//! ```
//!
//! Walks through the analytical results of §IV–§V on a small, enumerable
//! instance: the log-sum-exp approximation gap (Remark 1), the stationary
//! distribution of eq. (6) validated against an exact CTMC simulation, the
//! Theorem 1 mixing-time bounds, and the Lemma 4 / Theorem 2 failure
//! perturbation — then shows the SE engine hitting the exhaustive optimum.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::core::theory;
use mvcom::prelude::*;

fn main() -> Result<()> {
    // A 7-shard epoch, small enough to enumerate exactly.
    let shards: Vec<ShardInfo> = [
        (100u64, 950.0f64),
        (140, 800.0),
        (90, 990.0),
        (120, 700.0),
        (110, 1000.0),
        (95, 850.0),
        (130, 600.0),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(txs, lat))| {
        ShardInfo::new(
            CommitteeId(i as u32),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(lat)),
        )
    })
    .collect();
    let instance = InstanceBuilder::new()
        .alpha(1.0)
        .capacity(100_000)
        .n_min(1)
        .shards(shards)
        .build()?;

    println!("== Remark 1: the log-sum-exp approximation gap (1/β)·log|F| ==");
    for beta in [0.5, 2.0, 10.0] {
        println!(
            "  β = {beta:>4}: loss ≤ {:.2} utility units over |F| = 2^{}",
            theory::approximation_loss(beta, instance.len()),
            instance.len()
        );
    }

    println!("\n== eq. (6): stationary distribution vs exact CTMC occupancy ==");
    let beta = 0.015;
    let states = theory::enumerate_states(&instance, 3)?;
    let p_star = theory::stationary_distribution(&instance, beta, &states);
    let mut rng = mvcom::simnet::rng::master(7);
    let mut sim = theory::CtmcSimulator::new(&instance, beta, 0.0, states[0].clone());
    let occupancy = sim.occupancy(50_000, &mut rng);
    let total: f64 = occupancy.values().sum();
    let empirical: Vec<f64> = states
        .iter()
        .map(|s| {
            let key: Vec<usize> = s.iter_selected().collect();
            occupancy.get(&key).copied().unwrap_or(0.0) / total
        })
        .collect();
    println!(
        "  {} states of cardinality 3; TV(empirical, p*) = {:.4} after 50k jumps",
        states.len(),
        theory::tv_distance(&empirical, &p_star)
    );
    let best = states
        .iter()
        .enumerate()
        .max_by(|a, b| instance.utility(a.1).total_cmp(&instance.utility(b.1)))
        .map(|(i, _)| i)
        .expect("states");
    println!(
        "  best state holds {:.1}% stationary mass (β = {beta})",
        100.0 * p_star[best]
    );

    println!("\n== Theorem 1: mixing-time bounds ==");
    let utilities: Vec<f64> = states.iter().map(|s| instance.utility(s)).collect();
    let u_max = utilities.iter().copied().fold(f64::MIN, f64::max);
    let u_min = utilities.iter().copied().fold(f64::MAX, f64::min);
    for epsilon in [0.1, 0.01] {
        println!(
            "  ε = {epsilon}: {:.3} ≤ t_mix ≤ {:.1}",
            theory::mixing_time_lower(epsilon, instance.len(), u_max, u_min, beta, 0.0),
            theory::mixing_time_upper(epsilon, instance.len(), u_max, u_min, beta, 0.0),
        );
    }
    println!(
        "  at paper scale (|I|=500, β=2, ΔU≈10⁶) the upper bound is only\n\
         \x20 representable in log form: ln t_mix ≤ {:.3e}",
        theory::ln_mixing_time_upper(0.01, 500, 1.0e6, 0.0, 2.0, 0.0)
    );

    println!("\n== Lemma 4 / Theorem 2: committee failure ==");
    for failed in [0usize, 4] {
        let d = theory::trimmed_tv_distance(&instance, 1e-9, 3, failed)?;
        println!(
            "  shard {failed} fails (β→0): d_TV(q*, q̃) = {:.4} (Lemma 4 bound: {:.1})",
            d,
            theory::failure_tv_bound()
        );
    }
    let d_sharp = theory::trimmed_tv_distance(&instance, 0.05, 3, 4)?;
    println!(
        "  concentrated regime (β = 0.05, best shard fails): d_TV = {d_sharp:.4} — \n\
         \x20 the ½ bound is asymptotic (law of large numbers); see DESIGN.md"
    );

    println!("\n== SE vs the exhaustive optimum ==");
    let exact = ExhaustiveSolver::new().solve(&instance)?;
    let se = SeEngine::new(&instance, SeConfig::paper(7))?.run();
    println!(
        "  exhaustive: {:.2}  |  SE: {:.2} after {} iterations (converged = {})",
        exact.best_utility, se.best_utility, se.iterations, se.converged
    );
    Ok(())
}
