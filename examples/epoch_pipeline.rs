//! The full protocol pipeline: Elastico epochs with and without MVCom.
//!
//! ```text
//! cargo run --release --example epoch_pipeline
//! ```
//!
//! Runs the five-stage Elastico simulator for several epochs twice — once
//! with the vanilla wait-for-all final committee and once with the MVCom
//! SE scheduler — and compares when the final consensus can start, how
//! many transactions land in the final block, and the cumulative age the
//! included transactions accumulated.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::elastico::epoch::{ElasticoConfig, ElasticoSim, EpochReport, ShardSelector, WaitForAll};
use mvcom::prelude::*;

const SEED: u64 = 7;
const EPOCHS: usize = 3;

/// When the final committee can begin the final consensus: the largest
/// two-phase latency among *admitted* shards.
fn final_start(report: &EpochReport) -> SimTime {
    report
        .shards
        .iter()
        .filter(|s| report.final_block.included.contains(&s.committee()))
        .map(|s| s.two_phase_latency())
        .max()
        .unwrap_or(SimTime::ZERO)
}

/// Total cumulative age of the admitted shards' transactions, measured
/// against the admitted set's own deadline.
fn cumulative_age(report: &EpochReport) -> f64 {
    let start = final_start(report);
    report
        .shards
        .iter()
        .filter(|s| report.final_block.included.contains(&s.committee()))
        .map(|s| (start - s.two_phase_latency()).as_secs())
        .sum()
}

fn run<S: ShardSelector>(label: &str, mut selector: S) -> Result<()> {
    let mut sim = ElasticoSim::new(ElasticoConfig::with_nodes(240, 12), SEED)?;
    println!("== {label} ==");
    for _ in 0..EPOCHS {
        let report = sim.run_epoch_with(&mut selector)?;
        println!(
            "epoch {}: {} committees formed, {} shards submitted, {} admitted",
            report.epoch.value(),
            report.formed.len(),
            report.shards.len(),
            report.final_block.included.len()
        );
        println!(
            "  final consensus can start at {:>8.1}s; block has {:>6} TXs; cumulative age {:>9.1}s; final PBFT {}",
            final_start(&report).as_secs(),
            report.final_block.total_txs,
            cumulative_age(&report),
            if report.final_block.committed { "committed" } else { "FAILED" },
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<()> {
    run("vanilla Elastico (wait for all shards)", WaitForAll)?;
    // Elastico epochs carry the full trace (~1.5M TXs over ~16 shards), so
    // derive the block capacity from the submitted load rather than the
    // paper's 1000-TXs-per-committee rule.
    run(
        "MVCom (SE scheduler in the final committee)",
        SeSelector::adaptive(SEED, 0.6),
    )?;
    println!(
        "MVCom trades a bounded number of straggler shards for an earlier\n\
         final consensus and fresher transactions — compare the start times\n\
         and cumulative ages above."
    );
    Ok(())
}
