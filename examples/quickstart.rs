//! Quickstart: schedule one epoch of shards with the SE algorithm.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds an epoch of 50 committee shards from the synthetic Bitcoin-like
//! trace, formulates the MVCom problem with the paper's defaults, runs the
//! Stochastic-Exploration scheduler, and prints the admitted committees
//! with their contribution and age.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::prelude::*;

fn main() -> Result<()> {
    const SEED: u64 = 2021;
    const COMMITTEES: usize = 50;

    // 1. Dataset: a Jan-2016-like block trace, sampled into one shard per
    //    member committee (TX count + two-phase latency).
    let trace = Trace::generate(TraceConfig::jan_2016(), SEED);
    println!(
        "trace: {} blocks, {} TXs total, {:.0} TXs/block",
        trace.blocks().len(),
        trace.total_txs(),
        trace.mean_txs()
    );
    let mut epochs = EpochGenerator::new(&trace, LatencyConfig::paper(), SEED);
    let shards = epochs.next_epoch_with_replacement(COMMITTEES, 1)?;

    // 2. Problem: α = 1.5, Ĉ = 1000·|I|, N_min = 50%·|I| (paper §VI-A).
    let instance = InstanceBuilder::new()
        .alpha(1.5)
        .capacity(1_000 * COMMITTEES as u64)
        .n_min(COMMITTEES / 2)
        .shards(shards)
        .build()?;
    println!(
        "instance: |I| = {}, Ĉ = {}, N_min = {}, DDL = {}",
        instance.len(),
        instance.capacity(),
        instance.n_min(),
        instance.ddl()
    );

    // 3. Schedule with Stochastic Exploration (Γ = 10, β = 2, τ = 0).
    let outcome = SeEngine::new(&instance, SeConfig::paper(SEED))?.run();
    println!(
        "SE converged after {} iterations (converged = {})",
        outcome.iterations, outcome.converged
    );
    println!(
        "utility = {:.1}, admitted {} / {} committees, {} / {} TXs",
        outcome.best_utility,
        outcome.best_solution.selected_count(),
        instance.len(),
        outcome.best_solution.tx_total(),
        instance.capacity()
    );
    println!(
        "cumulative age = {:.1} s, valuable degree = {:.2}",
        instance.cumulative_age(&outcome.best_solution),
        instance.valuable_degree(&outcome.best_solution)
    );

    // 4. The admitted committees, most valuable first.
    let mut admitted: Vec<usize> = outcome.best_solution.iter_selected().collect();
    admitted.sort_by(|&a, &b| {
        instance
            .marginal_utility(b)
            .total_cmp(&instance.marginal_utility(a))
    });
    println!("\n  committee      txs    latency      age   marginal-utility");
    for i in admitted.iter().take(10) {
        let s = &instance.shards()[*i];
        println!(
            "  {:<12} {:>6} {:>9.1}s {:>7.1}s {:>13.1}",
            s.committee().to_string(),
            s.tx_count(),
            s.two_phase_latency().as_secs(),
            instance.age(*i),
            instance.marginal_utility(*i)
        );
    }
    if admitted.len() > 10 {
        println!("  … and {} more", admitted.len() - 10);
    }
    Ok(())
}
