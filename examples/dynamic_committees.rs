//! Online committee dynamics: failures, recoveries and consecutive joins.
//!
//! ```text
//! cargo run --release --example dynamic_committees
//! ```
//!
//! Reproduces the scenarios of paper Figs. 9 and 14 interactively: the SE
//! engine runs while committees leave (fail) and join mid-epoch, and the
//! utility perturbation around each event is printed together with the
//! Theorem 2 bound.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::core::theory;
use mvcom::prelude::*;

const SEED: u64 = 9;

fn build_epoch(committees: usize) -> Result<Instance> {
    let trace = Trace::generate(TraceConfig::tiny(400), SEED);
    let mut epochs = EpochGenerator::new(&trace, LatencyConfig::paper(), SEED);
    let shards = epochs.next_epoch_with_replacement(committees, 1)?;
    InstanceBuilder::new()
        .alpha(1.5)
        .capacity(800 * committees as u64) // Ĉ = 40K at |I| = 50, as in Fig. 9(a)
        .n_min(committees / 2)
        .shards(shards)
        .build()
}

fn main() -> Result<()> {
    let instance = build_epoch(50)?;
    println!(
        "epoch: |I| = {}, Ĉ = {}, N_min = {}",
        instance.len(),
        instance.capacity(),
        instance.n_min()
    );

    // Scenario A (Fig. 9(a)): a committee fails mid-run, then recovers.
    let victim = instance.shards()[10].committee();
    let victim_shard = instance.shards()[10];
    let events = vec![
        TimedEvent::leave(400, victim),
        TimedEvent::join(900, victim_shard),
    ];
    println!("\n-- scenario A: {victim} fails at iteration 400, rejoins at 900 --");
    for policy in [DynamicsPolicy::Trim, DynamicsPolicy::Reinitialize] {
        let config = SeConfig {
            max_iterations: 1_500,
            convergence_window: 0,
            ..SeConfig::paper(SEED)
        };
        let online = run_online(&instance, config, &events, policy)?;
        println!("policy {policy:?}:");
        for e in &online.events {
            let kind = if e.is_join { "join " } else { "leave" };
            println!(
                "  {kind} @ {:>4}: utility {:>10.1} → {:>10.1}  (perturbation {:>9.1}, Theorem 2 bound {:>10.1})",
                e.at_iteration,
                e.utility_before,
                e.utility_after,
                (e.utility_before - e.utility_after).abs(),
                theory::perturbation_bound(e.utility_before.max(e.utility_after)).abs(),
            );
        }
        println!(
            "  final: utility {:.1} with {} committees admitted",
            online.outcome.best_utility,
            online.outcome.best_solution.selected_count()
        );
    }

    // Scenario B (Fig. 14): 23 consecutive joins.
    println!("\n-- scenario B: 23 committees join consecutively --");
    let base = build_epoch(27)?;
    let trace = Trace::generate(TraceConfig::tiny(400), SEED + 1);
    let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), SEED + 1);
    // Fresh committee ids beyond the base epoch's range.
    let joins: Vec<TimedEvent> = (0..23)
        .map(|k| {
            let shard = gen.joining_shard(1).expect("joining shard");
            let relabeled = ShardInfo::new(
                CommitteeId(1_000 + k as u32),
                shard.tx_count(),
                shard.latency(),
            );
            TimedEvent::join(100 + 60 * k as u64, relabeled)
        })
        .collect();
    let config = SeConfig {
        max_iterations: 2_200,
        convergence_window: 0,
        ..SeConfig::paper(SEED)
    };
    let online = run_online(&base, config, &joins, DynamicsPolicy::Reinitialize)?;
    println!(
        "applied {} joins; epoch grew 27 → {} committees",
        online.events.len(),
        online.outcome.best_solution.len()
    );
    for chunk in online.events.chunks(6) {
        let line: Vec<String> = chunk
            .iter()
            .map(|e| format!("@{}→{:.0}", e.at_iteration, e.utility_after))
            .collect();
        println!("  {}", line.join("  "));
    }
    println!(
        "final utility {:.1} with {} committees admitted",
        online.outcome.best_utility,
        online.outcome.best_solution.selected_count()
    );
    Ok(())
}
