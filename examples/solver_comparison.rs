//! SE against the paper's baselines on one epoch.
//!
//! ```text
//! cargo run --release --example solver_comparison
//! ```
//!
//! Builds a 100-committee epoch and lets every solver — SE, Simulated
//! Annealing, knapsack DP, Whale Optimization, greedy, and (instance
//! permitting) the exhaustive optimum — schedule it, printing utility,
//! admitted committees, TX throughput, cumulative age and the paper's
//! Valuable Degree metric side by side.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::baselines::{dp::DpConfig, sa::SaConfig, woa::WoaConfig};
use mvcom::prelude::*;

const SEED: u64 = 42;
const COMMITTEES: usize = 100;

struct Row {
    name: &'static str,
    utility: f64,
    admitted: usize,
    txs: u64,
    age: f64,
    valuable: f64,
}

fn row(name: &'static str, instance: &Instance, solution: &Solution) -> Row {
    Row {
        name,
        utility: instance.utility(solution),
        admitted: solution.selected_count(),
        txs: solution.tx_total(),
        age: instance.cumulative_age(solution),
        valuable: instance.valuable_degree(solution),
    }
}

fn main() -> Result<()> {
    let trace = Trace::generate(TraceConfig::jan_2016(), SEED);
    let mut epochs = EpochGenerator::new(&trace, LatencyConfig::paper(), SEED);
    let shards = epochs.next_epoch_with_replacement(COMMITTEES, 1)?;
    let instance = InstanceBuilder::new()
        .alpha(1.5)
        .capacity(1_000 * COMMITTEES as u64)
        .n_min(COMMITTEES / 2)
        .shards(shards)
        .build()?;
    println!(
        "epoch: |I| = {}, Ĉ = {}, N_min = {}, α = {}",
        instance.len(),
        instance.capacity(),
        instance.n_min(),
        instance.alpha()
    );

    let mut rows = Vec::new();

    let se = SeEngine::new(&instance, SeConfig::paper(SEED).with_gamma(10))?.run();
    rows.push(row("SE (this paper)", &instance, &se.best_solution));

    let sa = SaSolver::new(SaConfig::paper(SEED)).solve(&instance)?;
    rows.push(row("SA", &instance, &sa.best_solution));

    let dp = DpSolver::new(DpConfig::paper()).solve(&instance)?;
    rows.push(row("DP", &instance, &dp.best_solution));

    let woa = WoaSolver::new(WoaConfig::paper(SEED)).solve(&instance)?;
    rows.push(row("WOA", &instance, &woa.best_solution));

    let greedy = GreedySolver::new().solve(&instance)?;
    rows.push(row("greedy", &instance, &greedy.best_solution));

    println!(
        "\n  {:<16} {:>12} {:>9} {:>8} {:>12} {:>10}",
        "solver", "utility", "admitted", "txs", "cum. age", "valuable°"
    );
    for r in &rows {
        println!(
            "  {:<16} {:>12.1} {:>9} {:>8} {:>12.1} {:>10.2}",
            r.name, r.utility, r.admitted, r.txs, r.age, r.valuable
        );
    }

    let best = rows
        .iter()
        .max_by(|a, b| a.utility.total_cmp(&b.utility))
        .expect("rows");
    println!("\nhighest utility: {}", best.name);
    Ok(())
}
