//! Multi-epoch scheduling with cross-epoch carry-over (paper Fig. 3).
//!
//! ```text
//! cargo run --release --example multi_epoch
//! ```
//!
//! Runs ten consecutive epochs through the [`EpochChain`] scheduler:
//! committees refused at epoch `j` re-enter epoch `j+1` with their
//! two-phase latency reduced by the previous deadline — so persistent
//! stragglers eventually become cheap enough to admit. Prints per-epoch
//! admission, carry-over traffic, and the aggregate throughput/freshness
//! metrics.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::prelude::*;

const SEED: u64 = 33;
const EPOCHS: usize = 10;
const COMMITTEES: usize = 40;

fn main() -> Result<()> {
    let trace = Trace::generate(TraceConfig::jan_2016(), SEED);
    let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), SEED);

    let config = EpochChainConfig {
        capacity: EpochCapacity::PerCommittee(1_000),
        se: SeConfig::paper(SEED),
        ..EpochChainConfig::paper(SEED)
    };
    let mut chain = EpochChain::new(config)?;

    println!(
        "{:<7} {:>8} {:>11} {:>10} {:>12} {:>11} {:>12}",
        "epoch", "arrived", "carried-in", "admitted", "refused-out", "block txs", "age (s)"
    );
    let mut outcomes = Vec::with_capacity(EPOCHS);
    for _ in 0..EPOCHS {
        let fresh = gen.next_epoch_with_replacement(COMMITTEES, 1)?;
        let outcome = chain.run_epoch(fresh)?;
        println!(
            "{:<7} {:>8} {:>11} {:>10} {:>12} {:>11} {:>12.0}",
            outcome.epoch.to_string(),
            outcome.arrived,
            outcome.carried_in,
            outcome.admitted.len(),
            outcome.carried_out,
            outcome.admitted_txs,
            outcome.cumulative_age,
        );
        outcomes.push(outcome);
    }

    let metrics = ChainMetrics::aggregate(&outcomes, chain.pending());
    println!(
        "\nacross {} epochs: {} TXs committed over {:.0}s of deadlines → {:.2} TX/s",
        metrics.epochs, metrics.total_txs, metrics.total_ddl_secs, metrics.tps
    );
    println!(
        "total cumulative age {:.0}s; {} shards still pending re-entry",
        metrics.total_age, metrics.pending_carryovers
    );

    // Show the Fig. 3 mechanism explicitly on the first refused committee.
    if let Some(first) = outcomes.iter().find(|o| o.carried_out > 0) {
        println!(
            "\nexample: epoch {} refused {} committees; each re-entered epoch {} \
             with its latency reduced by the {:.0}s deadline",
            first.epoch.value(),
            first.carried_out,
            first.epoch.value() + 1,
            first.ddl.as_secs(),
        );
    }
    Ok(())
}
