//! Property-based tests for the discrete-event substrate.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom_simnet::event::EventQueue;
use mvcom_simnet::stats::{Ecdf, Summary};
use mvcom_simnet::{rng, ChaosConfig, ChaosInjector, LatencyModel, Network, NetworkConfig};
use mvcom_types::{NodeId, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_in_stable_time_order(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.push(SimTime::from_secs(t), i);
        }
        // Reference: stable sort by time (preserves insertion order on ties).
        let mut expected: Vec<(SimTime, usize)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (SimTime::from_secs(t), i))
            .collect();
        expected.sort_by_key(|&(t, _)| t);
        let mut got = Vec::new();
        while let Some(item) = queue.pop() {
            got.push(item);
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn summary_matches_naive_statistics(xs in proptest::collection::vec(-1e6f64..1e6, 2..300)) {
        let s: Summary = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn summary_merge_is_order_independent(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ys in proptest::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut ab: Summary = xs.iter().copied().collect();
        ab.merge(&ys.iter().copied().collect());
        let mut ba: Summary = ys.iter().copied().collect();
        ba.merge(&xs.iter().copied().collect());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9 * (1.0 + ab.mean().abs()));
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6 * (1.0 + ab.variance().abs()));
    }

    #[test]
    fn ecdf_is_a_distribution_function(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Ecdf::from_samples(xs.clone());
        // Bounds.
        prop_assert_eq!(cdf.eval(f64::NEG_INFINITY), 0.0);
        prop_assert_eq!(cdf.eval(f64::INFINITY), 1.0);
        // Monotone in the query point.
        let lo = cdf.eval(-1e5);
        let hi = cdf.eval(1e5);
        prop_assert!(lo <= hi);
        // Quantile/eval consistency at the median.
        let med = cdf.quantile(0.5);
        prop_assert!(cdf.eval(med) >= 0.5);
    }

    #[test]
    fn latency_models_sample_non_negative(seed in 0u64..1_000, pick in 0usize..4) {
        let model = match pick {
            0 => LatencyModel::constant(1.5).unwrap(),
            1 => LatencyModel::uniform(0.5, 2.0).unwrap(),
            2 => LatencyModel::exponential(600.0).unwrap(),
            _ => LatencyModel::log_normal(54.5, 15.0).unwrap(),
        };
        let mut r = rng::master(seed);
        for _ in 0..50 {
            prop_assert!(model.sample(&mut r) >= SimTime::ZERO);
        }
    }

    #[test]
    fn network_delivery_times_are_causal(seed in 0u64..500, sends in 1usize..50) {
        let mut net = Network::new(NetworkConfig::wan(6), rng::master(seed)).unwrap();
        let mut now = SimTime::ZERO;
        for k in 0..sends {
            now += SimTime::from_secs(0.5);
            let from = NodeId((k % 6) as u32);
            let to = NodeId(((k + 1) % 6) as u32);
            if let Some(arrival) = net.send(from, to, 100, now) {
                prop_assert!(arrival > now, "message arrived before it was sent");
            }
        }
        prop_assert_eq!(net.stats().delivered, sends as u64);
    }

    #[test]
    fn chaos_conserves_message_accounting(
        seed in 0u64..500,
        drop_prob in 0.0f64..1.0,
        sends in 1usize..80,
    ) {
        // Whatever loss the injector applies, every `send` call lands in
        // exactly one bucket: delivered + dropped == sends, and chaos can
        // only ever claim messages that were counted as dropped.
        let mut net = Network::new(NetworkConfig::wan(5), rng::master(seed)).unwrap();
        net.set_chaos(
            ChaosInjector::new(ChaosConfig::lossy(drop_prob), rng::master(seed ^ 0xC4A0)).unwrap(),
        );
        for k in 0..sends {
            let from = NodeId((k % 5) as u32);
            let to = NodeId(((k + 2) % 5) as u32);
            net.send(from, to, 64, SimTime::from_secs(k as f64));
        }
        let stats = net.stats();
        prop_assert_eq!(stats.delivered + stats.dropped, sends as u64);
        prop_assert!(stats.chaos_dropped <= stats.dropped);
        let chaos = net.chaos_stats().expect("injector installed");
        prop_assert_eq!(chaos.dropped + chaos.crash_dropped, stats.chaos_dropped);
        if drop_prob == 0.0 {
            prop_assert_eq!(stats.chaos_dropped, 0);
        }
    }

    #[test]
    fn crashed_nodes_never_deliver(seed in 0u64..200) {
        let mut net = Network::new(NetworkConfig::lan(4), rng::master(seed)).unwrap();
        net.crash(NodeId(2));
        for k in 0..20u64 {
            let from = NodeId((k % 4) as u32);
            let result = net.send(from, NodeId(2), 10, SimTime::ZERO);
            prop_assert!(result.is_none());
        }
    }
}
