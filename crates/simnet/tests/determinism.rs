//! Byte-identical replay regression for the gossip layer (lint rule D1).
//!
//! `GossipRun::spread` returns a `BTreeMap`, so the `Debug` rendering is a
//! total fingerprint of the run: every delivered node and its delivery
//! time, in node-id order. If anyone reintroduces a seed-unstable
//! container (or an ambient entropy source) anywhere under the spread
//! path, the two renderings diverge and this test names the seed.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom_simnet::gossip::{GossipConfig, GossipRun};
use mvcom_simnet::{rng, Network, NetworkConfig};
use mvcom_types::{NodeId, SimTime};

fn fingerprint(seed: u64) -> String {
    let mut net = Network::new(NetworkConfig::lan(120), rng::master(seed)).unwrap();
    let mut run = GossipRun::new(&mut net, GossipConfig::default());
    let delivered = run.spread(NodeId(0), SimTime::ZERO).unwrap();
    format!("{delivered:?}")
}

#[test]
fn gossip_replay_is_byte_identical_for_two_seeds() {
    for seed in [7, 90_210] {
        let first = fingerprint(seed);
        let second = fingerprint(seed);
        assert_eq!(first, second, "seed {seed} did not replay byte-identically");
        assert!(first.len() > 100, "fingerprint suspiciously small: {first}");
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    // Guards against the fingerprint degenerating into a constant.
    assert_ne!(fingerprint(7), fingerprint(90_210));
}
