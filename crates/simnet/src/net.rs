//! Simulated peer-to-peer network.
//!
//! [`Network`] models message delivery between nodes: each send samples a
//! delay from a [`LatencyModel`] and returns the arrival time, which callers
//! feed into their [`Scheduler`](crate::event::Scheduler). Nodes can crash
//! and recover, and arbitrary partitions can be installed; messages to or
//! from an unreachable node are dropped (returning `None`), which is exactly
//! how the final committee "perceives a failed member committee by using the
//! ping network protocol" — the observed latency becomes infinite.

use std::collections::BTreeSet;

use rand::Rng;
use serde::{Deserialize, Serialize};

use mvcom_types::{Error, NodeId, Result, SimTime};

use crate::chaos::{ChaosInjector, ChaosStats};
use crate::latency::LatencyModel;

/// Static configuration of a simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of nodes, identified `0..nodes`.
    pub nodes: u32,
    /// Delay model for one point-to-point message.
    pub link_latency: LatencyModel,
    /// Extra per-KiB serialization/transfer delay in seconds (bandwidth
    /// term); `0.0` disables size-dependent delay.
    pub secs_per_kib: f64,
}

impl NetworkConfig {
    /// A LAN-ish default: 50 ms ± jitter links, 1 Gbit/s-ish bandwidth.
    pub fn lan(nodes: u32) -> NetworkConfig {
        NetworkConfig {
            nodes,
            link_latency: LatencyModel::ShiftedExponential {
                offset_secs: 0.030,
                mean_secs: 0.020,
            },
            secs_per_kib: 8.0 / 1_000_000.0,
        }
    }

    /// A WAN-ish default: 200 ms links with heavy jitter, 50 Mbit/s.
    pub fn wan(nodes: u32) -> NetworkConfig {
        NetworkConfig {
            nodes,
            link_latency: LatencyModel::ShiftedExponential {
                offset_secs: 0.120,
                mean_secs: 0.080,
            },
            secs_per_kib: 8.0 / 50_000.0,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(Error::invalid_config(
                "nodes",
                "network needs at least one node",
            ));
        }
        if !self.secs_per_kib.is_finite() || self.secs_per_kib < 0.0 {
            return Err(Error::invalid_config(
                "secs_per_kib",
                format!("must be finite and non-negative, got {}", self.secs_per_kib),
            ));
        }
        Ok(())
    }
}

/// Counters describing everything a [`Network`] delivered or dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Messages accepted for delivery.
    pub delivered: u64,
    /// Messages dropped for any reason (endpoint down, partitioned away,
    /// or killed by the chaos injector). `delivered + dropped` always
    /// equals the number of `send` calls, whatever faults are active.
    pub dropped: u64,
    /// Of `dropped`, the messages killed by the chaos injector (lossy
    /// links and scheduled outages).
    pub chaos_dropped: u64,
    /// Total payload bytes accepted for delivery.
    pub bytes: u64,
}

/// A simulated P2P network with crashes and partitions.
///
/// The network is *timeless*: it computes arrival times but does not own the
/// event queue, so several protocols can share one network while driving
/// their own schedulers.
///
/// # Example
///
/// ```
/// use mvcom_simnet::{Network, NetworkConfig, rng};
/// use mvcom_types::{NodeId, SimTime};
///
/// let mut net = Network::new(NetworkConfig::lan(4), rng::master(1)).unwrap();
/// let sent_at = SimTime::ZERO;
/// let arrival = net.send(NodeId(0), NodeId(1), 256, sent_at).unwrap();
/// assert!(arrival > sent_at);
/// ```
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    rng: crate::rng::SimRng,
    down: BTreeSet<NodeId>,
    /// Partition groups: nodes in different groups cannot communicate.
    /// Empty means fully connected.
    partition: Vec<BTreeSet<NodeId>>,
    stats: NetworkStats,
    chaos: Option<ChaosInjector>,
}

impl Network {
    /// Creates a network from a validated configuration and an RNG stream.
    pub fn new(config: NetworkConfig, rng: crate::rng::SimRng) -> Result<Network> {
        config.validate()?;
        Ok(Network {
            config,
            rng,
            down: BTreeSet::new(),
            partition: Vec::new(),
            stats: NetworkStats::default(),
            chaos: None,
        })
    }

    /// Installs a fault injector: from now on every send and ping is
    /// subject to its drop/spike/outage model. Protocols built on the
    /// network need no changes — they are chaos-wrapped transparently.
    pub fn set_chaos(&mut self, injector: ChaosInjector) {
        self.chaos = Some(injector);
    }

    /// Removes the fault injector, returning it (with its counters).
    pub fn clear_chaos(&mut self) -> Option<ChaosInjector> {
        self.chaos.take()
    }

    /// Fault counters of the installed injector, if any.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(ChaosInjector::stats)
    }

    /// The network's static configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Delivery/drop counters so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Number of nodes.
    pub fn len(&self) -> u32 {
        self.config.nodes
    }

    /// Returns `true` if the network has no nodes (never true for a
    /// validated config; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.config.nodes == 0
    }

    /// Marks `node` as crashed: every message to or from it is dropped.
    pub fn crash(&mut self, node: NodeId) {
        self.down.insert(node);
    }

    /// Recovers a crashed node.
    pub fn recover(&mut self, node: NodeId) {
        self.down.remove(&node);
    }

    /// Returns `true` if `node` is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        node.0 < self.config.nodes && !self.down.contains(&node)
    }

    /// Installs a partition: nodes in different groups cannot exchange
    /// messages. Nodes absent from every group remain connected to each
    /// other (they form an implicit extra group).
    pub fn set_partition(&mut self, groups: Vec<BTreeSet<NodeId>>) {
        self.partition = groups;
    }

    /// Removes any partition.
    pub fn heal_partition(&mut self) {
        self.partition.clear();
    }

    fn group_of(&self, node: NodeId) -> Option<usize> {
        self.partition.iter().position(|g| g.contains(&node))
    }

    /// Returns `true` if `a` and `b` can currently exchange messages.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        if !self.is_up(a) || !self.is_up(b) {
            return false;
        }
        self.group_of(a) == self.group_of(b)
    }

    /// Sends `payload_bytes` from `from` to `to` at time `sent_at`.
    ///
    /// Returns the arrival time, or `None` if the message is dropped
    /// (either endpoint down or partitioned away). Self-sends arrive
    /// immediately (zero network delay).
    pub fn send(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload_bytes: usize,
        sent_at: SimTime,
    ) -> Option<SimTime> {
        if !self.connected(from, to) {
            self.stats.dropped += 1;
            return None;
        }
        let mut extra = SimTime::ZERO;
        if let Some(chaos) = &mut self.chaos {
            if chaos.node_down_at(from, sent_at) || chaos.node_down_at(to, sent_at) {
                chaos.count_crash_drop();
                self.stats.dropped += 1;
                self.stats.chaos_dropped += 1;
                return None;
            }
            match chaos.judge_message() {
                None => {
                    self.stats.dropped += 1;
                    self.stats.chaos_dropped += 1;
                    return None;
                }
                Some(spike) => extra = spike,
            }
        }
        self.stats.delivered += 1;
        self.stats.bytes += payload_bytes as u64;
        if from == to {
            return Some(sent_at + extra);
        }
        let link = self.config.link_latency.sample(&mut self.rng);
        let transfer =
            SimTime::from_secs(self.config.secs_per_kib * (payload_bytes as f64 / 1024.0));
        Some(sent_at + link + transfer + extra)
    }

    /// Broadcasts from `from` to every node in `recipients`, returning
    /// `(recipient, arrival)` for each message that was delivered.
    pub fn broadcast<I>(
        &mut self,
        from: NodeId,
        recipients: I,
        payload_bytes: usize,
        sent_at: SimTime,
    ) -> Vec<(NodeId, SimTime)>
    where
        I: IntoIterator<Item = NodeId>,
    {
        recipients
            .into_iter()
            .filter(|&to| to != from)
            .filter_map(|to| self.send(from, to, payload_bytes, sent_at).map(|t| (to, t)))
            .collect()
    }

    /// The latency a `ping` from `from` to `to` would observe: a sampled
    /// round trip, or [`SimTime::INFINITY`] when unreachable — the failure
    /// detector the paper describes in §V-A.
    pub fn ping(&mut self, from: NodeId, to: NodeId) -> SimTime {
        if !self.connected(from, to) {
            return SimTime::INFINITY;
        }
        let out = self.config.link_latency.sample(&mut self.rng);
        let back = self.config.link_latency.sample(&mut self.rng);
        out + back
    }

    /// Like [`Network::ping`], but evaluated at simulated time `now` so the
    /// chaos injector's scheduled outages apply: pinging a node inside its
    /// outage window observes [`SimTime::INFINITY`]. This is the heartbeat
    /// primitive the failure detector drives.
    pub fn ping_at(&mut self, from: NodeId, to: NodeId, now: SimTime) -> SimTime {
        if let Some(chaos) = &self.chaos {
            if chaos.node_down_at(from, now) || chaos.node_down_at(to, now) {
                return SimTime::INFINITY;
            }
        }
        let rtt = self.ping(from, to);
        if rtt.is_infinite() {
            return rtt;
        }
        // A lossy link loses the ping (or its pong) with the same
        // probability it loses any other message pair.
        if let Some(chaos) = &mut self.chaos {
            match (chaos.judge_message(), chaos.judge_message()) {
                (Some(a), Some(b)) => return rtt + a + b,
                _ => return SimTime::INFINITY,
            }
        }
        rtt
    }

    /// Mutable access to the RNG stream, for callers that need correlated
    /// auxiliary draws (e.g. jittering retry timers).
    pub fn rng_mut(&mut self) -> &mut crate::rng::SimRng {
        &mut self.rng
    }

    /// Samples `n` link delays without sending anything — used to model
    /// gossip fan-out cost analytically.
    pub fn sample_delays(&mut self, n: usize) -> Vec<SimTime> {
        (0..n)
            .map(|_| self.config.link_latency.sample(&mut self.rng))
            .collect()
    }

    /// Convenience: draw from an arbitrary distribution using the network's
    /// RNG stream.
    pub fn sample_from(&mut self, model: &LatencyModel) -> SimTime {
        model.sample(&mut self.rng)
    }

    /// Uniformly random node id, e.g. for gossip peer selection.
    pub fn random_node(&mut self) -> NodeId {
        NodeId(self.rng.gen_range(0..self.config.nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn net(nodes: u32) -> Network {
        Network::new(NetworkConfig::lan(nodes), rng::master(11)).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(NetworkConfig::lan(0).validate().is_err());
        assert!(NetworkConfig::lan(3).validate().is_ok());
        let bad = NetworkConfig {
            secs_per_kib: -1.0,
            ..NetworkConfig::lan(3)
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn send_returns_future_arrival() {
        let mut n = net(4);
        let sent = SimTime::from_secs(10.0);
        let arrival = n.send(NodeId(0), NodeId(1), 128, sent).unwrap();
        assert!(arrival > sent);
        assert_eq!(n.stats().delivered, 1);
        assert_eq!(n.stats().bytes, 128);
    }

    #[test]
    fn self_send_is_instant() {
        let mut n = net(2);
        let sent = SimTime::from_secs(5.0);
        assert_eq!(n.send(NodeId(1), NodeId(1), 64, sent), Some(sent));
    }

    #[test]
    fn crash_drops_messages_and_ping_is_infinite() {
        let mut n = net(3);
        n.crash(NodeId(2));
        assert!(!n.is_up(NodeId(2)));
        assert_eq!(n.send(NodeId(0), NodeId(2), 10, SimTime::ZERO), None);
        assert_eq!(n.send(NodeId(2), NodeId(0), 10, SimTime::ZERO), None);
        assert_eq!(n.ping(NodeId(0), NodeId(2)), SimTime::INFINITY);
        // Pings are observations, not messages: only the two sends count.
        assert_eq!(n.stats().dropped, 2);
        n.recover(NodeId(2));
        assert!(n.is_up(NodeId(2)));
        assert!(n.send(NodeId(0), NodeId(2), 10, SimTime::ZERO).is_some());
        assert!(!n.ping(NodeId(0), NodeId(2)).is_infinite());
    }

    #[test]
    fn out_of_range_node_is_down() {
        let n = net(3);
        assert!(!n.is_up(NodeId(3)));
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut n = net(4);
        n.set_partition(vec![
            [NodeId(0), NodeId(1)].into_iter().collect(),
            [NodeId(2)].into_iter().collect(),
        ]);
        assert!(n.connected(NodeId(0), NodeId(1)));
        assert!(!n.connected(NodeId(0), NodeId(2)));
        // Node 3 is in no explicit group: it forms the implicit group.
        assert!(!n.connected(NodeId(3), NodeId(0)));
        assert!(n.connected(NodeId(3), NodeId(3)));
        n.heal_partition();
        assert!(n.connected(NodeId(0), NodeId(2)));
    }

    #[test]
    fn broadcast_skips_sender_and_dead_nodes() {
        let mut n = net(5);
        n.crash(NodeId(4));
        let deliveries = n.broadcast(NodeId(0), (0..5).map(NodeId), 32, SimTime::ZERO);
        let recipients: Vec<u32> = deliveries.iter().map(|(id, _)| id.0).collect();
        assert_eq!(recipients, vec![1, 2, 3]);
        for (_, t) in deliveries {
            assert!(t > SimTime::ZERO);
        }
    }

    #[test]
    fn bandwidth_term_grows_with_payload() {
        let config = NetworkConfig {
            nodes: 2,
            link_latency: LatencyModel::Constant { secs: 0.1 },
            secs_per_kib: 0.01,
        };
        let mut n = Network::new(config, rng::master(0)).unwrap();
        let small = n.send(NodeId(0), NodeId(1), 1024, SimTime::ZERO).unwrap();
        let large = n
            .send(NodeId(0), NodeId(1), 10 * 1024, SimTime::ZERO)
            .unwrap();
        assert!((small.as_secs() - 0.11).abs() < 1e-9);
        assert!((large.as_secs() - 0.20).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = net(4);
        let mut b = Network::new(NetworkConfig::lan(4), rng::master(11)).unwrap();
        for i in 0..50u32 {
            let from = NodeId(i % 4);
            let to = NodeId((i + 1) % 4);
            assert_eq!(
                a.send(from, to, 100, SimTime::ZERO),
                b.send(from, to, 100, SimTime::ZERO)
            );
        }
    }

    #[test]
    fn random_node_in_range() {
        let mut n = net(7);
        for _ in 0..100 {
            assert!(n.random_node().0 < 7);
        }
    }

    #[test]
    fn chaos_drops_are_counted_and_conserved() {
        use crate::chaos::{ChaosConfig, ChaosInjector};
        let mut n = net(4);
        n.set_chaos(ChaosInjector::new(ChaosConfig::lossy(0.5), rng::master(5)).unwrap());
        let sends = 2_000u64;
        for i in 0..sends {
            let _ = n.send(NodeId((i % 3) as u32), NodeId(3), 64, SimTime::ZERO);
        }
        let stats = n.stats();
        assert_eq!(stats.delivered + stats.dropped, sends);
        assert_eq!(stats.chaos_dropped, stats.dropped);
        assert!(stats.dropped > sends / 3 && stats.dropped < 2 * sends / 3);
        let chaos = n.clear_chaos().unwrap();
        assert_eq!(chaos.stats().dropped, stats.chaos_dropped);
    }

    #[test]
    fn scheduled_outage_blackholes_sends_and_pings() {
        use crate::chaos::{ChaosConfig, ChaosInjector, CrashEvent};
        let mut n = net(3);
        let config = ChaosConfig::none().with_crash(CrashEvent::with_restart(
            NodeId(2),
            SimTime::from_secs(100.0),
            SimTime::from_secs(300.0),
        ));
        n.set_chaos(ChaosInjector::new(config, rng::master(6)).unwrap());
        // Before the outage: alive.
        assert!(n
            .send(NodeId(0), NodeId(2), 8, SimTime::from_secs(50.0))
            .is_some());
        assert!(!n
            .ping_at(NodeId(0), NodeId(2), SimTime::from_secs(50.0))
            .is_infinite());
        // During: dead, and the drop is attributed to chaos.
        assert!(n
            .send(NodeId(0), NodeId(2), 8, SimTime::from_secs(150.0))
            .is_none());
        assert!(n
            .ping_at(NodeId(0), NodeId(2), SimTime::from_secs(150.0))
            .is_infinite());
        assert_eq!(n.stats().chaos_dropped, 1);
        // After the restart: alive again.
        assert!(n
            .send(NodeId(0), NodeId(2), 8, SimTime::from_secs(350.0))
            .is_some());
        assert!(!n
            .ping_at(NodeId(0), NodeId(2), SimTime::from_secs(350.0))
            .is_infinite());
    }

    #[test]
    fn chaos_does_not_perturb_the_base_latency_stream() {
        use crate::chaos::{ChaosConfig, ChaosInjector};
        // Same network seed, chaos with drop_prob 0 installed on one of
        // them: deliveries must see identical arrival times because the
        // injector draws from its own stream.
        let mut plain = net(4);
        let mut chaotic = net(4);
        chaotic.set_chaos(ChaosInjector::new(ChaosConfig::none(), rng::master(77)).unwrap());
        for i in 0..100u32 {
            let from = NodeId(i % 4);
            let to = NodeId((i + 1) % 4);
            assert_eq!(
                plain.send(from, to, 64, SimTime::ZERO),
                chaotic.send(from, to, 64, SimTime::ZERO)
            );
        }
    }

    #[test]
    fn latency_spikes_delay_delivery() {
        use crate::chaos::{ChaosConfig, ChaosInjector};
        let config = NetworkConfig {
            nodes: 2,
            link_latency: LatencyModel::Constant { secs: 0.1 },
            secs_per_kib: 0.0,
        };
        let mut n = Network::new(config, rng::master(0)).unwrap();
        n.set_chaos(
            ChaosInjector::new(
                ChaosConfig {
                    spike_prob: 1.0,
                    spike: LatencyModel::Constant { secs: 3.0 },
                    ..ChaosConfig::none()
                },
                rng::master(1),
            )
            .unwrap(),
        );
        let arrival = n.send(NodeId(0), NodeId(1), 16, SimTime::ZERO).unwrap();
        assert!((arrival.as_secs() - 3.1).abs() < 1e-9);
    }
}
