//! Deterministic discrete-event simulation engine and P2P network model.
//!
//! This crate is the substrate beneath the Elastico sharding simulator
//! (`mvcom-elastico`) and the PBFT implementation (`mvcom-pbft`). It
//! provides:
//!
//! * [`rng`] — reproducible random-number streams: every stochastic
//!   component draws from a [`rng::SimRng`] forked from a single master
//!   seed, so a whole simulation replays bit-for-bit.
//! * [`event`] — a time-ordered [`event::EventQueue`] with stable FIFO
//!   tie-breaking, plus the [`event::Scheduler`] clock wrapper.
//! * [`latency`] — parametric [`latency::LatencyModel`]s (constant,
//!   uniform, exponential, log-normal, shifted variants) used for PoW solve
//!   times, link delays and verification costs.
//! * [`net`] — a simulated P2P [`net::Network`]: point-to-point messages
//!   with sampled delay, broadcast, node up/down status, partitions, and
//!   delivery statistics.
//! * [`chaos`] — seeded deterministic fault injection (message drops,
//!   latency spikes, scheduled node outages) that composes with [`net`] so
//!   every protocol above it can be chaos-wrapped without code changes.
//! * [`gossip`] — push-gossip (epidemic) dissemination over the network,
//!   with the classic `O(log n)` analytic round estimate.
//! * [`stats`] — streaming summary statistics and empirical CDFs used by
//!   the measurement figures.
//!
//! # Example: a tiny two-event simulation
//!
//! ```
//! use mvcom_simnet::event::Scheduler;
//! use mvcom_types::SimTime;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_in(SimTime::from_secs(1.0), Ev::Ping);
//! sched.schedule_in(SimTime::from_secs(2.0), Ev::Pong);
//!
//! let (t1, e1) = sched.next_event().unwrap();
//! assert_eq!((t1.as_secs(), e1), (1.0, Ev::Ping));
//! let (t2, e2) = sched.next_event().unwrap();
//! assert_eq!((t2.as_secs(), e2), (2.0, Ev::Pong));
//! assert!(sched.next_event().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Unit tests may unwrap freely; library code goes through the P1 rule of
// `mvcom-lint` and the workspace `clippy::unwrap_used` deny set instead.
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod chaos;
pub mod event;
pub mod gossip;
pub mod latency;
pub mod net;
pub mod rng;
pub mod stats;

pub use chaos::{ChaosConfig, ChaosInjector, ChaosStats, CrashEvent};
pub use event::{EventQueue, Scheduler};
pub use latency::LatencyModel;
pub use net::{Network, NetworkConfig};
pub use rng::SimRng;
