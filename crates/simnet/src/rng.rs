//! Reproducible random-number streams.
//!
//! Every stochastic component of the workspace takes a [`SimRng`]. A master
//! RNG is created from a single `u64` seed, and independent sub-streams are
//! *forked* by label, so adding a new consumer of randomness never perturbs
//! the draws seen by existing consumers — a property the figure-regeneration
//! harness relies on.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The workspace-wide RNG: ChaCha8, seedable, portable across platforms.
///
/// ChaCha8 is used (rather than the non-portable `StdRng`) so that the same
/// seed produces the same figures on every machine and Rust version.
pub type SimRng = ChaCha8Rng;

/// Creates the master RNG for a simulation run.
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut a = mvcom_simnet::rng::master(7);
/// let mut b = mvcom_simnet::rng::master(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn master(seed: u64) -> SimRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Forks an independent, deterministic sub-stream from `parent`, bound to a
/// textual `label`.
///
/// The child stream depends on (a) the parent's current state and (b) the
/// label, so two forks with different labels are decorrelated even when
/// taken back-to-back, and the same (seed, fork sequence) always replays.
pub fn fork(parent: &mut SimRng, label: &str) -> SimRng {
    let mut seed = [0u8; 32];
    parent.fill_bytes(&mut seed);
    // Mix the label into the seed so forks with different labels diverge
    // even if callers reorder them with identical parent state.
    for (i, byte) in label.bytes().enumerate() {
        seed[i % 32] ^= byte.rotate_left((i / 32) as u32);
    }
    ChaCha8Rng::from_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn master_is_deterministic() {
        let mut a = master(42);
        let mut b = master(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = master(1);
        let mut b = master(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn forks_with_different_labels_are_decorrelated() {
        let mut parent_a = master(9);
        let mut parent_b = master(9);
        let mut child_x = fork(&mut parent_a, "pow");
        let mut child_y = fork(&mut parent_b, "net");
        assert_ne!(child_x.gen::<u64>(), child_y.gen::<u64>());
    }

    #[test]
    fn fork_replays_with_same_parent_state_and_label() {
        let mut parent_a = master(9);
        let mut parent_b = master(9);
        let mut child_a = fork(&mut parent_a, "pow");
        let mut child_b = fork(&mut parent_b, "pow");
        let xs: Vec<u64> = (0..8).map(|_| child_a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| child_b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn fork_advances_parent() {
        let mut parent = master(9);
        let before = parent.clone();
        let _ = fork(&mut parent, "x");
        let mut untouched = before;
        // The parent has consumed 32 bytes, so it now diverges from a clone
        // of its pre-fork state.
        assert_ne!(parent.gen::<u64>(), untouched.gen::<u64>());
    }
}
