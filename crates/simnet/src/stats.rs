//! Streaming summary statistics and empirical distributions.
//!
//! The measurement experiments (paper Fig. 2) need means, deviations and
//! CDFs of latency samples; the algorithm-comparison experiments (Fig. 13)
//! need percentile summaries of converged utilities. [`Summary`] accumulates
//! moments online (Welford), and [`Ecdf`] materializes an empirical CDF.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm) with min/max.
///
/// # Example
///
/// ```
/// use mvcom_simnet::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`0.0` with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Summary {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// An empirical cumulative distribution function over a finite sample.
///
/// # Example
///
/// ```
/// use mvcom_simnet::stats::Ecdf;
///
/// let cdf = Ecdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(cdf.eval(2.5), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the CDF from raw samples (NaNs are removed).
    pub fn from_samples(mut samples: Vec<f64>) -> Ecdf {
        samples.retain(|x| !x.is_nan());
        mvcom_types::sort_by_f64(&mut samples, |&x| x);
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when built from no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)` under the empirical distribution.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile, `q ∈ [0, 1]`, by the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of an empty ECDF");
        assert!((0.0..=1.0).contains(&q), "quantile level out of range: {q}");
        // q = 0 needs no special case: ceil(0) = 0 clamps to rank 1, the minimum.
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Iterates over `(value, cumulative probability)` steps — one point
    /// per sample — ready for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; unbiased sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.add(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let sequential: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert!((left.mean() - sequential.mean()).abs() < 1e-9);
        assert!((left.variance() - sequential.variance()).abs() < 1e-9);
        assert_eq!(left.min(), sequential.min());
        assert_eq!(left.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ecdf_eval_steps() {
        let cdf = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.999), 0.5);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(100.0), 1.0);
    }

    #[test]
    fn ecdf_quantiles() {
        let cdf = Ecdf::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(0.95), 95.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn ecdf_quantile_of_empty_panics() {
        Ecdf::from_samples(vec![]).quantile(0.5);
    }

    #[test]
    fn ecdf_drops_nans_and_sorts() {
        let cdf = Ecdf::from_samples(vec![3.0, f64::NAN, 1.0]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.samples(), &[1.0, 3.0]);
    }

    #[test]
    fn ecdf_points_are_monotone() {
        let cdf = Ecdf::from_samples(vec![5.0, 1.0, 3.0]);
        let pts: Vec<(f64, f64)> = cdf.points().collect();
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }
}
