//! Time-ordered event queue and simulation clock.
//!
//! The heart of the discrete-event engine: events carry a firing time and an
//! arbitrary payload. [`EventQueue`] pops events in time order with **stable
//! FIFO tie-breaking** (two events scheduled for the same instant fire in
//! insertion order), which keeps whole simulations deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mvcom_types::SimTime;

/// An entry in the queue: `(time, sequence, payload)`.
///
/// `Reverse`-style ordering is implemented manually so that the earliest
/// time (and, within a time, the lowest sequence number) is popped first.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use mvcom_simnet::EventQueue;
/// use mvcom_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "later");
/// q.push(SimTime::from_secs(1.0), "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.pop().unwrap().1, "later");
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties fire in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// An [`EventQueue`] paired with the current simulation time.
///
/// `Scheduler` enforces the monotone-clock invariant: events cannot be
/// scheduled in the past, and popping an event advances the clock to its
/// firing time.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at time zero.
    pub fn new() -> Scheduler<E> {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.queue.push(self.now + delay, payload);
    }

    /// Schedules `payload` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current simulation time — a discrete
    /// event simulator must never rewind.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {now}",
            now = self.now
        );
        self.queue.push(at, payload);
    }

    /// Pops the earliest event and advances the clock to its firing time.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (time, payload) = self.queue.pop()?;
        self.now = time;
        Some((time, payload))
    }

    /// Firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(secs(3.0), 'c');
        q.push(secs(1.0), 'a');
        q.push(secs(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(secs(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(secs(1.0), ());
        assert_eq!(q.peek_time(), Some(secs(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(secs(1.0), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduler_advances_clock() {
        let mut s = Scheduler::new();
        s.schedule_in(secs(2.0), "x");
        s.schedule_in(secs(1.0), "y");
        let (t, e) = s.next_event().unwrap();
        assert_eq!((t, e), (secs(1.0), "y"));
        assert_eq!(s.now(), secs(1.0));
        // Relative scheduling is now relative to the advanced clock.
        s.schedule_in(secs(0.5), "z");
        let (t, e) = s.next_event().unwrap();
        assert_eq!((t, e), (secs(1.5), "z"));
        let (t, e) = s.next_event().unwrap();
        assert_eq!((t, e), (secs(2.0), "x"));
        assert!(s.is_idle());
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_in(secs(5.0), ());
        s.next_event();
        s.schedule_at(secs(1.0), ());
    }

    #[test]
    fn scheduler_pending_counts() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(s.is_idle());
        s.schedule_in(secs(1.0), 1);
        s.schedule_in(secs(2.0), 2);
        assert_eq!(s.pending(), 2);
        assert_eq!(s.peek_time(), Some(secs(1.0)));
    }

    #[test]
    fn interleaved_push_pop_maintains_order() {
        let mut q = EventQueue::new();
        q.push(secs(10.0), 10);
        q.push(secs(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(secs(5.0), 5);
        q.push(secs(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
