//! Time-ordered event queue and simulation clock.
//!
//! The heart of the discrete-event engine: events carry a firing time and an
//! arbitrary payload. [`EventQueue`] pops events in time order with **stable
//! FIFO tie-breaking** (two events scheduled for the same instant fire in
//! insertion order), which keeps whole simulations deterministic.

use std::cmp::Ordering;

use mvcom_types::SimTime;

/// A heap entry: `(time, sequence, payload slot)`.
///
/// The payload itself lives in the queue's slab — sifting moves only this
/// fixed 24-byte key, not the (potentially much larger) event, which is
/// what makes the heap hot path cheap for simulations whose events carry
/// digests or messages.
///
/// The earliest time (and, within a time, the lowest sequence number) is
/// popped first.
#[derive(Debug, Clone, Copy)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A 4-ary min-heap of [`Key`]s.
///
/// Event-queue pops dominate simulation run time, and a pop's sift-down
/// walks the heap's full depth with a data-dependent (cache-missing) read
/// per level. A 4-ary layout halves the depth vs a binary heap while the
/// four children of a node share at most two cache lines, which in
/// practice roughly halves the per-pop cost at simulation-sized queues.
///
/// Determinism: keys are totally ordered (`seq` is unique), so the pop
/// sequence is exactly ascending `(time, seq)` regardless of the heap's
/// internal arity or layout — swapping the binary heap for this one
/// cannot reorder any simulation.
#[derive(Debug, Default)]
struct MinHeap {
    keys: Vec<Key>,
}

/// Heap arity.
const D: usize = 4;

impl MinHeap {
    fn with_capacity(capacity: usize) -> MinHeap {
        MinHeap {
            keys: Vec::with_capacity(capacity),
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn peek(&self) -> Option<&Key> {
        self.keys.first()
    }

    fn push(&mut self, key: Key) {
        self.keys.push(key);
        self.sift_up(self.keys.len() - 1);
    }

    fn pop(&mut self) -> Option<Key> {
        let top = *self.keys.first()?;
        // lint: allow(P1, first() above proves the heap is non-empty)
        let last = self.keys.pop().expect("non-empty heap");
        if !self.keys.is_empty() {
            self.keys[0] = last; // lint: allow(P1, guarded by is_empty above)
            self.sift_down(0);
        }
        Some(top)
    }

    fn clear(&mut self) {
        self.keys.clear();
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if self.keys[i] < self.keys[parent] {
                self.keys.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.keys.len();
        loop {
            let first_child = i * D + 1;
            if first_child >= len {
                break;
            }
            let mut min = first_child;
            for child in (first_child + 1)..(first_child + D).min(len) {
                if self.keys[child] < self.keys[min] {
                    min = child;
                }
            }
            if self.keys[min] < self.keys[i] {
                self.keys.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

/// A priority queue of timed events with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use mvcom_simnet::EventQueue;
/// use mvcom_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "later");
/// q.push(SimTime::from_secs(1.0), "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.pop().unwrap().1, "later");
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: MinHeap,
    /// Payload slab: `heap` keys index into it, `free` recycles vacated
    /// slots so the slab's footprint tracks the peak pending count.
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: MinHeap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue pre-sized for `capacity` pending events, so
    /// hot simulation loops (PBFT broadcasts schedule O(n²) deliveries)
    /// never reallocate the heap mid-run.
    pub fn with_capacity(capacity: usize) -> EventQueue<E> {
        EventQueue {
            heap: MinHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len())
                    .unwrap_or_else(|_| panic!("event queue exceeded {} live events", u32::MAX));
                self.slots.push(Some(payload));
                slot
            }
        };
        self.heap.push(Key { time, seq, slot });
    }

    /// Takes the payload out of `slot`, returning the slot to the free
    /// list.
    fn vacate(&mut self, slot: u32) -> E {
        self.free.push(slot);
        self.slots[slot as usize]
            .take()
            // lint: allow(P1, every heap key points at an occupied slot)
            .expect("heap key points at an occupied slot")
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties fire in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let key = self.heap.pop()?;
        let payload = self.vacate(key.slot);
        Some((key.time, payload))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drains every event scheduled for the earliest pending instant into
    /// `batch` (cleared first), in FIFO order, and returns that instant.
    ///
    /// Popping a batch is equivalent to repeated [`EventQueue::pop`] calls:
    /// events pushed *while processing* a batch — even for the same instant
    /// — carry higher sequence numbers than everything already queued, so
    /// they land in a later batch exactly as they would pop later
    /// one-at-a-time. Batching only saves the per-event peek/round-trip,
    /// it never reorders deliveries.
    pub fn pop_batch(&mut self, batch: &mut Vec<E>) -> Option<SimTime> {
        batch.clear();
        let time = self.peek_time()?;
        while self.heap.peek().is_some_and(|e| e.time == time) {
            // lint: allow(P1, the peek above proves the heap is non-empty)
            let key = self.heap.pop().expect("peeked entry");
            let payload = self.vacate(key.slot);
            batch.push(payload);
        }
        Some(time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// An [`EventQueue`] paired with the current simulation time.
///
/// `Scheduler` enforces the monotone-clock invariant: events cannot be
/// scheduled in the past, and popping an event advances the clock to its
/// firing time.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at time zero.
    pub fn new() -> Scheduler<E> {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// Creates a scheduler whose queue is pre-sized for `capacity` pending
    /// events (see [`EventQueue::with_capacity`]).
    pub fn with_capacity(capacity: usize) -> Scheduler<E> {
        Scheduler {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.queue.push(self.now + delay, payload);
    }

    /// Schedules `payload` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the current simulation time — a discrete
    /// event simulator must never rewind.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at} before current time {now}",
            now = self.now
        );
        self.queue.push(at, payload);
    }

    /// Pops the earliest event and advances the clock to its firing time.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (time, payload) = self.queue.pop()?;
        self.now = time;
        Some((time, payload))
    }

    /// Pops *every* event scheduled for the earliest pending instant into
    /// `batch` (FIFO order), advancing the clock once for the whole batch.
    /// Returns the batch's firing time, or `None` when idle. Equivalent to
    /// repeated [`Scheduler::next_event`] calls at one instant — see
    /// [`EventQueue::pop_batch`] for the ordering argument.
    pub fn next_batch(&mut self, batch: &mut Vec<E>) -> Option<SimTime> {
        let time = self.queue.pop_batch(batch)?;
        self.now = time;
        Some(time)
    }

    /// Firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(secs(3.0), 'c');
        q.push(secs(1.0), 'a');
        q.push(secs(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(secs(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(secs(1.0), ());
        assert_eq!(q.peek_time(), Some(secs(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(secs(1.0), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduler_advances_clock() {
        let mut s = Scheduler::new();
        s.schedule_in(secs(2.0), "x");
        s.schedule_in(secs(1.0), "y");
        let (t, e) = s.next_event().unwrap();
        assert_eq!((t, e), (secs(1.0), "y"));
        assert_eq!(s.now(), secs(1.0));
        // Relative scheduling is now relative to the advanced clock.
        s.schedule_in(secs(0.5), "z");
        let (t, e) = s.next_event().unwrap();
        assert_eq!((t, e), (secs(1.5), "z"));
        let (t, e) = s.next_event().unwrap();
        assert_eq!((t, e), (secs(2.0), "x"));
        assert!(s.is_idle());
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_in(secs(5.0), ());
        s.next_event();
        s.schedule_at(secs(1.0), ());
    }

    #[test]
    fn scheduler_pending_counts() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(s.is_idle());
        s.schedule_in(secs(1.0), 1);
        s.schedule_in(secs(2.0), 2);
        assert_eq!(s.pending(), 2);
        assert_eq!(s.peek_time(), Some(secs(1.0)));
    }

    #[test]
    fn pop_batch_matches_one_at_a_time_pop() {
        let build = || {
            let mut q = EventQueue::with_capacity(16);
            q.push(secs(1.0), 'a');
            q.push(secs(2.0), 'c');
            q.push(secs(1.0), 'b');
            q.push(secs(2.0), 'd');
            q.push(secs(3.0), 'e');
            q
        };
        let mut serial = Vec::new();
        let mut q = build();
        while let Some((t, e)) = q.pop() {
            serial.push((t, e));
        }
        let mut batched = Vec::new();
        let mut q = build();
        let mut batch = Vec::new();
        while let Some(t) = q.pop_batch(&mut batch) {
            batched.extend(batch.iter().map(|&e| (t, e)));
        }
        assert_eq!(serial, batched);
    }

    #[test]
    fn pushes_during_a_batch_land_in_a_later_batch() {
        let mut s: Scheduler<u32> = Scheduler::with_capacity(8);
        s.schedule_in(secs(1.0), 1);
        s.schedule_in(secs(1.0), 2);
        let mut batch = Vec::new();
        let t = s.next_batch(&mut batch).unwrap();
        assert_eq!((t, batch.as_slice()), (secs(1.0), [1, 2].as_slice()));
        // A same-instant push while "processing" the batch fires next, in
        // its own batch — exactly as one-at-a-time popping would order it.
        s.schedule_at(secs(1.0), 3);
        s.schedule_in(secs(1.0), 4);
        let t = s.next_batch(&mut batch).unwrap();
        assert_eq!((t, batch.as_slice()), (secs(1.0), [3].as_slice()));
        assert_eq!(s.next_batch(&mut batch), Some(secs(2.0)));
        assert_eq!(batch, vec![4]);
        assert!(s.next_batch(&mut batch).is_none());
        assert!(batch.is_empty());
    }

    #[test]
    fn interleaved_push_pop_maintains_order() {
        let mut q = EventQueue::new();
        q.push(secs(10.0), 10);
        q.push(secs(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(secs(5.0), 5);
        q.push(secs(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
