//! Push-gossip (epidemic) broadcast over the simulated network.
//!
//! Elastico's directory stage floods identity announcements; modelling the
//! flood as per-pair unicast would be quadratic in messages, so protocols
//! use epidemic rounds: every informed node pushes to `fanout` random
//! peers each round until the rumor saturates. [`GossipRun::spread`]
//! simulates exactly that on a [`Network`], returning per-node delivery
//! times, and [`expected_rounds`] gives the classic `O(log n)` analytic
//! estimate used for capacity planning.
//!
//! Delivery times come back in a `BTreeMap` so downstream consumers
//! iterate in node-id order: replaying a seed reproduces the run
//! byte-for-byte (lint rule D1; see `tests/determinism.rs`).

use std::collections::BTreeMap;

use mvcom_types::{NodeId, Result, SimTime};

use crate::net::Network;

/// Configuration of one gossip dissemination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Peers each informed node pushes to per round.
    pub fanout: u32,
    /// Payload size per push, bytes.
    pub payload_bytes: usize,
    /// Stop after this many rounds even if uninformed nodes remain
    /// (crashed or partitioned nodes never learn the rumor).
    pub max_rounds: u32,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            fanout: 3,
            payload_bytes: 256,
            max_rounds: 64,
        }
    }
}

/// The analytic expectation of rounds to saturate `n` nodes with the given
/// fanout: `log_{fanout+1}(n)` rounds of exponential growth plus a small
/// tail constant (Karp et al.'s push-gossip bound shape).
pub fn expected_rounds(n: u32, fanout: u32) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let base = (fanout + 1) as f64;
    (f64::from(n)).ln() / base.ln() + 1.5
}

/// One gossip dissemination run.
#[derive(Debug)]
pub struct GossipRun<'a> {
    network: &'a mut Network,
    config: GossipConfig,
}

impl<'a> GossipRun<'a> {
    /// Prepares a run over `network`.
    pub fn new(network: &'a mut Network, config: GossipConfig) -> GossipRun<'a> {
        GossipRun { network, config }
    }

    /// Spreads a rumor from `origin` starting at `start`, returning each
    /// reached node's delivery time (the `origin` maps to `start`).
    ///
    /// Rounds are synchronous in the model: a node informed in round `r`
    /// pushes in round `r+1`; per-push delivery times come from the
    /// network's latency model, and a node's delivery time is the earliest
    /// push that reached it.
    ///
    /// # Errors
    ///
    /// [`mvcom_types::Error::Simulation`] if `origin` is down.
    pub fn spread(&mut self, origin: NodeId, start: SimTime) -> Result<BTreeMap<NodeId, SimTime>> {
        if !self.network.is_up(origin) {
            return Err(mvcom_types::Error::simulation(format!(
                "gossip origin {origin} is down"
            )));
        }
        let n = self.network.len();
        let mut delivered: BTreeMap<NodeId, SimTime> = BTreeMap::new();
        delivered.insert(origin, start);
        // Double-buffered frontiers: the rounds loop swaps them instead of
        // allocating a fresh Vec per round, keeping the flood allocation-free
        // after the initial reservations.
        let mut frontier = Vec::with_capacity(n as usize);
        let mut next_frontier: Vec<NodeId> = Vec::with_capacity(n as usize);
        frontier.push(origin);
        for _ in 0..self.config.max_rounds {
            if frontier.is_empty() || delivered.len() as u32 >= n {
                break;
            }
            next_frontier.clear();
            for &node in &frontier {
                let sent_at = delivered[&node];
                for _ in 0..self.config.fanout {
                    let peer = self.network.random_node();
                    if peer == node {
                        continue;
                    }
                    if let Some(arrival) =
                        self.network
                            .send(node, peer, self.config.payload_bytes, sent_at)
                    {
                        match delivered.get(&peer) {
                            Some(&existing) if existing <= arrival => {}
                            _ => {
                                delivered.insert(peer, arrival);
                                next_frontier.push(peer);
                            }
                        }
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next_frontier);
        }
        Ok(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkConfig;
    use crate::rng;

    fn network(n: u32, seed: u64) -> Network {
        Network::new(NetworkConfig::lan(n), rng::master(seed)).unwrap()
    }

    #[test]
    fn rumor_reaches_almost_everyone() {
        let mut net = network(100, 1);
        let mut run = GossipRun::new(&mut net, GossipConfig::default());
        let delivered = run.spread(NodeId(0), SimTime::ZERO).unwrap();
        assert!(
            delivered.len() >= 95,
            "only {} of 100 nodes reached",
            delivered.len()
        );
        assert_eq!(delivered[&NodeId(0)], SimTime::ZERO);
    }

    #[test]
    fn delivery_times_are_causal_and_increasing_outward() {
        let mut net = network(50, 2);
        let mut run = GossipRun::new(&mut net, GossipConfig::default());
        let start = SimTime::from_secs(10.0);
        let delivered = run.spread(NodeId(3), start).unwrap();
        for (&node, &t) in &delivered {
            if node != NodeId(3) {
                assert!(t > start, "{node} delivered at {t} before start");
            }
        }
    }

    #[test]
    fn crashed_nodes_are_never_reached() {
        let mut net = network(30, 3);
        net.crash(NodeId(7));
        net.crash(NodeId(8));
        let config = GossipConfig {
            fanout: 5, // small populations need extra fanout to saturate
            ..GossipConfig::default()
        };
        let mut run = GossipRun::new(&mut net, config);
        let delivered = run.spread(NodeId(0), SimTime::ZERO).unwrap();
        assert!(!delivered.contains_key(&NodeId(7)));
        assert!(!delivered.contains_key(&NodeId(8)));
        assert!(delivered.len() >= 20, "reached only {}", delivered.len());
    }

    #[test]
    fn dead_origin_errors() {
        let mut net = network(10, 4);
        net.crash(NodeId(0));
        let mut run = GossipRun::new(&mut net, GossipConfig::default());
        assert!(run.spread(NodeId(0), SimTime::ZERO).is_err());
    }

    #[test]
    fn expected_rounds_grows_logarithmically() {
        assert_eq!(expected_rounds(1, 3), 0.0);
        let r100 = expected_rounds(100, 3);
        let r10_000 = expected_rounds(10_000, 3);
        assert!(r10_000 < 2.5 * r100, "{r100} → {r10_000} should be ~2×");
        assert!(r10_000 > r100);
        // Higher fanout means fewer rounds.
        assert!(expected_rounds(1_000, 7) < expected_rounds(1_000, 2));
    }

    #[test]
    fn empirical_rounds_match_the_analytic_estimate() {
        // Measure saturation time in units of ~1 link delay and compare
        // against the O(log n) estimate within a generous factor.
        let mut net = network(200, 5);
        let mut run = GossipRun::new(&mut net, GossipConfig::default());
        let delivered = run.spread(NodeId(0), SimTime::ZERO).unwrap();
        let latest = delivered.values().max().unwrap().as_secs();
        let link = 0.05; // LAN mean
        let rounds = latest / link;
        let expected = expected_rounds(200, 3);
        assert!(
            rounds < 6.0 * expected,
            "empirical rounds {rounds:.1} vs expected {expected:.1}"
        );
    }

    #[test]
    fn partition_confines_the_rumor() {
        let mut net = network(20, 6);
        net.set_partition(vec![
            (0..10).map(NodeId).collect(),
            (10..20).map(NodeId).collect(),
        ]);
        let mut run = GossipRun::new(&mut net, GossipConfig::default());
        let delivered = run.spread(NodeId(0), SimTime::ZERO).unwrap();
        assert!(delivered.keys().all(|id| id.0 < 10));
    }
}
