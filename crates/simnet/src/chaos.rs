//! Seeded, deterministic fault injection for the simulated network.
//!
//! A [`ChaosInjector`] composes with [`Network`](crate::Network): once
//! installed via [`Network::set_chaos`](crate::Network::set_chaos), every
//! protocol built on the network — PBFT, gossip, shard submission — runs
//! under the configured fault model *without any call-site changes*,
//! because all of them reach the wire through `Network::send`.
//!
//! Three fault classes are modelled, all driven by a dedicated RNG stream
//! so that enabling chaos never perturbs the network's own latency draws:
//!
//! * **message drops** — each accepted send is dropped with probability
//!   `drop_prob`, counted in
//!   [`NetworkStats::chaos_dropped`](crate::net::NetworkStats);
//! * **latency spikes** — with probability `spike_prob` a delivery pays an
//!   extra delay sampled from `spike`, modelling transient congestion;
//! * **scheduled crashes** — a node goes down at a simulated time and
//!   optionally restarts later, which is how an *admitted committee dying
//!   mid-epoch* is injected (paper §V-A perceives this as an infinite ping
//!   latency).

use rand::Rng;
use serde::{Deserialize, Serialize};

use mvcom_types::{Error, NodeId, Result, SimTime};

use crate::latency::LatencyModel;
use crate::rng::SimRng;

/// One scheduled node outage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// The node that fails.
    pub node: NodeId,
    /// Simulated time at which the node goes down.
    pub at: SimTime,
    /// Optional restart time; `None` means the node stays down forever.
    pub restart_at: Option<SimTime>,
}

impl CrashEvent {
    /// A permanent crash of `node` at time `at`.
    pub fn permanent(node: NodeId, at: SimTime) -> CrashEvent {
        CrashEvent {
            node,
            at,
            restart_at: None,
        }
    }

    /// A crash followed by a restart.
    pub fn with_restart(node: NodeId, at: SimTime, restart_at: SimTime) -> CrashEvent {
        CrashEvent {
            node,
            at,
            restart_at: Some(restart_at),
        }
    }

    /// Whether this outage covers simulated time `now`.
    pub fn covers(&self, now: SimTime) -> bool {
        now >= self.at && self.restart_at.is_none_or(|r| now < r)
    }
}

/// The full fault model of one chaos run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Probability that an otherwise-deliverable message is dropped.
    pub drop_prob: f64,
    /// Probability that a delivered message pays an extra latency spike.
    pub spike_prob: f64,
    /// Distribution of the extra spike delay.
    pub spike: LatencyModel,
    /// Scheduled node outages.
    pub crashes: Vec<CrashEvent>,
}

impl ChaosConfig {
    /// No faults at all — the identity injector.
    pub fn none() -> ChaosConfig {
        ChaosConfig {
            drop_prob: 0.0,
            spike_prob: 0.0,
            spike: LatencyModel::Constant { secs: 0.0 },
            crashes: Vec::new(),
        }
    }

    /// Lossy links only: drop each message with probability `drop_prob`.
    pub fn lossy(drop_prob: f64) -> ChaosConfig {
        ChaosConfig {
            drop_prob,
            ..ChaosConfig::none()
        }
    }

    /// Adds a scheduled crash to the model.
    pub fn with_crash(mut self, crash: CrashEvent) -> ChaosConfig {
        self.crashes.push(crash);
        self
    }

    /// Validates probabilities and crash windows.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("spike_prob", self.spike_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(Error::invalid_config(
                    name,
                    format!("must be a probability in [0, 1], got {p}"),
                ));
            }
        }
        for crash in &self.crashes {
            if let Some(restart) = crash.restart_at {
                if restart <= crash.at {
                    return Err(Error::invalid_config(
                        "crashes",
                        format!(
                            "node {} restarts at {} but crashes at {}",
                            crash.node, restart, crash.at
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Counters describing every fault the injector introduced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Messages dropped by the lossy-link model.
    pub dropped: u64,
    /// Messages delayed by a latency spike.
    pub spiked: u64,
    /// Messages dropped because a scheduled outage covered an endpoint.
    pub crash_dropped: u64,
}

/// The seeded fault injector installed into a [`Network`](crate::Network).
#[derive(Debug)]
pub struct ChaosInjector {
    config: ChaosConfig,
    rng: SimRng,
    stats: ChaosStats,
}

impl ChaosInjector {
    /// Builds an injector from a validated configuration and its own RNG
    /// stream (fork it from the run's master seed for reproducibility).
    ///
    /// # Errors
    ///
    /// Propagates [`ChaosConfig::validate`].
    pub fn new(config: ChaosConfig, rng: SimRng) -> Result<ChaosInjector> {
        config.validate()?;
        Ok(ChaosInjector {
            config,
            rng,
            stats: ChaosStats::default(),
        })
    }

    /// The fault model.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Fault counters so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Whether a scheduled outage keeps `node` down at time `now`.
    pub fn node_down_at(&self, node: NodeId, now: SimTime) -> bool {
        self.config
            .crashes
            .iter()
            .any(|c| c.node == node && c.covers(now))
    }

    /// Decides the fate of one message between live endpoints at `now`.
    ///
    /// Returns `None` when the message is dropped, or `Some(extra_delay)`
    /// (zero for the common case) when it goes through. Endpoint outages
    /// must be checked separately via [`ChaosInjector::node_down_at`] so the
    /// drop is attributed to the right counter.
    pub fn judge_message(&mut self) -> Option<SimTime> {
        if self.config.drop_prob > 0.0 && self.rng.gen_bool(self.config.drop_prob) {
            self.stats.dropped += 1;
            return None;
        }
        if self.config.spike_prob > 0.0 && self.rng.gen_bool(self.config.spike_prob) {
            self.stats.spiked += 1;
            return Some(self.config.spike.sample(&mut self.rng));
        }
        Some(SimTime::ZERO)
    }

    /// Records a message dropped because an endpoint was crashed.
    pub(crate) fn count_crash_drop(&mut self) {
        self.stats.crash_dropped += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn validate_rejects_bad_probabilities_and_windows() {
        assert!(ChaosConfig::lossy(-0.1).validate().is_err());
        assert!(ChaosConfig::lossy(1.5).validate().is_err());
        assert!(ChaosConfig::lossy(0.3).validate().is_ok());
        let bad = ChaosConfig::none().with_crash(CrashEvent::with_restart(
            NodeId(0),
            SimTime::from_secs(10.0),
            SimTime::from_secs(5.0),
        ));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn crash_schedule_covers_the_outage_window() {
        let crash = CrashEvent::with_restart(
            NodeId(3),
            SimTime::from_secs(100.0),
            SimTime::from_secs(200.0),
        );
        let injector =
            ChaosInjector::new(ChaosConfig::none().with_crash(crash), rng::master(1)).unwrap();
        assert!(!injector.node_down_at(NodeId(3), SimTime::from_secs(99.0)));
        assert!(injector.node_down_at(NodeId(3), SimTime::from_secs(100.0)));
        assert!(injector.node_down_at(NodeId(3), SimTime::from_secs(199.0)));
        assert!(!injector.node_down_at(NodeId(3), SimTime::from_secs(200.0)));
        assert!(!injector.node_down_at(NodeId(4), SimTime::from_secs(150.0)));
    }

    #[test]
    fn permanent_crash_never_recovers() {
        let injector = ChaosInjector::new(
            ChaosConfig::none()
                .with_crash(CrashEvent::permanent(NodeId(1), SimTime::from_secs(50.0))),
            rng::master(2),
        )
        .unwrap();
        assert!(injector.node_down_at(NodeId(1), SimTime::from_secs(1e12)));
    }

    #[test]
    fn drop_rate_matches_configuration() {
        let mut injector = ChaosInjector::new(ChaosConfig::lossy(0.25), rng::master(3)).unwrap();
        let n = 20_000;
        let mut dropped = 0;
        for _ in 0..n {
            if injector.judge_message().is_none() {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / f64::from(n);
        assert!((rate - 0.25).abs() < 0.02, "observed drop rate {rate}");
        assert_eq!(injector.stats().dropped, u64::from(dropped as u32));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaosInjector::new(ChaosConfig::lossy(0.4), rng::master(9)).unwrap();
        let mut b = ChaosInjector::new(ChaosConfig::lossy(0.4), rng::master(9)).unwrap();
        for _ in 0..500 {
            assert_eq!(a.judge_message(), b.judge_message());
        }
    }

    #[test]
    fn spikes_add_positive_delay() {
        let config = ChaosConfig {
            spike_prob: 1.0,
            spike: LatencyModel::Constant { secs: 2.5 },
            ..ChaosConfig::none()
        };
        let mut injector = ChaosInjector::new(config, rng::master(4)).unwrap();
        assert_eq!(injector.judge_message(), Some(SimTime::from_secs(2.5)));
        assert_eq!(injector.stats().spiked, 1);
    }
}
