//! Parametric latency models.
//!
//! Every random delay in the simulator — PoW solve times, link latency,
//! transaction-verification cost — is described by a [`LatencyModel`] so
//! experiment configurations are plain data (serializable, printable) rather
//! than closures.

use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal, Uniform};
use serde::{Deserialize, Serialize};

use mvcom_types::{Error, Result, SimTime};

/// A probability distribution over non-negative delays (seconds).
///
/// # Example
///
/// ```
/// use mvcom_simnet::{LatencyModel, rng};
///
/// let model = LatencyModel::exponential(600.0).unwrap();
/// let mut rng = rng::master(1);
/// let sample = model.sample(&mut rng);
/// assert!(sample.as_secs() >= 0.0);
/// assert!((model.mean() - 600.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LatencyModel {
    /// Always exactly `secs`.
    Constant {
        /// The fixed delay in seconds.
        secs: f64,
    },
    /// Uniform on `[low, high)` seconds.
    Uniform {
        /// Inclusive lower bound in seconds.
        low: f64,
        /// Exclusive upper bound in seconds.
        high: f64,
    },
    /// Exponential with the given mean (e.g. PoW solve time, mean 600 s in
    /// the paper's setup).
    Exponential {
        /// Mean in seconds (`1/λ`).
        mean_secs: f64,
    },
    /// Log-normal given the mean and standard deviation **of the resulting
    /// delay** (not of the underlying normal); heavy-tailed link delays.
    LogNormal {
        /// Mean of the delay in seconds.
        mean_secs: f64,
        /// Standard deviation of the delay in seconds.
        std_secs: f64,
    },
    /// A constant floor plus an exponential tail: `offset + Exp(mean)`.
    /// Models delays with a deterministic propagation floor (e.g. a network
    /// round trip) and a stochastic queueing tail.
    ShiftedExponential {
        /// The deterministic floor in seconds.
        offset_secs: f64,
        /// Mean of the exponential tail in seconds.
        mean_secs: f64,
    },
}

impl LatencyModel {
    /// A constant delay.
    pub fn constant(secs: f64) -> Result<LatencyModel> {
        if !secs.is_finite() || secs < 0.0 {
            return Err(Error::invalid_config(
                "constant.secs",
                format!("must be finite and non-negative, got {secs}"),
            ));
        }
        Ok(LatencyModel::Constant { secs })
    }

    /// A uniform delay on `[low, high)`.
    pub fn uniform(low: f64, high: f64) -> Result<LatencyModel> {
        if !(low.is_finite() && high.is_finite()) || low < 0.0 || high <= low {
            return Err(Error::invalid_config(
                "uniform",
                format!("need 0 <= low < high, got [{low}, {high})"),
            ));
        }
        Ok(LatencyModel::Uniform { low, high })
    }

    /// An exponential delay with the given mean.
    pub fn exponential(mean_secs: f64) -> Result<LatencyModel> {
        if !mean_secs.is_finite() || mean_secs <= 0.0 {
            return Err(Error::invalid_config(
                "exponential.mean_secs",
                format!("must be positive, got {mean_secs}"),
            ));
        }
        Ok(LatencyModel::Exponential { mean_secs })
    }

    /// A log-normal delay with the given mean and standard deviation of the
    /// *delay itself*.
    pub fn log_normal(mean_secs: f64, std_secs: f64) -> Result<LatencyModel> {
        if !(mean_secs.is_finite() && std_secs.is_finite()) || mean_secs <= 0.0 || std_secs <= 0.0 {
            return Err(Error::invalid_config(
                "log_normal",
                format!("need positive mean and std, got mean={mean_secs}, std={std_secs}"),
            ));
        }
        Ok(LatencyModel::LogNormal {
            mean_secs,
            std_secs,
        })
    }

    /// A delay with a deterministic floor and an exponential tail.
    pub fn shifted_exponential(offset_secs: f64, mean_secs: f64) -> Result<LatencyModel> {
        if !offset_secs.is_finite() || offset_secs < 0.0 {
            return Err(Error::invalid_config(
                "shifted_exponential.offset_secs",
                format!("must be finite and non-negative, got {offset_secs}"),
            ));
        }
        if !mean_secs.is_finite() || mean_secs <= 0.0 {
            return Err(Error::invalid_config(
                "shifted_exponential.mean_secs",
                format!("must be positive, got {mean_secs}"),
            ));
        }
        Ok(LatencyModel::ShiftedExponential {
            offset_secs,
            mean_secs,
        })
    }

    /// Draws one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match *self {
            LatencyModel::Constant { secs } => SimTime::from_secs(secs),
            LatencyModel::Uniform { low, high } => {
                SimTime::from_secs(Uniform::new(low, high).sample(rng))
            }
            LatencyModel::Exponential { mean_secs } => {
                // lint: allow(P1, validate() requires mean_secs > 0, so the rate is valid)
                let exp = Exp::new(1.0 / mean_secs).expect("validated at construction");
                SimTime::from_secs(exp.sample(rng))
            }
            LatencyModel::LogNormal {
                mean_secs,
                std_secs,
            } => {
                // Convert the desired delay moments into the underlying
                // normal parameters: if X ~ LogNormal(mu, sigma) then
                // E[X] = exp(mu + sigma^2/2), Var[X] = (exp(sigma^2)-1)E[X]^2.
                let cv2 = (std_secs / mean_secs).powi(2);
                let sigma2 = (1.0 + cv2).ln();
                let mu = mean_secs.ln() - sigma2 / 2.0;
                // lint: allow(P1, validate() requires finite positive moments, so sigma is valid)
                let ln = LogNormal::new(mu, sigma2.sqrt()).expect("validated at construction");
                SimTime::from_secs(ln.sample(rng))
            }
            LatencyModel::ShiftedExponential {
                offset_secs,
                mean_secs,
            } => {
                // lint: allow(P1, validate() requires mean_secs > 0, so the rate is valid)
                let exp = Exp::new(1.0 / mean_secs).expect("validated at construction");
                SimTime::from_secs(offset_secs + exp.sample(rng))
            }
        }
    }

    /// The analytic mean of the distribution, in seconds.
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Constant { secs } => secs,
            LatencyModel::Uniform { low, high } => (low + high) / 2.0,
            LatencyModel::Exponential { mean_secs } => mean_secs,
            LatencyModel::LogNormal { mean_secs, .. } => mean_secs,
            LatencyModel::ShiftedExponential {
                offset_secs,
                mean_secs,
            } => offset_secs + mean_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn sample_mean(model: &LatencyModel, n: usize, seed: u64) -> f64 {
        let mut r = rng::master(seed);
        (0..n).map(|_| model.sample(&mut r).as_secs()).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_always_equal() {
        let m = LatencyModel::constant(3.5).unwrap();
        let mut r = rng::master(0);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r).as_secs(), 3.5);
        }
        assert_eq!(m.mean(), 3.5);
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let m = LatencyModel::uniform(2.0, 4.0).unwrap();
        let mut r = rng::master(1);
        for _ in 0..1000 {
            let s = m.sample(&mut r).as_secs();
            assert!((2.0..4.0).contains(&s));
        }
        assert!((sample_mean(&m, 20_000, 2) - 3.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_matches() {
        let m = LatencyModel::exponential(600.0).unwrap();
        let empirical = sample_mean(&m, 50_000, 3);
        assert!(
            (empirical - 600.0).abs() / 600.0 < 0.03,
            "empirical mean {empirical}"
        );
    }

    #[test]
    fn log_normal_moments_match() {
        let m = LatencyModel::log_normal(54.5, 10.0).unwrap();
        let empirical = sample_mean(&m, 50_000, 4);
        assert!(
            (empirical - 54.5).abs() / 54.5 < 0.03,
            "empirical mean {empirical}"
        );
        // All samples positive.
        let mut r = rng::master(5);
        for _ in 0..1000 {
            assert!(m.sample(&mut r).as_secs() > 0.0);
        }
    }

    #[test]
    fn shifted_exponential_floor_and_mean() {
        let m = LatencyModel::shifted_exponential(2.0, 3.0).unwrap();
        let mut r = rng::master(6);
        for _ in 0..1000 {
            assert!(m.sample(&mut r).as_secs() >= 2.0);
        }
        assert_eq!(m.mean(), 5.0);
        let empirical = sample_mean(&m, 50_000, 7);
        assert!((empirical - 5.0).abs() < 0.1, "empirical mean {empirical}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(LatencyModel::shifted_exponential(-1.0, 1.0).is_err());
        assert!(LatencyModel::shifted_exponential(1.0, 0.0).is_err());
        assert!(LatencyModel::constant(-1.0).is_err());
        assert!(LatencyModel::constant(f64::NAN).is_err());
        assert!(LatencyModel::uniform(3.0, 2.0).is_err());
        assert!(LatencyModel::uniform(-1.0, 2.0).is_err());
        assert!(LatencyModel::exponential(0.0).is_err());
        assert!(LatencyModel::exponential(-5.0).is_err());
        assert!(LatencyModel::log_normal(0.0, 1.0).is_err());
        assert!(LatencyModel::log_normal(1.0, 0.0).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let m = LatencyModel::exponential(600.0).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: LatencyModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::log_normal(10.0, 2.0).unwrap();
        let mut a = rng::master(7);
        let mut b = rng::master(7);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }
}
