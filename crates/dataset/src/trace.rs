//! Trace generation and (de)serialization.

use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};

use mvcom_types::{BlockId, Error, Hash32, Result};

use crate::block::TxBlock;

/// Parameters of the synthetic Bitcoin-like trace generator.
///
/// Defaults reproduce the statistics the paper reports for its snapshot
/// (§VI-A): 1,378 blocks carrying ≈1.5 M transactions in total, block
/// creation times spaced by ~600 s starting at 2016-01-01.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of blocks to generate.
    pub n_blocks: usize,
    /// Unix timestamp of the first block.
    pub start_unix: u64,
    /// Mean inter-block time in seconds (exponential / Poisson arrivals).
    pub mean_interval_secs: f64,
    /// Mean transactions per block.
    pub mean_txs_per_block: f64,
    /// Coefficient of variation of the per-block TX count (log-normal).
    pub txs_cv: f64,
    /// Hard floor on per-block TX count (a mined block has ≥ 1 coinbase TX).
    pub min_txs: u64,
}

impl TraceConfig {
    /// The paper's January-2016 snapshot: 1378 blocks, ≈1089 TXs per block
    /// (1.5 M total), 600-second target spacing.
    pub fn jan_2016() -> TraceConfig {
        TraceConfig {
            n_blocks: 1378,
            start_unix: 1_451_606_400, // 2016-01-01T00:00:00Z
            mean_interval_secs: 600.0,
            mean_txs_per_block: 1_500_000.0 / 1378.0,
            txs_cv: 0.45,
            min_txs: 1,
        }
    }

    /// A small trace for fast tests.
    pub fn tiny(n_blocks: usize) -> TraceConfig {
        TraceConfig {
            n_blocks,
            ..TraceConfig::jan_2016()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_blocks == 0 {
            return Err(Error::invalid_config(
                "n_blocks",
                "trace needs at least one block",
            ));
        }
        if !(self.mean_interval_secs.is_finite() && self.mean_interval_secs > 0.0) {
            return Err(Error::invalid_config(
                "mean_interval_secs",
                format!("must be positive, got {}", self.mean_interval_secs),
            ));
        }
        if !(self.mean_txs_per_block.is_finite() && self.mean_txs_per_block >= 1.0) {
            return Err(Error::invalid_config(
                "mean_txs_per_block",
                format!("must be >= 1, got {}", self.mean_txs_per_block),
            ));
        }
        if !(self.txs_cv.is_finite() && self.txs_cv > 0.0) {
            return Err(Error::invalid_config(
                "txs_cv",
                format!("must be positive, got {}", self.txs_cv),
            ));
        }
        Ok(())
    }
}

/// A generated (or loaded) block trace, sorted by creation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    config: TraceConfig,
    blocks: Vec<TxBlock>,
}

impl Trace {
    /// Generates a trace deterministically from `config` and `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid; use [`TraceConfig::validate`] to check
    /// untrusted configurations first.
    pub fn generate(config: TraceConfig, seed: u64) -> Trace {
        // lint: allow(P1, documented panic contract; untrusted configs call validate() first)
        config.validate().expect("invalid trace configuration");
        let mut rng = mvcom_simnet::rng::master(seed);
        // lint: allow(P1, validate() requires mean_interval_secs > 0)
        let interval = Exp::new(1.0 / config.mean_interval_secs).expect("validated");
        // Log-normal parameters from desired mean m and CV c:
        // sigma^2 = ln(1 + c^2), mu = ln m - sigma^2 / 2.
        let sigma2 = (1.0 + config.txs_cv * config.txs_cv).ln();
        let mu = config.mean_txs_per_block.ln() - sigma2 / 2.0;
        // lint: allow(P1, validate() bounds the CV, so sigma is finite and non-negative)
        let txs_dist = LogNormal::new(mu, sigma2.sqrt()).expect("validated");

        let mut btime = config.start_unix as f64;
        let blocks = (0..config.n_blocks)
            .map(|i| {
                btime += interval.sample(&mut rng);
                let txs = (txs_dist.sample(&mut rng).round() as u64).max(config.min_txs);
                let nonce: u64 = rng.gen();
                TxBlock {
                    id: BlockId(i as u64),
                    bhash: Hash32::digest(
                        &[(i as u64).to_le_bytes(), nonce.to_le_bytes()].concat(),
                    ),
                    btime: btime as u64,
                    txs,
                }
            })
            .collect();
        Trace { config, blocks }
    }

    /// The generator configuration this trace was built from.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The blocks, ordered by creation time.
    pub fn blocks(&self) -> &[TxBlock] {
        &self.blocks
    }

    /// Total number of transactions across all blocks.
    pub fn total_txs(&self) -> u64 {
        self.blocks.iter().map(|b| b.txs).sum()
    }

    /// Mean transactions per block.
    pub fn mean_txs(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.total_txs() as f64 / self.blocks.len() as f64
        }
    }

    /// Serializes the trace to a JSON string (the on-disk dataset format).
    pub fn to_json(&self) -> String {
        // lint: allow(P1, serializing an in-memory trace cannot fail)
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Loads a trace previously produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInstance`] if the JSON does not parse as a
    /// trace or the blocks are not time-ordered.
    pub fn from_json(json: &str) -> Result<Trace> {
        let trace: Trace = serde_json::from_str(json)
            .map_err(|e| Error::invalid_instance(format!("malformed trace JSON: {e}")))?;
        // lint: allow(P1, windows(2) yields slices of length 2)
        if trace.blocks.windows(2).any(|w| !w[0].precedes(&w[1])) {
            return Err(Error::invalid_instance("trace blocks are not time-ordered"));
        }
        Ok(trace)
    }

    /// Imports a trace from the paper's dataset schema as CSV:
    /// `blockID,bhash,btime,txs` (a header row is accepted and skipped).
    /// Users holding the original Bitcoin snapshot can load it here and
    /// run every experiment against the real data.
    ///
    /// Blocks are re-sorted by `btime`; `bhash` accepts a 64-hex-char
    /// digest or any other string (hashed to 32 bytes).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInstance`] for rows with missing or non-numeric
    /// fields, or an empty file.
    pub fn from_csv(csv: &str) -> Result<Trace> {
        let mut blocks = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if lineno == 0
                && fields
                    .first()
                    .is_some_and(|f| f.eq_ignore_ascii_case("blockid"))
            {
                continue; // header row
            }
            let [f_id, f_bhash, f_btime, f_txs] = fields[..] else {
                return Err(Error::invalid_instance(format!(
                    "line {}: expected 4 fields `blockID,bhash,btime,txs`, got {}",
                    lineno + 1,
                    fields.len()
                )));
            };
            let parse_u64 = |s: &str, name: &str| {
                s.parse::<u64>().map_err(|_| {
                    Error::invalid_instance(format!(
                        "line {}: `{name}` is not an unsigned integer: {s}",
                        lineno + 1
                    ))
                })
            };
            let id = BlockId(parse_u64(f_id, "blockID")?);
            let bhash = parse_hash(f_bhash);
            let btime = parse_u64(f_btime, "btime")?;
            let txs = parse_u64(f_txs, "txs")?;
            if txs == 0 {
                return Err(Error::invalid_instance(format!(
                    "line {}: a block cannot contain zero transactions",
                    lineno + 1
                )));
            }
            blocks.push(TxBlock {
                id,
                bhash,
                btime,
                txs,
            });
        }
        if blocks.is_empty() {
            return Err(Error::invalid_instance("CSV contained no blocks"));
        }
        blocks.sort_by_key(|b| b.btime);
        let n_blocks = blocks.len();
        // lint: allow(P1, the is_empty guard above ensures at least one block)
        let span = (blocks.last().expect("non-empty").btime - blocks[0].btime).max(1);
        let total: u64 = blocks.iter().map(|b| b.txs).sum();
        let config = TraceConfig {
            n_blocks,
            // lint: allow(P1, the is_empty guard above ensures at least one block)
            start_unix: blocks[0].btime,
            mean_interval_secs: span as f64 / n_blocks.max(2).saturating_sub(1) as f64,
            mean_txs_per_block: total as f64 / n_blocks as f64,
            txs_cv: 0.0_f64.max(1e-9), // unknown for imported data; unused
            min_txs: 1,
        };
        Ok(Trace { config, blocks })
    }
}

/// Parses a 64-hex-char block hash, falling back to hashing the raw text.
fn parse_hash(s: &str) -> Hash32 {
    if s.len() == 64 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
        let mut bytes = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            // lint: allow(P1, chunks(2) of a 64-char hex string yields full pairs of hex digits)
            let hi = (chunk[0] as char).to_digit(16).expect("hex checked");
            // lint: allow(P1, chunks(2) of a 64-char hex string yields full pairs of hex digits)
            let lo = (chunk[1] as char).to_digit(16).expect("hex checked");
            bytes[i] = ((hi << 4) | lo) as u8;
        }
        Hash32(bytes)
    } else {
        Hash32::digest(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jan_2016_statistics_match_paper() {
        let trace = Trace::generate(TraceConfig::jan_2016(), 0);
        assert_eq!(trace.blocks().len(), 1378);
        let total = trace.total_txs();
        // Expect ≈1.5M with a log-normal spread; seed 0 must land within 10%.
        assert!(
            (1_350_000..=1_650_000).contains(&total),
            "total txs = {total}"
        );
        let mean = trace.mean_txs();
        assert!((mean - 1089.0).abs() < 110.0, "mean txs/block = {mean}");
    }

    #[test]
    fn blocks_are_time_ordered_with_600s_spacing() {
        let trace = Trace::generate(TraceConfig::jan_2016(), 1);
        let blocks = trace.blocks();
        for w in blocks.windows(2) {
            assert!(w[0].precedes(&w[1]));
        }
        let span = (blocks.last().unwrap().btime - blocks[0].btime) as f64;
        let mean_gap = span / (blocks.len() - 1) as f64;
        assert!((mean_gap - 600.0).abs() < 60.0, "mean gap = {mean_gap}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Trace::generate(TraceConfig::tiny(50), 7);
        let b = Trace::generate(TraceConfig::tiny(50), 7);
        assert_eq!(a, b);
        let c = Trace::generate(TraceConfig::tiny(50), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn block_ids_are_sequential_and_hashes_unique() {
        let trace = Trace::generate(TraceConfig::tiny(100), 3);
        let mut hashes = std::collections::HashSet::new();
        for (i, b) in trace.blocks().iter().enumerate() {
            assert_eq!(b.id, BlockId(i as u64));
            assert!(hashes.insert(b.bhash), "duplicate hash at block {i}");
            assert!(b.txs >= 1);
        }
    }

    #[test]
    fn json_round_trip() {
        let trace = Trace::generate(TraceConfig::tiny(10), 5);
        let json = trace.to_json();
        let back = Trace::from_json(&json).unwrap();
        // Blocks are integers and must round-trip exactly; float config
        // fields may lose an ULP through JSON text formatting.
        assert_eq!(back.blocks(), trace.blocks());
        assert_eq!(back.config().n_blocks, trace.config().n_blocks);
        assert!(
            (back.config().mean_txs_per_block - trace.config().mean_txs_per_block).abs() < 1e-6
        );
    }

    #[test]
    fn from_json_rejects_garbage_and_misordered() {
        assert!(Trace::from_json("not json").is_err());
        let mut trace = Trace::generate(TraceConfig::tiny(3), 5);
        trace.blocks.swap(0, 2);
        let json = serde_json::to_string(&trace).unwrap();
        assert!(Trace::from_json(&json).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = TraceConfig::jan_2016();
        c.n_blocks = 0;
        assert!(c.validate().is_err());
        let mut c = TraceConfig::jan_2016();
        c.mean_interval_secs = 0.0;
        assert!(c.validate().is_err());
        let mut c = TraceConfig::jan_2016();
        c.mean_txs_per_block = 0.5;
        assert!(c.validate().is_err());
        let mut c = TraceConfig::jan_2016();
        c.txs_cv = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn from_csv_parses_the_paper_schema() {
        let csv = "blockID,bhash,btime,txs\n\
                   2,aa00000000000000000000000000000000000000000000000000000000000bb,1451606401,500\n\
                   0,00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff,1451606400,1000\n\
                   1,some-opaque-hash,1451606500,750\n";
        let trace = Trace::from_csv(csv).unwrap();
        assert_eq!(trace.blocks().len(), 3);
        // Re-sorted by btime.
        assert_eq!(trace.blocks()[0].id, BlockId(0));
        assert_eq!(trace.blocks()[1].id, BlockId(2));
        assert_eq!(trace.blocks()[2].id, BlockId(1));
        assert_eq!(trace.total_txs(), 2_250);
        // A valid 64-hex hash round-trips exactly.
        assert_eq!(
            trace.blocks()[0].bhash.to_hex(),
            "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"
        );
    }

    #[test]
    fn from_csv_rejects_malformed_rows() {
        assert!(Trace::from_csv("").is_err());
        assert!(Trace::from_csv("1,h,100").is_err()); // missing field
        assert!(Trace::from_csv("x,h,100,5").is_err()); // non-numeric id
        assert!(Trace::from_csv("1,h,abc,5").is_err()); // non-numeric btime
        assert!(Trace::from_csv("1,h,100,0").is_err()); // zero txs
        assert!(Trace::from_csv("blockID,bhash,btime,txs\n").is_err()); // header only
    }

    #[test]
    fn from_csv_derives_config_statistics() {
        let csv = "0,h0,1000,100\n1,h1,1600,200\n2,h2,2200,300\n";
        let trace = Trace::from_csv(csv).unwrap();
        assert_eq!(trace.config().n_blocks, 3);
        assert_eq!(trace.config().start_unix, 1000);
        assert!((trace.config().mean_interval_secs - 600.0).abs() < 1.0);
        assert!((trace.config().mean_txs_per_block - 200.0).abs() < 1e-9);
    }

    #[test]
    fn min_txs_floor_is_respected() {
        let config = TraceConfig {
            mean_txs_per_block: 1.0,
            txs_cv: 3.0,
            min_txs: 1,
            ..TraceConfig::tiny(500)
        };
        let trace = Trace::generate(config, 9);
        assert!(trace.blocks().iter().all(|b| b.txs >= 1));
    }
}
