//! Synthetic Bitcoin-like transaction dataset and epoch shard sampling.
//!
//! The paper evaluates MVCom on "the dataset of real-world blockchain
//! transactions": the first 1,500,000 transactions recorded in January 2016,
//! from which 1,378 transaction blocks were sampled; each record carries
//! `blockID`, `bhash`, `btime` and `txs` (§VI-A). That snapshot is not
//! redistributable, so this crate generates a **statistically equivalent
//! synthetic trace**: Poisson block arrivals with the Bitcoin target
//! inter-block time (~600 s) and per-block transaction counts drawn from a
//! log-normal matched to the snapshot's mean (1.5 M / 1378 ≈ 1089 TXs per
//! block). The MVCom scheduler consumes only per-shard transaction counts
//! and latencies, so matching these marginals preserves every behaviour the
//! evaluation exercises (see DESIGN.md §5).
//!
//! * [`block`] — the `TxBlock` record (`blockID`, `bhash`, `btime`, `txs`).
//! * [`trace`] — [`trace::TraceConfig`] / [`trace::Trace`]: the generator
//!   and (de)serialization.
//! * [`sampler`] — [`sampler::ShardSampler`]: groups sampled blocks into
//!   per-committee shards for one epoch, exactly as §VI-A describes.
//! * [`epoch`] — [`epoch::EpochGenerator`]: attaches two-phase latencies to
//!   sampled shards, producing ready-to-schedule `Vec<ShardInfo>`.
//! * [`stream`] — [`stream::ShardStream`]: chunked `O(chunk)`-memory shard
//!   generation for `|I| = 10⁴–10⁵` instances (chunk-size-invariant,
//!   deterministic per seed).
//! * [`adversary`] — strategic committee behaviours (`Misreport`,
//!   `Freerider`, `Starver`) and the stable-identity
//!   [`adversary::StrategicPopulation`] the reputation defenses learn over.
//!
//! # Example
//!
//! ```
//! use mvcom_dataset::{Trace, TraceConfig};
//!
//! let trace = Trace::generate(TraceConfig::jan_2016(), 42);
//! assert_eq!(trace.blocks().len(), 1378);
//! let total: u64 = trace.blocks().iter().map(|b| b.txs).sum();
//! assert!((1_300_000..1_700_000).contains(&total));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Unit tests may unwrap freely; library code goes through the P1 rule of
// `mvcom-lint` and the workspace `clippy::unwrap_used` deny set instead.
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod adversary;
pub mod block;
pub mod epoch;
pub mod sampler;
pub mod stream;
pub mod trace;

pub use adversary::{
    build_adversary, Adversary, AdversaryConfig, CommitteeReport, Freerider, Misreport, Starver,
    StrategicPopulation,
};
pub use block::TxBlock;
pub use epoch::{EpochGenerator, LatencyConfig};
pub use sampler::ShardSampler;
pub use stream::{ShardStream, StreamConfig};
pub use trace::{Trace, TraceConfig};
