//! Strategic (rational-adversarial) committee behaviours.
//!
//! PR 1's fault model covered *benign* failures — drops, crashes, latency
//! spikes. This module models committees that **lie**: at the start of an
//! epoch every member committee reports its features `(s_i, l_i)` to the
//! final committee (paper §III-A), and nothing in the base protocol stops
//! a rational committee from misreporting them to capture utility it did
//! not earn. Each strategy turns one epoch's honest ground truth into
//! `(truth, reported)` pairs ([`CommitteeReport`]); the scheduler sees the
//! reports, while realized performance follows the truth. The defenses
//! living in `mvcom-core::defense` close the loop by comparing the two.
//!
//! All strategies are driven deterministically from an adversary seed, the
//! epoch index and the committee id — never from call order — so the same
//! configuration replays byte-identically at any thread count.

use std::collections::BTreeSet;

use rand::Rng;

use mvcom_simnet::{rng, SimRng};
use mvcom_types::{CommitteeId, Error, Result, ShardInfo, TwoPhaseLatency};

use crate::epoch::LatencyConfig;

/// What one committee told the final committee versus what it actually
/// delivered in one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitteeReport {
    /// Ground truth: the features the committee actually realizes.
    pub truth: ShardInfo,
    /// The features the committee *claims* at formation time — what the
    /// scheduler sees.
    pub reported: ShardInfo,
    /// Whether this committee is controlled by the adversary.
    pub adversarial: bool,
}

impl CommitteeReport {
    /// An honest committee: report equals truth.
    pub fn honest(shard: ShardInfo) -> CommitteeReport {
        CommitteeReport {
            truth: shard,
            reported: shard,
            adversarial: false,
        }
    }

    /// The committee this report belongs to.
    pub fn committee(&self) -> CommitteeId {
        self.truth.committee()
    }

    /// Relative size misreport: `reported_s / true_s − 1`.
    pub fn ds(&self) -> f64 {
        self.reported.tx_count() as f64 / (self.truth.tx_count().max(1)) as f64 - 1.0
    }

    /// Relative latency misreport: `reported_l / true_l − 1`.
    pub fn dl(&self) -> f64 {
        let truth = self.truth.two_phase_latency().as_secs().max(f64::EPSILON);
        self.reported.two_phase_latency().as_secs() / truth - 1.0
    }
}

/// Shared adversary parameters: which fraction of the population colludes
/// and the seed all strategic randomness forks from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryConfig {
    /// Fraction of the committees the adversary controls, in `[0, 1]`.
    pub fraction: f64,
    /// Master seed of the adversary's (deterministic) random choices.
    pub seed: u64,
}

impl AdversaryConfig {
    /// Builds a configuration, validating the fraction domain.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `fraction` is outside `[0, 1]` or not
    /// finite.
    pub fn new(fraction: f64, seed: u64) -> Result<AdversaryConfig> {
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(Error::invalid_config(
                "adv-fraction",
                format!("must be a fraction within [0, 1], got {fraction}"),
            ));
        }
        Ok(AdversaryConfig { fraction, seed })
    }

    /// The adversarial subset of `committees`: exactly
    /// `round(fraction · n)` members, chosen by a deterministic per-id
    /// lottery (rank by a seeded hash draw). Independent of input order.
    pub fn subset(&self, committees: &[CommitteeId]) -> BTreeSet<CommitteeId> {
        let k = (self.fraction * committees.len() as f64).round() as usize;
        let mut ranked: Vec<(u64, CommitteeId)> = committees
            .iter()
            .map(|&c| (draw(self.seed, 0, c, "roster").gen::<u64>(), c))
            .collect();
        ranked.sort_unstable();
        ranked.into_iter().take(k).map(|(_, c)| c).collect()
    }
}

/// A per-(seed, epoch, committee) random stream, independent of call order.
fn draw(seed: u64, epoch: u64, committee: CommitteeId, label: &str) -> SimRng {
    let mut master = rng::master(seed);
    rng::fork(
        &mut master,
        &format!("adv:{label}:{epoch}:{}", committee.value()),
    )
}

/// A strategic fault model: maps one epoch's honest shard set to
/// `(truth, reported)` pairs, perturbing the committees it controls.
pub trait Adversary {
    /// Strategy name, as it appears on `adversary_act` telemetry and CLI
    /// flags (`misreport` | `freerider` | `starver`).
    fn name(&self) -> &'static str;

    /// Whether the strategy controls `committee` within the given roster.
    fn controls(&self, committee: CommitteeId, roster: &[CommitteeId]) -> bool;

    /// Perturbs one epoch. `honest` is the ground-truth shard set; the
    /// output preserves input order and covers every input committee.
    fn act(&self, epoch: u64, honest: &[ShardInfo]) -> Vec<CommitteeReport>;
}

fn roster_of(honest: &[ShardInfo]) -> Vec<CommitteeId> {
    honest.iter().map(ShardInfo::committee).collect()
}

fn scale_latency(latency: TwoPhaseLatency, factor: f64) -> TwoPhaseLatency {
    TwoPhaseLatency::new(
        latency.formation() * factor.max(0.0),
        latency.consensus() * factor.max(0.0),
    )
}

/// `Misreport`: inflate the claimed shard size `s_i` and deflate the
/// claimed latency `l_i` at formation time, so the scheduler over-values
/// the shard on both axes of the objective `α·s_i − (t − l_i)`. Realized
/// performance is the unperturbed truth.
#[derive(Debug, Clone, Copy)]
pub struct Misreport {
    /// Shared fraction/seed parameters.
    pub config: AdversaryConfig,
    /// Maximum relative size inflation (reported up to `(1+inflate_s)·s`).
    pub inflate_s: f64,
    /// Maximum relative latency deflation (reported down to
    /// `(1−deflate_l)·l`).
    pub deflate_l: f64,
}

impl Misreport {
    /// Default magnitudes: up to +80% claimed size, −60% claimed latency.
    pub fn new(config: AdversaryConfig) -> Misreport {
        Misreport {
            config,
            inflate_s: 0.8,
            deflate_l: 0.6,
        }
    }
}

impl Adversary for Misreport {
    fn name(&self) -> &'static str {
        "misreport"
    }

    fn controls(&self, committee: CommitteeId, roster: &[CommitteeId]) -> bool {
        self.config.subset(roster).contains(&committee)
    }

    fn act(&self, epoch: u64, honest: &[ShardInfo]) -> Vec<CommitteeReport> {
        let subset = self.config.subset(&roster_of(honest));
        honest
            .iter()
            .map(|&shard| {
                if !subset.contains(&shard.committee()) {
                    return CommitteeReport::honest(shard);
                }
                let mut r = draw(self.config.seed, epoch, shard.committee(), "misreport");
                // Lie magnitude varies per epoch in [½·max, max]: a static
                // lie would be trivially learnable in one observation.
                let u: f64 = r.gen_range(0.5..1.0);
                let s = ((shard.tx_count() as f64) * (1.0 + self.inflate_s * u)).round() as u64;
                let l = scale_latency(shard.latency(), 1.0 - self.deflate_l * u);
                CommitteeReport {
                    truth: shard,
                    reported: ShardInfo::new(shard.committee(), s.max(1), l),
                    adversarial: true,
                }
            })
            .collect()
    }
}

/// `Freerider`: report honestly, deliver late. The committee defers its
/// own two-phase work and rides the RESET-bus broadcasts of the working
/// committees (it only submits after observing the others' progress), so
/// its *realized* latency exceeds the reported one by the time it spent
/// waiting — the report looked honest at formation, the truth is slower.
#[derive(Debug, Clone, Copy)]
pub struct Freerider {
    /// Shared fraction/seed parameters.
    pub config: AdversaryConfig,
    /// Maximum relative delay of the realized latency.
    pub delay: f64,
}

impl Freerider {
    /// Default magnitude: realized latency up to +90% of the report.
    pub fn new(config: AdversaryConfig) -> Freerider {
        Freerider { config, delay: 0.9 }
    }
}

impl Adversary for Freerider {
    fn name(&self) -> &'static str {
        "freerider"
    }

    fn controls(&self, committee: CommitteeId, roster: &[CommitteeId]) -> bool {
        self.config.subset(roster).contains(&committee)
    }

    fn act(&self, epoch: u64, honest: &[ShardInfo]) -> Vec<CommitteeReport> {
        let subset = self.config.subset(&roster_of(honest));
        honest
            .iter()
            .map(|&shard| {
                if !subset.contains(&shard.committee()) {
                    return CommitteeReport::honest(shard);
                }
                let mut r = draw(self.config.seed, epoch, shard.committee(), "freerider");
                let u: f64 = r.gen_range(0.5..1.0);
                let late = scale_latency(shard.latency(), 1.0 + self.delay * u);
                CommitteeReport {
                    truth: ShardInfo::new(shard.committee(), shard.tx_count(), late),
                    reported: shard,
                    adversarial: true,
                }
            })
            .collect()
    }
}

/// `Starver`: a colluding coalition that targets its rivals. Every member
/// undercuts the fastest *honest* latency (so the coalition survives any
/// arrival cutoff and minimizes its own age penalty) and inflates its
/// claimed size toward the biggest honest shard (so the coalition eats the
/// capacity `Ĉ`), aiming to crowd honest committees out of the admitted
/// set until fewer than `N_min` of them remain — starvation.
#[derive(Debug, Clone, Copy)]
pub struct Starver {
    /// Shared fraction/seed parameters.
    pub config: AdversaryConfig,
    /// Relative size inflation over the largest honest claim.
    pub inflate_s: f64,
    /// How far below the fastest honest latency the coalition undercuts.
    pub undercut: f64,
}

impl Starver {
    /// Default magnitudes: claim 30% over the biggest honest shard, arrive
    /// (on paper) up to 40% earlier than the fastest honest committee.
    pub fn new(config: AdversaryConfig) -> Starver {
        Starver {
            config,
            inflate_s: 0.3,
            undercut: 0.4,
        }
    }
}

impl Adversary for Starver {
    fn name(&self) -> &'static str {
        "starver"
    }

    fn controls(&self, committee: CommitteeId, roster: &[CommitteeId]) -> bool {
        self.config.subset(roster).contains(&committee)
    }

    fn act(&self, epoch: u64, honest: &[ShardInfo]) -> Vec<CommitteeReport> {
        let subset = self.config.subset(&roster_of(honest));
        // The coalition coordinates on the honest field it is attacking.
        let honest_only: Vec<&ShardInfo> = honest
            .iter()
            .filter(|s| !subset.contains(&s.committee()))
            .collect();
        let fastest = honest_only
            .iter()
            .map(|s| s.two_phase_latency())
            .min()
            .unwrap_or_else(|| mvcom_types::SimTime::from_secs(1.0));
        let biggest = honest_only
            .iter()
            .map(|s| s.tx_count())
            .max()
            .unwrap_or(1)
            .max(1);
        honest
            .iter()
            .map(|&shard| {
                if !subset.contains(&shard.committee()) {
                    return CommitteeReport::honest(shard);
                }
                let mut r = draw(self.config.seed, epoch, shard.committee(), "starver");
                let u: f64 = r.gen_range(0.5..1.0);
                let s = ((biggest as f64) * (1.0 + self.inflate_s * u)).round() as u64;
                let true_total = shard.two_phase_latency().as_secs().max(f64::EPSILON);
                let target = fastest.as_secs() * (1.0 - self.undercut * u);
                let l = scale_latency(shard.latency(), (target / true_total).max(0.0));
                CommitteeReport {
                    truth: shard,
                    reported: ShardInfo::new(shard.committee(), s.max(1), l),
                    adversarial: true,
                }
            })
            .collect()
    }
}

/// Builds the named strategy with its default magnitudes.
///
/// # Errors
///
/// [`Error::InvalidConfig`] for an unknown strategy name.
pub fn build_adversary(strategy: &str, config: AdversaryConfig) -> Result<Box<dyn Adversary>> {
    match strategy {
        "misreport" => Ok(Box::new(Misreport::new(config))),
        "freerider" => Ok(Box::new(Freerider::new(config))),
        "starver" => Ok(Box::new(Starver::new(config))),
        other => Err(Error::invalid_config(
            "adv-strategy",
            format!("unknown strategy `{other}` (use misreport|freerider|starver)"),
        )),
    }
}

/// A fixed roster of committees with **stable identities across epochs** —
/// the population the reputation defenses learn over. Each epoch redraws
/// every committee's true `(s_i, l_i)` from the paper's §VI-A marginals
/// (log-normal shard sizes around `mean_txs`, Exp(600 s) formation +
/// log-normal consensus latency), from per-(seed, epoch, id) streams so
/// epochs replay independently of evaluation order.
///
/// This is the parametric counterpart of re-running [`crate::Trace`]-fed
/// [`crate::EpochGenerator`] epochs, which mints *fresh* ids per epoch and
/// therefore cannot accumulate per-committee reputation.
#[derive(Debug, Clone, Copy)]
pub struct StrategicPopulation {
    /// Number of committees (`CommitteeId(0..n)`).
    pub n: usize,
    /// Latency marginals per committee per epoch.
    pub latency: LatencyConfig,
    /// Mean true shard size, transactions.
    pub mean_txs: f64,
    /// Master seed of the population's ground-truth draws.
    pub seed: u64,
}

impl StrategicPopulation {
    /// A paper-like population: ~1089-TX shards, §VI-A latencies.
    pub fn new(n: usize, seed: u64) -> StrategicPopulation {
        StrategicPopulation {
            n,
            latency: LatencyConfig::paper(),
            mean_txs: 1_089.0,
            seed,
        }
    }

    /// The stable roster, `CommitteeId(0) .. CommitteeId(n-1)`.
    pub fn committees(&self) -> Vec<CommitteeId> {
        (0..self.n).map(|i| CommitteeId(i as u32)).collect()
    }

    /// One epoch's ground-truth shard set.
    pub fn honest_epoch(&self, epoch: u64) -> Vec<ShardInfo> {
        use rand_distr::Distribution;
        let sigma = 0.35f64;
        // E[lognormal] = exp(mu + sigma²/2); solve mu for the target mean.
        let mu = self.mean_txs.max(1.0).ln() - sigma * sigma / 2.0;
        // lint: allow(P1, mu is finite and sigma is a positive constant)
        let sizes = rand_distr::LogNormal::new(mu, sigma).expect("valid log-normal parameters");
        (0..self.n)
            .map(|i| {
                let id = CommitteeId(i as u32);
                let mut r = draw(self.seed, epoch, id, "population");
                let txs = sizes.sample(&mut r).round().max(1.0) as u64;
                ShardInfo::new(id, txs, self.latency.sample(&mut r))
            })
            .collect()
    }

    /// One epoch filtered through `adversary`: `(truth, reported)` pairs.
    pub fn epoch_reports(&self, epoch: u64, adversary: &dyn Adversary) -> Vec<CommitteeReport> {
        adversary.act(epoch, &self.honest_epoch(epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcom_types::SimTime;

    fn shards(n: u32) -> Vec<ShardInfo> {
        (0..n)
            .map(|i| {
                ShardInfo::new(
                    CommitteeId(i),
                    1_000 + u64::from(i) * 10,
                    TwoPhaseLatency::from_total(SimTime::from_secs(600.0 + f64::from(i) * 5.0)),
                )
            })
            .collect()
    }

    #[test]
    fn config_rejects_out_of_range_fractions() {
        assert!(AdversaryConfig::new(-0.1, 1).is_err());
        assert!(AdversaryConfig::new(1.1, 1).is_err());
        assert!(AdversaryConfig::new(f64::NAN, 1).is_err());
        assert!(AdversaryConfig::new(0.0, 1).is_ok());
        assert!(AdversaryConfig::new(1.0, 1).is_ok());
    }

    #[test]
    fn subset_is_exact_deterministic_and_order_independent() {
        let config = AdversaryConfig::new(0.2, 7).unwrap();
        let roster: Vec<CommitteeId> = (0..50).map(CommitteeId).collect();
        let subset = config.subset(&roster);
        assert_eq!(subset.len(), 10);
        let mut reversed = roster.clone();
        reversed.reverse();
        assert_eq!(config.subset(&reversed), subset);
        // A different seed picks a different coalition.
        let other = AdversaryConfig::new(0.2, 8).unwrap().subset(&roster);
        assert_ne!(other, subset);
    }

    #[test]
    fn zero_fraction_is_identity_for_every_strategy() {
        let config = AdversaryConfig::new(0.0, 3).unwrap();
        let input = shards(12);
        for strategy in ["misreport", "freerider", "starver"] {
            let adv = build_adversary(strategy, config).unwrap();
            let out = adv.act(0, &input);
            assert_eq!(out.len(), input.len());
            for (pair, shard) in out.iter().zip(&input) {
                assert!(!pair.adversarial);
                assert_eq!(pair.truth, *shard);
                assert_eq!(pair.reported, *shard);
            }
        }
    }

    #[test]
    fn misreport_inflates_s_and_deflates_l_in_reports_only() {
        let config = AdversaryConfig::new(0.25, 5).unwrap();
        let adv = Misreport::new(config);
        let input = shards(20);
        let out = adv.act(3, &input);
        let lies: Vec<&CommitteeReport> = out.iter().filter(|p| p.adversarial).collect();
        assert_eq!(lies.len(), 5);
        for pair in lies {
            assert!(pair.reported.tx_count() > pair.truth.tx_count());
            assert!(pair.reported.two_phase_latency() < pair.truth.two_phase_latency());
            assert!(pair.ds() > 0.0);
            assert!(pair.dl() < 0.0);
        }
    }

    #[test]
    fn freerider_reports_honestly_but_delivers_late() {
        let config = AdversaryConfig::new(0.25, 6).unwrap();
        let adv = Freerider::new(config);
        let input = shards(20);
        for pair in adv.act(1, &input).iter().filter(|p| p.adversarial) {
            assert_eq!(pair.reported.tx_count(), pair.truth.tx_count());
            assert!(pair.truth.two_phase_latency() > pair.reported.two_phase_latency());
        }
    }

    #[test]
    fn starver_coalition_undercuts_every_honest_committee() {
        let config = AdversaryConfig::new(0.3, 9).unwrap();
        let adv = Starver::new(config);
        let input = shards(20);
        let out = adv.act(2, &input);
        let fastest_honest = out
            .iter()
            .filter(|p| !p.adversarial)
            .map(|p| p.reported.two_phase_latency())
            .min()
            .unwrap();
        let biggest_honest = out
            .iter()
            .filter(|p| !p.adversarial)
            .map(|p| p.reported.tx_count())
            .max()
            .unwrap();
        for pair in out.iter().filter(|p| p.adversarial) {
            assert!(pair.reported.two_phase_latency() < fastest_honest);
            assert!(pair.reported.tx_count() > biggest_honest);
        }
    }

    #[test]
    fn acts_replay_byte_identically_per_epoch_and_differ_across_epochs() {
        let config = AdversaryConfig::new(0.2, 11).unwrap();
        let adv = Misreport::new(config);
        let input = shards(15);
        assert_eq!(adv.act(4, &input), adv.act(4, &input));
        assert_ne!(adv.act(4, &input), adv.act(5, &input));
    }

    #[test]
    fn population_is_stable_in_ids_and_deterministic_in_features() {
        let pop = StrategicPopulation::new(30, 13);
        let a = pop.honest_epoch(0);
        let b = pop.honest_epoch(0);
        assert_eq!(a, b);
        let later = pop.honest_epoch(1);
        assert_ne!(a, later, "features must be redrawn per epoch");
        let ids: Vec<CommitteeId> = a.iter().map(ShardInfo::committee).collect();
        assert_eq!(ids, pop.committees());
        assert_eq!(
            later.iter().map(ShardInfo::committee).collect::<Vec<_>>(),
            ids,
            "identities must persist across epochs"
        );
    }

    #[test]
    fn population_marginals_are_paper_like() {
        let pop = StrategicPopulation::new(2_000, 17);
        let epoch = pop.honest_epoch(0);
        let mean_s: f64 =
            epoch.iter().map(|s| s.tx_count() as f64).sum::<f64>() / epoch.len() as f64;
        let mean_l: f64 = epoch
            .iter()
            .map(|s| s.two_phase_latency().as_secs())
            .sum::<f64>()
            / epoch.len() as f64;
        assert!((900.0..1_300.0).contains(&mean_s), "mean s {mean_s}");
        assert!((550.0..750.0).contains(&mean_l), "mean l {mean_l}");
    }

    #[test]
    fn build_adversary_rejects_unknown_names() {
        let config = AdversaryConfig::new(0.1, 1).unwrap();
        assert!(build_adversary("bribe", config).is_err());
        for name in ["misreport", "freerider", "starver"] {
            assert_eq!(build_adversary(name, config).unwrap().name(), name);
        }
    }
}
