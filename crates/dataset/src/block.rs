//! The transaction-block record of the (synthetic) Bitcoin trace.

use std::fmt;

use serde::{Deserialize, Serialize};

use mvcom_types::{BlockId, Hash32};

/// One transaction block, mirroring the four-field schema of the paper's
/// dataset (§VI-A): `blockID`, `bhash`, `btime`, `txs`.
///
/// # Example
///
/// ```
/// use mvcom_dataset::TxBlock;
/// use mvcom_types::{BlockId, Hash32};
///
/// let block = TxBlock {
///     id: BlockId(0),
///     bhash: Hash32::digest(b"genesis"),
///     btime: 1_451_606_400, // 2016-01-01T00:00:00Z
///     txs: 1089,
/// };
/// assert_eq!(block.txs, 1089);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxBlock {
    /// Sequential block identifier (`blockID`).
    pub id: BlockId,
    /// Block hash (`bhash`).
    pub bhash: Hash32,
    /// Creation timestamp of this block, Unix seconds (`btime`).
    pub btime: u64,
    /// Number of transactions contained in this block (`txs`).
    pub txs: u64,
}

impl TxBlock {
    /// Returns `true` if this block was created no later than `other`.
    pub fn precedes(&self, other: &TxBlock) -> bool {
        self.btime <= other.btime
    }
}

impl fmt::Display for TxBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @{} with {} txs ({})",
            self.id,
            self.btime,
            self.txs,
            &self.bhash.to_hex()[..12]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(id: u64, btime: u64, txs: u64) -> TxBlock {
        TxBlock {
            id: BlockId(id),
            bhash: Hash32::digest_u64(id),
            btime,
            txs,
        }
    }

    #[test]
    fn precedes_compares_btime() {
        let a = block(0, 100, 10);
        let b = block(1, 200, 20);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(a.precedes(&a));
    }

    #[test]
    fn serde_round_trip() {
        let b = block(7, 1_451_606_400, 999);
        let json = serde_json::to_string(&b).unwrap();
        let back: TxBlock = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn display_mentions_fields() {
        let b = block(3, 42, 77);
        let s = b.to_string();
        assert!(s.contains("block-3"));
        assert!(s.contains("77 txs"));
    }
}
