//! Chunked shard generation for the 10⁴–10⁵ committee regime.
//!
//! [`EpochGenerator`](crate::epoch::EpochGenerator) materializes a full
//! `Vec<u64>` of TX counts and then a full `Vec<ShardInfo>` per epoch —
//! two `O(|I|)` intermediates plus a shuffled copy of the trace on the
//! partition path. At `|I| = 1000` that is noise; at `|I| = 10⁵` it is
//! the difference between streaming an instance off a ~1.4k-block trace
//! and holding three full copies of the epoch in flight.
//!
//! [`ShardStream`] generates the same kind of shards (with-replacement
//! block sampling, paper latency models) strictly per shard: each
//! `next()` draws `blocks_per_shard` block indices and one two-phase
//! latency, so the only `O(|I|)` allocation left is whatever the caller
//! chooses to accumulate. Chunk boundaries carry no state — consuming
//! the stream one shard at a time, in 4k chunks, or all at once yields
//! the identical shard sequence for a given seed (pinned by tests).
//!
//! The draw order is *per shard* (count, then latency), unlike the
//! legacy epoch API's counts-first-then-latencies order. The legacy
//! order is load-bearing for the byte-identical small-`|I|` figures, so
//! it stays frozen; this stream is the builder for the scale sweep and
//! anything else that outgrows the materialized path.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mvcom_types::{CommitteeId, Error, Result, ShardInfo};

use crate::epoch::LatencyConfig;
use crate::trace::Trace;

/// Shape of a streamed instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Total number of shards (committees) the stream yields.
    pub shards: usize,
    /// Blocks aggregated into each shard (with-replacement draws).
    pub blocks_per_shard: usize,
}

impl StreamConfig {
    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when either count is zero.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(Error::invalid_config("shards", "must be positive"));
        }
        if self.blocks_per_shard == 0 {
            return Err(Error::invalid_config(
                "blocks_per_shard",
                "must be positive",
            ));
        }
        Ok(())
    }
}

/// A bounded, deterministic stream of ready-to-schedule shards.
///
/// # Example
///
/// ```
/// use mvcom_dataset::{LatencyConfig, ShardStream, StreamConfig, Trace, TraceConfig};
///
/// let trace = Trace::generate(TraceConfig::tiny(200), 1);
/// let config = StreamConfig { shards: 10_000, blocks_per_shard: 1 };
/// let mut stream = ShardStream::new(&trace, LatencyConfig::paper(), 7, config).unwrap();
/// let mut buf = Vec::new();
/// let mut total = 0usize;
/// while stream.next_chunk(&mut buf, 4096) > 0 {
///     total += buf.len(); // O(chunk) working set, never O(|I|)
/// }
/// assert_eq!(total, 10_000);
/// ```
#[derive(Debug)]
pub struct ShardStream<'a> {
    trace: &'a Trace,
    latency: LatencyConfig,
    rng: mvcom_simnet::SimRng,
    config: StreamConfig,
    next_committee: u32,
    produced: usize,
}

impl<'a> ShardStream<'a> {
    /// Creates a stream over `trace` with the given latency model, RNG
    /// seed, and shape.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamConfig::validate`]; additionally
    /// [`Error::InvalidInstance`] on an empty trace.
    pub fn new(
        trace: &'a Trace,
        latency: LatencyConfig,
        seed: u64,
        config: StreamConfig,
    ) -> Result<ShardStream<'a>> {
        config.validate()?;
        if trace.blocks().is_empty() {
            return Err(Error::invalid_instance(
                "cannot stream shards from an empty trace",
            ));
        }
        Ok(ShardStream {
            trace,
            latency,
            rng: mvcom_simnet::rng::master(seed),
            config,
            next_committee: 0,
            produced: 0,
        })
    }

    /// Shards not yet produced.
    pub fn remaining(&self) -> usize {
        self.config.shards - self.produced
    }

    /// Clears `buf` and fills it with the next `min(max, remaining)`
    /// shards; returns how many were produced (0 when exhausted). The
    /// caller's `buf` is the *only* shard storage — reusing one buffer
    /// across calls makes the whole pass `O(max)` in memory.
    pub fn next_chunk(&mut self, buf: &mut Vec<ShardInfo>, max: usize) -> usize {
        buf.clear();
        let take = max.min(self.remaining());
        buf.extend((0..take).map(|_| self.produce_one()));
        take
    }

    fn produce_one(&mut self) -> ShardInfo {
        let blocks = self.trace.blocks();
        let txs: u64 = (0..self.config.blocks_per_shard)
            .map(|_| blocks[self.rng.gen_range(0..blocks.len())].txs)
            .sum();
        let id = CommitteeId(self.next_committee);
        self.next_committee += 1;
        self.produced += 1;
        ShardInfo::new(id, txs, self.latency.sample(&mut self.rng))
    }
}

impl Iterator for ShardStream<'_> {
    type Item = ShardInfo;

    fn next(&mut self) -> Option<ShardInfo> {
        if self.remaining() == 0 {
            return None;
        }
        Some(self.produce_one())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;

    fn trace() -> Trace {
        Trace::generate(TraceConfig::tiny(300), 9)
    }

    fn config(shards: usize) -> StreamConfig {
        StreamConfig {
            shards,
            blocks_per_shard: 1,
        }
    }

    #[test]
    fn chunk_size_does_not_change_the_shard_sequence() {
        let t = trace();
        let whole: Vec<ShardInfo> = ShardStream::new(&t, LatencyConfig::paper(), 11, config(1_000))
            .unwrap()
            .collect();
        assert_eq!(whole.len(), 1_000);
        for chunk_size in [1usize, 7, 64, 333, 5_000] {
            let mut stream =
                ShardStream::new(&t, LatencyConfig::paper(), 11, config(1_000)).unwrap();
            let mut buf = Vec::new();
            let mut rebuilt = Vec::new();
            while stream.next_chunk(&mut buf, chunk_size) > 0 {
                assert!(buf.len() <= chunk_size);
                rebuilt.extend(buf.iter().cloned());
            }
            assert_eq!(rebuilt, whole, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn ids_are_sequential_and_features_positive() {
        let t = trace();
        let stream = ShardStream::new(&t, LatencyConfig::paper(), 3, config(500)).unwrap();
        for (i, shard) in stream.enumerate() {
            assert_eq!(shard.committee().0 as usize, i);
            assert!(shard.tx_count() >= 1);
            assert!(shard.two_phase_latency().as_secs() > 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let t = trace();
        let a: Vec<ShardInfo> = ShardStream::new(&t, LatencyConfig::paper(), 5, config(200))
            .unwrap()
            .collect();
        let b: Vec<ShardInfo> = ShardStream::new(&t, LatencyConfig::paper(), 5, config(200))
            .unwrap()
            .collect();
        let c: Vec<ShardInfo> = ShardStream::new(&t, LatencyConfig::paper(), 6, config(200))
            .unwrap()
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_tracks_the_trace() {
        let t = trace();
        let shards: Vec<ShardInfo> = ShardStream::new(
            &t,
            LatencyConfig::paper(),
            4,
            StreamConfig {
                shards: 5_000,
                blocks_per_shard: 2,
            },
        )
        .unwrap()
        .collect();
        let mean = shards.iter().map(ShardInfo::tx_count).sum::<u64>() as f64 / 5_000.0;
        let expected = 2.0 * t.mean_txs();
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn validation_rejects_degenerate_shapes() {
        let t = trace();
        assert!(StreamConfig {
            shards: 0,
            blocks_per_shard: 1
        }
        .validate()
        .is_err());
        assert!(StreamConfig {
            shards: 1,
            blocks_per_shard: 0
        }
        .validate()
        .is_err());
        assert!(ShardStream::new(
            &t,
            LatencyConfig::paper(),
            1,
            StreamConfig {
                shards: 0,
                blocks_per_shard: 1
            }
        )
        .is_err());
    }
}
