//! Committee formation and overlay configuration (Elastico stages 1–2).
//!
//! A committee is *formed* once all of its PoW-elected members have solved
//! their puzzles and the overlay (mutual discovery through directory
//! nodes) is configured. Elastico's directory mechanism makes every node
//! process `O(n)` identity announcements, which is why the measured
//! formation latency in paper Fig. 2(a) grows linearly with the network
//! size while the consensus latency stays flat.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mvcom_simnet::LatencyModel;
use mvcom_types::{CommitteeId, NodeId, Result, SimTime};

use crate::pow::{PowConfig, PowSolution};

/// Overlay-configuration cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlayConfig {
    /// Fixed setup cost per committee (directory round-trips), seconds.
    pub base_secs: f64,
    /// Per-network-node identity-processing cost, seconds — the term that
    /// makes formation latency linear in the network size (Fig. 2(a)).
    pub secs_per_node: f64,
    /// Multiplicative jitter: the realized overlay cost is scaled by a
    /// uniform factor in `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl OverlayConfig {
    /// Calibrated so the linear identity-processing term dominates the
    /// PoW max-order-statistic at paper scales (Fig. 2(a) shows formation
    /// latency growing linearly from hundreds to thousands of seconds as
    /// the network scales to 1000 nodes).
    pub fn paper() -> OverlayConfig {
        OverlayConfig {
            base_secs: 30.0,
            secs_per_node: 3.0,
            jitter: 0.25,
        }
    }

    /// Samples the overlay cost for a network of `n_nodes`.
    pub fn sample<R: Rng + ?Sized>(&self, n_nodes: u32, rng: &mut R) -> SimTime {
        let nominal = self.base_secs + self.secs_per_node * f64::from(n_nodes);
        let factor = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        SimTime::from_secs((nominal * factor).max(0.0))
    }
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig::paper()
    }
}

/// One formed committee: its members and the latency of stages 1–2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormedCommittee {
    /// The committee id (from the PoW digest bits).
    pub id: CommitteeId,
    /// Member nodes, in solve order.
    pub members: Vec<NodeId>,
    /// When the last member's puzzle completed (stage 1 end).
    pub pow_completed_at: SimTime,
    /// The total formation latency: PoW completion plus overlay setup.
    pub formation_latency: SimTime,
}

/// Groups PoW solutions into committees and times their formation.
#[derive(Debug, Clone)]
pub struct CommitteeFormation {
    overlay: OverlayConfig,
    /// Committees smaller than this are discarded (cannot run PBFT).
    min_committee_size: u32,
}

impl CommitteeFormation {
    /// Creates the formation stage; `min_committee_size` must be ≥ 4 so
    /// every surviving committee can tolerate at least one fault.
    pub fn new(overlay: OverlayConfig, min_committee_size: u32) -> CommitteeFormation {
        CommitteeFormation {
            overlay,
            min_committee_size: min_committee_size.max(4),
        }
    }

    /// Consumes the lottery output and returns the formed committees,
    /// sorted by id. Committees that attracted fewer than the minimum
    /// membership are dropped (their members idle this epoch, as in
    /// Elastico when a bucket under-fills).
    ///
    /// # Errors
    ///
    /// Propagates PoW configuration validation.
    pub fn form<R: Rng + ?Sized>(
        &self,
        pow: &PowConfig,
        solutions: &[PowSolution],
        n_nodes: u32,
        rng: &mut R,
    ) -> Result<Vec<FormedCommittee>> {
        pow.validate()?;
        let count = pow.committee_count() as usize;
        let mut buckets: Vec<Vec<&PowSolution>> = vec![Vec::new(); count];
        for sol in solutions {
            buckets[sol.committee.index()].push(sol);
        }
        let mut formed = Vec::new();
        for (idx, bucket) in buckets.into_iter().enumerate() {
            if (bucket.len() as u32) < self.min_committee_size {
                continue;
            }
            let Some(pow_completed_at) = bucket.iter().map(|s| s.solved_at).max() else {
                continue; // unreachable while min_committee_size >= 1, but cheap to guard
            };
            let overlay_cost = self.overlay.sample(n_nodes, rng);
            formed.push(FormedCommittee {
                id: CommitteeId(idx as u32),
                members: bucket.iter().map(|s| s.node).collect(),
                pow_completed_at,
                formation_latency: pow_completed_at + overlay_cost,
            });
        }
        Ok(formed)
    }

    /// The formation-latency model used when an experiment wants the
    /// marginal distribution without running a lottery: the max of `k`
    /// exponential solves plus the overlay cost.
    pub fn marginal_model(&self, pow: &PowConfig, expected_members: u32) -> LatencyModel {
        // E[max of k Exp(m)] = m·H_k; approximate with a shifted
        // exponential of the same mean (upper order statistics of
        // exponentials are exponential-tailed).
        let k = expected_members.max(1);
        let harmonic: f64 = (1..=k).map(|i| 1.0 / f64::from(i)).sum();
        LatencyModel::Exponential {
            mean_secs: pow.mean_solve_secs * harmonic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pow::run_lottery;
    use mvcom_simnet::rng;
    use mvcom_types::Hash32;

    fn setup(n_nodes: u32, bits: u32, seed: u64) -> (PowConfig, Vec<PowSolution>) {
        let config = PowConfig::paper(bits);
        let mut r = rng::master(seed);
        let sols = run_lottery(&config, n_nodes, Hash32::digest(b"epoch"), &mut r).unwrap();
        (config, sols)
    }

    #[test]
    fn forms_committees_with_all_assigned_members() {
        let (config, sols) = setup(400, 3, 1);
        let formation = CommitteeFormation::new(OverlayConfig::paper(), 4);
        let mut r = rng::master(2);
        let formed = formation.form(&config, &sols, 400, &mut r).unwrap();
        assert!(!formed.is_empty());
        let total_members: usize = formed.iter().map(|c| c.members.len()).sum();
        assert!(total_members <= 400);
        // ~50 members per committee with 8 committees: all should survive.
        assert_eq!(formed.len(), 8);
        for c in &formed {
            assert!(c.members.len() >= 4);
            assert!(c.formation_latency > c.pow_completed_at);
        }
    }

    #[test]
    fn formation_latency_grows_with_network_size() {
        // The Fig. 2(a) shape: the per-node overlay term dominates.
        let formation = CommitteeFormation::new(OverlayConfig::paper(), 4);
        let mean_latency = |n: u32, seed: u64| {
            let (config, sols) = setup(n, 3, seed);
            let mut r = rng::master(seed + 100);
            let formed = formation.form(&config, &sols, n, &mut r).unwrap();
            formed
                .iter()
                .map(|c| c.formation_latency.as_secs())
                .sum::<f64>()
                / formed.len() as f64
        };
        let small = mean_latency(200, 1);
        let large = mean_latency(1_000, 2);
        // Slope 3.0 s/node over 800 extra nodes ⇒ ≈ +2400 s expected.
        assert!(
            large > small + 1_200.0,
            "formation latency should grow ~linearly: {small} → {large}"
        );
    }

    #[test]
    fn undersized_committees_are_dropped() {
        // 40 nodes into 16 committees → expected 2.5 members each; with a
        // minimum of 4 most buckets must be dropped.
        let (config, sols) = setup(40, 4, 3);
        let formation = CommitteeFormation::new(OverlayConfig::paper(), 4);
        let mut r = rng::master(4);
        let formed = formation.form(&config, &sols, 40, &mut r).unwrap();
        assert!(formed.len() < 16);
        for c in &formed {
            assert!(c.members.len() >= 4);
        }
    }

    #[test]
    fn marginal_model_mean_grows_with_membership() {
        let formation = CommitteeFormation::new(OverlayConfig::paper(), 4);
        let pow = PowConfig::paper(3);
        let small = formation.marginal_model(&pow, 4).mean();
        let large = formation.marginal_model(&pow, 64).mean();
        assert!(large > small);
        // H_4 ≈ 2.083: mean ≈ 1250 s.
        assert!((small - 600.0 * (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-9);
    }

    #[test]
    fn overlay_sample_is_positive_and_scales() {
        let overlay = OverlayConfig::paper();
        let mut r = rng::master(5);
        let mut mean = |n: u32| -> f64 {
            (0..500)
                .map(|_| overlay.sample(n, &mut r).as_secs())
                .sum::<f64>()
                / 500.0
        };
        let at_100 = mean(100);
        let at_1000 = mean(1_000);
        assert!(at_100 > 0.0);
        assert!(
            (at_1000 - at_100 - 3.0 * 900.0).abs() < 150.0,
            "per-node slope mismatch: {at_100} → {at_1000}"
        );
    }
}
