//! An Elastico-style sharding-protocol simulator.
//!
//! The MVCom paper builds on Elastico (Luu et al., CCS '16), whose epoch
//! has five stages (paper §I):
//!
//! 1. **Committee formation** — nodes solve PoW puzzles to establish
//!    identities; the puzzle's last bits assign each node to a committee.
//! 2. **Overlay configuration** — committee members discover each other by
//!    exchanging membership through directory nodes, a cost that grows with
//!    the network size.
//! 3. **Intra-committee consensus** — each committee runs PBFT over its
//!    shard of transactions.
//! 4. **Final consensus** — the final committee merges the shards into a
//!    global block (this is where MVCom's scheduler intervenes).
//! 5. **Epoch randomness** — the final committee refreshes the shared
//!    randomness that seeds the next epoch's PoW.
//!
//! This crate simulates all five stages on the `mvcom-simnet` substrate
//! with real `mvcom-pbft` runs for stages 3 and 4, reproducing the
//! *two-phase latency* measurements of paper Fig. 2 and providing the
//! end-to-end epoch pipeline the integration tests and examples drive.
//!
//! * [`pow`] — the PoW identity lottery and formation-latency model.
//! * [`formation`] — grouping solved identities into committees and
//!   timing the overlay configuration.
//! * [`epoch`] — the full five-stage epoch runner producing
//!   [`ShardInfo`](mvcom_types::ShardInfo)s and a final block.
//! * [`detector`] — the phi-accrual heartbeat failure detector the final
//!   committee runs over its member committees (paper §V-A).
//! * [`recovery`] — the fault-tolerant epoch runner: chaos-wrapped shard
//!   submission with retries, heartbeat-driven failure detection, online
//!   re-solving, and graceful degradation to a survivors-only block.
//!
//! # Example
//!
//! ```
//! use mvcom_elastico::epoch::{ElasticoConfig, ElasticoSim};
//!
//! # fn main() -> Result<(), mvcom_types::Error> {
//! let config = ElasticoConfig::small_test();
//! let mut sim = ElasticoSim::new(config, 42)?;
//! let report = sim.run_epoch()?;
//! assert!(!report.shards.is_empty());
//! assert!(report.final_block.committed);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Unit tests may unwrap freely; library code goes through the P1 rule of
// `mvcom-lint` and the workspace `clippy::unwrap_used` deny set instead.
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod detector;
pub mod directory;
pub mod epoch;
pub mod formation;
pub mod pow;
pub mod recovery;

pub use detector::{CommitteeHealth, DetectorStats, HeartbeatConfig, HeartbeatMonitor};
pub use directory::DirectoryConfig;
pub use epoch::{ElasticoConfig, ElasticoSim, EpochReport, FinalBlock};
pub use formation::{CommitteeFormation, FormedCommittee};
pub use pow::{PowConfig, PowSolution};
pub use recovery::{RecoveryConfig, RecoverySelector, RobustnessReport, SurvivorsOnly};
