//! The fault-tolerant epoch runner.
//!
//! [`ElasticoSim::run_epoch_recovering`] replaces stage 4's wait-for-all
//! admission with a deadline-aware pipeline that survives committees dying
//! mid-epoch:
//!
//! 1. **Shard submission over a chaos-wrapped network** — each member
//!    committee ships its shard to the final committee over a simulated
//!    submission network with the configured [`ChaosConfig`] installed.
//!    Dropped submissions are retried with capped exponential backoff; a
//!    committee that cannot get its shard through before the consensus
//!    deadline is excluded (and recorded as timed out).
//! 2. **Heartbeat monitoring** — while the scheduler works, the final
//!    committee pings every submitted committee at a fixed interval
//!    through [`Network::ping_at`]; the phi-accrual [`HeartbeatMonitor`]
//!    turns missed pongs into failure verdicts (paper §V-A: a failed
//!    committee is perceived as infinite ping latency).
//! 3. **Online re-solving** — each detected failure is forwarded to the
//!    [`RecoverySelector`], which removes the committee from the
//!    scheduler's solution space (the MVCom implementation trims the SE
//!    engine via `DynamicsPolicy::Trim`) and keeps iterating.
//! 4. **Graceful degradation** — the final block is assembled from the
//!    surviving admitted committees; a detected failure degrades the block
//!    instead of aborting the epoch.
//!
//! The submission network maps the final committee to [`FINAL_NODE`] and
//! the *i*-th surviving shard of the epoch to [`submission_node`]`(i)`;
//! [`ChaosConfig`] crash schedules address those node ids.

use serde::{Deserialize, Serialize};

use mvcom_obs::Value;
use mvcom_simnet::{ChaosConfig, ChaosInjector, ChaosStats, Network, NetworkConfig};
use mvcom_types::{CommitteeId, Error, NodeId, Result, ShardInfo, SimTime};

use crate::detector::{CommitteeHealth, HeartbeatConfig, HeartbeatMonitor};
use crate::epoch::{ElasticoSim, EpochReport};

/// The final committee's node id on the submission network.
pub const FINAL_NODE: NodeId = NodeId(0);

/// The submission-network node id of the `i`-th surviving shard (in
/// [`EpochReport::shards`] order). Chaos crash schedules that should kill
/// an admitted committee mid-epoch address this id.
pub fn submission_node(shard_index: usize) -> NodeId {
    NodeId(shard_index as u32 + 1)
}

/// An online admission strategy that can react to committee failures —
/// the seam where the MVCom SE engine plugs into the recovering epoch
/// runner (its implementation lives in the root crate, which wires
/// detected failures into `SeEngine::handle_leave` with
/// `DynamicsPolicy::Trim`).
pub trait RecoverySelector {
    /// Called once with the shards that survived submission; builds the
    /// scheduling problem.
    ///
    /// # Errors
    ///
    /// Implementation-defined; aborts the epoch.
    fn begin(&mut self, shards: &[ShardInfo]) -> Result<()>;

    /// Runs `iterations` more solver steps. Called between heartbeat
    /// rounds so detection latency and solving overlap.
    fn advance(&mut self, iterations: u64);

    /// A committee was declared failed; remove it from the solution space.
    ///
    /// # Errors
    ///
    /// Implementation-defined; aborts the epoch.
    fn on_failure(&mut self, committee: CommitteeId) -> Result<()>;

    /// Returns the final admitted committee set.
    fn finish(&mut self) -> Vec<CommitteeId>;
}

/// The trivial recovery strategy: admit every submitted shard, drop the
/// ones that die. Reproduces wait-for-all Elastico, but fault-tolerant.
#[derive(Debug, Clone, Default)]
pub struct SurvivorsOnly {
    admitted: Vec<CommitteeId>,
}

impl RecoverySelector for SurvivorsOnly {
    fn begin(&mut self, shards: &[ShardInfo]) -> Result<()> {
        self.admitted = shards.iter().map(|s| s.committee()).collect();
        Ok(())
    }

    fn advance(&mut self, _iterations: u64) {}

    fn on_failure(&mut self, committee: CommitteeId) -> Result<()> {
        self.admitted.retain(|&c| c != committee);
        Ok(())
    }

    fn finish(&mut self) -> Vec<CommitteeId> {
        self.admitted.clone()
    }
}

/// Tunables of the fault-tolerant epoch runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Fault model installed on the submission network.
    pub chaos: ChaosConfig,
    /// Heartbeat failure-detector parameters.
    pub heartbeat: HeartbeatConfig,
    /// Maximum resubmission attempts per shard after the first send.
    pub max_submission_retries: u32,
    /// First retry delay; later retries double it.
    pub backoff_base: SimTime,
    /// Upper bound on any single retry delay.
    pub backoff_cap: SimTime,
    /// Solver iterations granted to the [`RecoverySelector`] per heartbeat
    /// round.
    pub solver_iterations_per_round: u64,
}

impl RecoveryConfig {
    /// Fault-free defaults: no chaos, 30 s heartbeats, 8 retries backing
    /// off from 5 s to a 300 s cap, 50 solver iterations per round.
    pub fn paper() -> RecoveryConfig {
        RecoveryConfig {
            chaos: ChaosConfig::none(),
            heartbeat: HeartbeatConfig::paper(),
            max_submission_retries: 8,
            backoff_base: SimTime::from_secs(5.0),
            backoff_cap: SimTime::from_secs(300.0),
            solver_iterations_per_round: 50,
        }
    }

    /// Validates all components.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        self.chaos.validate()?;
        self.heartbeat.validate()?;
        if self.backoff_base.as_secs() <= 0.0 || self.backoff_base.is_infinite() {
            return Err(Error::invalid_config(
                "backoff_base",
                format!("must be positive and finite, got {}", self.backoff_base),
            ));
        }
        if self.backoff_cap < self.backoff_base {
            return Err(Error::invalid_config(
                "backoff_cap",
                format!(
                    "cap {} is below the base delay {}",
                    self.backoff_cap, self.backoff_base
                ),
            ));
        }
        Ok(())
    }
}

/// Fault-tolerance telemetry of one recovering epoch, embedded in
/// [`EpochReport::robustness`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Heartbeat pings sent by the final committee.
    pub heartbeats_sent: u64,
    /// Heartbeats that went unanswered.
    pub heartbeats_missed: u64,
    /// Committees declared failed, with the detection time.
    pub failures_detected: Vec<(CommitteeId, SimTime)>,
    /// Committees classified as stragglers at epoch end (alive but with
    /// round-trips far above the population median).
    pub stragglers: Vec<CommitteeId>,
    /// Shard resubmission attempts beyond each first send.
    pub submission_retries: u64,
    /// Committees whose shard never got through before the deadline.
    pub submissions_timed_out: Vec<CommitteeId>,
    /// Fault counters of the submission-network chaos injector.
    pub chaos: ChaosStats,
    /// Whether the final block lost at least one admitted committee to a
    /// detected failure (graceful degradation engaged).
    pub degraded: bool,
}

impl ElasticoSim {
    /// Runs one epoch under the fault-tolerant stage-4 pipeline described
    /// in the [module docs](crate::recovery).
    ///
    /// # Errors
    ///
    /// [`Error::Simulation`] when stages 1–3 fail, when no shard survives
    /// submission, or when every submitted committee dies before the final
    /// consensus; configuration errors from an invalid `recovery`.
    pub fn run_epoch_recovering<S: RecoverySelector>(
        &mut self,
        selector: &mut S,
        recovery: &RecoveryConfig,
    ) -> Result<EpochReport> {
        recovery.validate()?;
        let stages = self.run_stages()?;
        let obs = self.obs().clone();
        let deadline = self.config().consensus_deadline;
        let bytes_per_tx = self.config().bytes_per_tx;
        obs.add(
            "chaos.crashes_injected",
            recovery.chaos.crashes.len() as u64,
        );

        // The submission network: node 0 is the final committee, node 1+i
        // the i-th surviving shard's committee, chaos installed on top.
        let net_config = NetworkConfig {
            nodes: stages.shards.len() as u32 + 1,
            ..self.config().net
        };
        let mut net = Network::new(net_config, self.fork_rng("submission-net"))?;
        net.set_chaos(ChaosInjector::new(
            recovery.chaos.clone(),
            self.fork_rng("chaos"),
        )?);

        // Phase 1: shard submission with capped exponential backoff.
        let mut submitted: Vec<(ShardInfo, SimTime)> = Vec::new();
        let mut submission_retries = 0u64;
        let mut submissions_timed_out = Vec::new();
        for (idx, shard) in stages.shards.iter().enumerate() {
            let from = submission_node(idx);
            let payload = shard.tx_count() as usize * bytes_per_tx;
            let mut at = shard.two_phase_latency();
            let mut arrival = None;
            for attempt in 0..=recovery.max_submission_retries {
                if at > deadline {
                    break;
                }
                if attempt > 0 {
                    submission_retries += 1;
                    obs.emit(
                        "submission_retry",
                        at.as_secs(),
                        &[
                            (
                                "committee",
                                Value::U64(u64::from(shard.committee().value())),
                            ),
                            ("attempt", Value::U64(u64::from(attempt))),
                        ],
                    );
                    obs.incr("recovery.retries");
                }
                if let Some(t) = net.send(from, FINAL_NODE, payload, at) {
                    arrival = Some(t);
                    break;
                }
                let backoff = (recovery.backoff_base * f64::from(1u32 << attempt.min(16)))
                    .min(recovery.backoff_cap);
                at += backoff;
            }
            match arrival {
                Some(t) if t <= deadline => submitted.push((*shard, t)),
                _ => submissions_timed_out.push(shard.committee()),
            }
        }
        if submitted.is_empty() {
            return Err(Error::simulation(
                "no shard submission reached the final committee before the deadline",
            ));
        }

        // Phase 2: hand the submitted shards to the scheduler and monitor
        // the submitting committees until the deadline.
        let shards_in: Vec<ShardInfo> = submitted.iter().map(|(s, _)| *s).collect();
        selector.begin(&shards_in)?;
        let mut monitor = HeartbeatMonitor::new(recovery.heartbeat)?;
        for (shard, arrival) in &submitted {
            monitor.register(shard.committee(), *arrival);
        }
        let node_of = |committee: CommitteeId| -> NodeId {
            let idx = stages
                .shards
                .iter()
                .position(|s| s.committee() == committee)
                // lint: allow(P1, monitored committees are registered from stages.shards itself)
                .expect("submitted shard came from stages.shards");
            submission_node(idx)
        };

        let start = submitted
            .iter()
            .map(|(_, t)| *t)
            .max()
            .unwrap_or(SimTime::ZERO);
        let mut failures_detected: Vec<(CommitteeId, SimTime)> = Vec::new();
        let mut now = start + recovery.heartbeat.interval;
        while now < deadline {
            for (shard, _) in &submitted {
                let committee = shard.committee();
                // The final committee stops pinging a committee it has
                // already written off.
                if failures_detected.iter().any(|(c, _)| *c == committee) {
                    continue;
                }
                let rtt = net.ping_at(FINAL_NODE, node_of(committee), now);
                monitor.observe(committee, rtt, now);
                let phi = monitor.phi(committee, now);
                // Sample the suspicion trajectory once it becomes
                // interesting (half the declaration threshold); healthy
                // committees with φ ≈ 0 stay silent in the event stream.
                if phi >= recovery.heartbeat.phi_threshold / 2.0 {
                    obs.emit(
                        "suspicion",
                        now.as_secs(),
                        &[
                            ("committee", Value::U64(u64::from(committee.value()))),
                            ("phi", Value::F64(phi)),
                        ],
                    );
                }
                if monitor.health(committee, now) == CommitteeHealth::Failed {
                    failures_detected.push((committee, now));
                    obs.emit(
                        "failure_declared",
                        now.as_secs(),
                        &[
                            ("committee", Value::U64(u64::from(committee.value()))),
                            ("phi", Value::F64(phi)),
                        ],
                    );
                    obs.incr("recovery.failures_declared");
                    selector.on_failure(committee)?;
                }
            }
            selector.advance(recovery.solver_iterations_per_round);
            now += recovery.heartbeat.interval;
        }

        // Phase 3: assemble the final block from the admitted survivors.
        let survivors: Vec<CommitteeId> = submitted
            .iter()
            .map(|(s, _)| s.committee())
            .filter(|c| !failures_detected.iter().any(|(f, _)| f == c))
            .collect();
        if survivors.is_empty() {
            return Err(Error::simulation(
                "every submitted committee failed before the final consensus",
            ));
        }
        let chosen = selector.finish();
        let mut included: Vec<CommitteeId> = chosen
            .into_iter()
            .filter(|c| survivors.contains(c))
            .collect();
        if included.is_empty() {
            // Graceful degradation: never let a confused scheduler produce
            // an empty block while live committees exist.
            included = survivors;
        }

        let stragglers: Vec<CommitteeId> = monitor
            .classify(now)
            .into_iter()
            .filter(|(_, h)| *h == CommitteeHealth::Straggler)
            .map(|(c, _)| c)
            .collect();
        let detector_stats = monitor.stats(now);
        let robustness = RobustnessReport {
            heartbeats_sent: detector_stats.heartbeats_sent,
            heartbeats_missed: detector_stats.heartbeats_missed,
            degraded: !failures_detected.is_empty(),
            failures_detected,
            stragglers,
            submission_retries,
            submissions_timed_out,
            chaos: net.chaos_stats().unwrap_or_default(),
        };
        self.finish_epoch(stages, included, Some(robustness))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::ElasticoConfig;
    use mvcom_simnet::CrashEvent;

    #[test]
    fn config_validation_rejects_degenerates() {
        let mut r = RecoveryConfig::paper();
        r.backoff_base = SimTime::ZERO;
        assert!(r.validate().is_err());
        let mut r = RecoveryConfig::paper();
        r.backoff_cap = SimTime::from_secs(1.0);
        assert!(r.validate().is_err());
        let mut r = RecoveryConfig::paper();
        r.chaos.drop_prob = 2.0;
        assert!(r.validate().is_err());
        assert!(RecoveryConfig::paper().validate().is_ok());
    }

    #[test]
    fn fault_free_recovery_matches_wait_for_all_admission() {
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 11).unwrap();
        let report = sim
            .run_epoch_recovering(&mut SurvivorsOnly::default(), &RecoveryConfig::paper())
            .unwrap();
        assert!(report.final_block.committed);
        assert_eq!(report.final_block.included.len(), report.shards.len());
        let robustness = report
            .robustness
            .expect("recovering epochs carry telemetry");
        assert!(!robustness.degraded);
        assert!(robustness.failures_detected.is_empty());
        assert!(robustness.submissions_timed_out.is_empty());
        assert!(robustness.heartbeats_sent > 0);
        assert_eq!(robustness.heartbeats_missed, 0);
    }

    #[test]
    fn recovering_runner_is_deterministic_per_seed() {
        let recovery = RecoveryConfig {
            chaos: ChaosConfig::lossy(0.2),
            ..RecoveryConfig::paper()
        };
        let run = || {
            let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 13).unwrap();
            sim.run_epoch_recovering(&mut SurvivorsOnly::default(), &recovery)
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lossy_links_force_retries_but_the_epoch_still_commits() {
        let recovery = RecoveryConfig {
            chaos: ChaosConfig::lossy(0.4),
            ..RecoveryConfig::paper()
        };
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 17).unwrap();
        let report = sim
            .run_epoch_recovering(&mut SurvivorsOnly::default(), &recovery)
            .unwrap();
        assert!(report.final_block.committed);
        let robustness = report.robustness.unwrap();
        assert!(
            robustness.submission_retries > 0 || robustness.heartbeats_missed > 0,
            "40% loss should leave a trace in the counters: {robustness:?}"
        );
        assert!(robustness.chaos.dropped > 0);
    }

    #[test]
    fn crashed_committee_is_detected_and_dropped_from_the_block() {
        // Kill the second surviving shard's committee mid-epoch; the crash
        // is permanent, so heartbeats to it observe infinite latency.
        let crash_at = SimTime::from_secs(2_500.0);
        let recovery = RecoveryConfig {
            chaos: ChaosConfig::none()
                .with_crash(CrashEvent::permanent(submission_node(1), crash_at)),
            ..RecoveryConfig::paper()
        };
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 19).unwrap();
        let report = sim
            .run_epoch_recovering(&mut SurvivorsOnly::default(), &recovery)
            .unwrap();
        let victim = report.shards[1].committee();
        let robustness = report.robustness.clone().unwrap();
        assert!(robustness.degraded);
        assert_eq!(robustness.failures_detected.len(), 1);
        let (failed, detected_at) = robustness.failures_detected[0];
        assert_eq!(failed, victim);
        assert!(
            detected_at >= crash_at,
            "detection cannot precede the crash"
        );
        assert!(report.final_block.committed);
        assert!(!report.final_block.included.contains(&victim));
        assert_eq!(
            report.final_block.included.len(),
            report.shards.len() - 1,
            "exactly the victim is excluded"
        );
    }

    #[test]
    fn telemetry_traces_an_injected_crash_through_detection() {
        let crash_at = SimTime::from_secs(2_500.0);
        let recovery = RecoveryConfig {
            chaos: ChaosConfig::none()
                .with_crash(CrashEvent::permanent(submission_node(1), crash_at)),
            ..RecoveryConfig::paper()
        };
        let (obs, buf) = mvcom_obs::Obs::memory(mvcom_obs::ObsLevel::Events);
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 19)
            .unwrap()
            .with_obs(obs.clone());
        let report = sim
            .run_epoch_recovering(&mut SurvivorsOnly::default(), &recovery)
            .unwrap();
        let victim = report.shards[1].committee();
        let text = buf.contents();
        let victim_key = format!("\"committee\":{}", victim.value());
        let suspicion = text
            .lines()
            .filter(|l| l.contains("\"kind\":\"suspicion\"") && l.contains(&victim_key))
            .count();
        assert!(suspicion > 0, "crash must leave a suspicion series");
        assert!(
            text.contains("\"kind\":\"failure_declared\""),
            "declaration missing:\n{text}"
        );
        assert_eq!(obs.invalid_dropped(), 0);
    }

    #[test]
    fn crash_before_submission_times_the_shard_out() {
        // The victim dies before its shard can ever reach the final
        // committee: every submission attempt is crash-dropped.
        let recovery = RecoveryConfig {
            chaos: ChaosConfig::none()
                .with_crash(CrashEvent::permanent(submission_node(0), SimTime::ZERO)),
            ..RecoveryConfig::paper()
        };
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 23).unwrap();
        let report = sim
            .run_epoch_recovering(&mut SurvivorsOnly::default(), &recovery)
            .unwrap();
        let victim = report.shards[0].committee();
        let robustness = report.robustness.clone().unwrap();
        assert_eq!(robustness.submissions_timed_out, vec![victim]);
        assert!(robustness.submission_retries > 0);
        assert!(robustness.chaos.crash_dropped > 0);
        assert!(!report.final_block.included.contains(&victim));
    }
}
