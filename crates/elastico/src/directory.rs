//! Message-level overlay configuration (Elastico stage 2).
//!
//! The parametric [`OverlayConfig`](crate::formation::OverlayConfig) model
//! captures the *cost shape* of Elastico's directory mechanism; this
//! module simulates the mechanism itself with real messages, serving as a
//! cross-validation of the parametric path and as the high-fidelity option
//! for [`ElasticoConfig::message_level_overlay`](crate::epoch::ElasticoConfig):
//!
//! 1. the first `directory_size` PoW solvers form the *directory*;
//! 2. every later solver **announces** its identity to all directory
//!    members the moment it solves;
//! 3. each directory member **verifies** every announced identity
//!    (`verify_secs_per_identity` each — the linear-in-`n` term measured
//!    in paper Fig. 2(a));
//! 4. once a committee's full membership is known and verified, the
//!    directory **multicasts the roster** to that committee's members;
//!    the committee's overlay completes when its last member receives the
//!    roster.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mvcom_simnet::Network;
use mvcom_types::{CommitteeId, Error, NodeId, Result, SimTime};

use crate::formation::FormedCommittee;
use crate::pow::PowSolution;

/// Parameters of the directory protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectoryConfig {
    /// How many of the earliest solvers serve as the directory.
    pub directory_size: u32,
    /// Per-identity verification cost at each directory member, seconds —
    /// every member processes all `n` announcements, which is what makes
    /// formation latency linear in the network size.
    pub verify_secs_per_identity: f64,
    /// Announcement message size, bytes.
    pub announce_bytes: usize,
    /// Roster size per listed member, bytes.
    pub roster_bytes_per_member: usize,
}

impl DirectoryConfig {
    /// Defaults calibrated to the same Fig. 2(a) proportions as the
    /// parametric overlay model (~3 s of processing per network node).
    pub fn paper() -> DirectoryConfig {
        DirectoryConfig {
            directory_size: 8,
            verify_secs_per_identity: 3.0,
            announce_bytes: 128,
            roster_bytes_per_member: 64,
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if self.directory_size == 0 {
            return Err(Error::invalid_config("directory_size", "must be positive"));
        }
        if !(self.verify_secs_per_identity.is_finite() && self.verify_secs_per_identity >= 0.0) {
            return Err(Error::invalid_config(
                "verify_secs_per_identity",
                "must be finite and non-negative",
            ));
        }
        Ok(())
    }
}

/// Runs the directory protocol and returns each committee with its
/// formation latency replaced by the *measured* overlay completion time.
///
/// `solutions` must be the full lottery output (sorted by solve time, as
/// [`run_lottery`](crate::pow::run_lottery) returns it); `committees` the
/// formation output whose latencies are to be re-derived.
///
/// # Errors
///
/// Propagates configuration validation; [`Error::Simulation`] when the
/// lottery produced fewer solvers than the directory needs.
pub fn configure_overlay(
    config: &DirectoryConfig,
    solutions: &[PowSolution],
    committees: &[FormedCommittee],
    network: &mut Network,
) -> Result<Vec<FormedCommittee>> {
    config.validate()?;
    if (solutions.len() as u32) < config.directory_size {
        return Err(Error::simulation(format!(
            "{} solvers cannot seat a directory of {}",
            solutions.len(),
            config.directory_size
        )));
    }
    let directory: Vec<NodeId> = solutions[..config.directory_size as usize]
        .iter()
        .map(|s| s.node)
        .collect();
    let directory_seated_at = solutions[config.directory_size as usize - 1].solved_at;

    // Step 2: announcements. Track, per directory member, when it has
    // received every announcement (directory members announce locally).
    // Ordered maps keep roster assembly iteration seed-stable (lint D1).
    let mut heard_all: BTreeMap<NodeId, SimTime> = directory
        .iter()
        .map(|&d| (d, directory_seated_at))
        .collect();
    // And per (directory member, committee): when the member knows that
    // committee's full roster.
    let mut roster_known: BTreeMap<(NodeId, CommitteeId), SimTime> = BTreeMap::new();
    for committee in committees {
        for &d in &directory {
            roster_known.insert((d, committee.id), directory_seated_at);
        }
    }
    for sol in solutions {
        let announce_at = sol.solved_at.max(directory_seated_at);
        for &d in &directory {
            let arrival = if sol.node == d {
                announce_at
            } else {
                match network.send(sol.node, d, config.announce_bytes, announce_at) {
                    Some(t) => t,
                    None => continue, // unreachable directory member
                }
            };
            let slot = heard_all.entry(d).or_insert(arrival);
            *slot = (*slot).max(arrival);
            if let Some(t) = roster_known.get_mut(&(d, sol.committee)) {
                *t = (*t).max(arrival);
            }
        }
    }

    // Step 3: verification — each directory member serially verifies all
    // n identities after hearing them.
    let verification = SimTime::from_secs(config.verify_secs_per_identity * solutions.len() as f64);

    // Step 4: roster multicast per committee from the first directory
    // member; overlay completes at the last member's arrival.
    let mut configured = Vec::with_capacity(committees.len());
    for committee in committees {
        // lint: allow(P1, validate() rejects directory_size == 0 and the lottery seats that many)
        let announcer = directory[0];
        let roster_ready = roster_known
            .get(&(announcer, committee.id))
            .copied()
            .unwrap_or(directory_seated_at)
            + verification;
        let roster_bytes = config.roster_bytes_per_member * committee.members.len();
        let mut overlay_done = roster_ready;
        for &member in &committee.members {
            if member == announcer {
                continue;
            }
            if let Some(arrival) = network.send(announcer, member, roster_bytes, roster_ready) {
                overlay_done = overlay_done.max(arrival);
            }
        }
        configured.push(FormedCommittee {
            id: committee.id,
            members: committee.members.clone(),
            pow_completed_at: committee.pow_completed_at,
            formation_latency: overlay_done.max(committee.pow_completed_at),
        });
    }
    Ok(configured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formation::{CommitteeFormation, OverlayConfig};
    use crate::pow::{run_lottery, PowConfig};
    use mvcom_simnet::{rng, NetworkConfig};
    use mvcom_types::Hash32;

    fn setup(n: u32, seed: u64) -> (Vec<PowSolution>, Vec<FormedCommittee>, Network) {
        let pow = PowConfig::paper(3);
        let mut master = rng::master(seed);
        let sols = run_lottery(&pow, n, Hash32::digest(b"dir"), &mut master).unwrap();
        let formation = CommitteeFormation::new(OverlayConfig::paper(), 4);
        let committees = formation
            .form(&pow, &sols, n, &mut rng::fork(&mut master, "form"))
            .unwrap();
        let network = Network::new(NetworkConfig::lan(n), rng::fork(&mut master, "net")).unwrap();
        (sols, committees, network)
    }

    #[test]
    fn overlay_completes_after_pow_for_every_committee() {
        let (sols, committees, mut net) = setup(200, 1);
        let configured =
            configure_overlay(&DirectoryConfig::paper(), &sols, &committees, &mut net).unwrap();
        assert_eq!(configured.len(), committees.len());
        for c in &configured {
            assert!(c.formation_latency >= c.pow_completed_at);
        }
    }

    #[test]
    fn verification_term_scales_linearly_with_network_size() {
        let mean = |n: u32, seed: u64| {
            let (sols, committees, mut net) = setup(n, seed);
            let configured =
                configure_overlay(&DirectoryConfig::paper(), &sols, &committees, &mut net).unwrap();
            configured
                .iter()
                .map(|c| c.formation_latency.as_secs())
                .sum::<f64>()
                / configured.len() as f64
        };
        let small = mean(100, 2);
        let large = mean(500, 3);
        // 3 s/identity over 400 extra identities ⇒ ≈ +1200 s.
        assert!(
            large > small + 600.0,
            "message-level overlay should scale linearly: {small} → {large}"
        );
    }

    #[test]
    fn message_level_and_parametric_paths_agree_on_scale() {
        let (sols, committees, mut net) = setup(300, 4);
        let measured =
            configure_overlay(&DirectoryConfig::paper(), &sols, &committees, &mut net).unwrap();
        let measured_mean = measured
            .iter()
            .map(|c| c.formation_latency.as_secs())
            .sum::<f64>()
            / measured.len() as f64;
        let parametric_mean = committees
            .iter()
            .map(|c| c.formation_latency.as_secs())
            .sum::<f64>()
            / committees.len() as f64;
        let ratio = measured_mean / parametric_mean;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "paths diverge: measured {measured_mean:.0}s vs parametric {parametric_mean:.0}s"
        );
    }

    #[test]
    fn too_small_lottery_errors() {
        let (sols, committees, mut net) = setup(100, 5);
        let config = DirectoryConfig {
            directory_size: 200,
            ..DirectoryConfig::paper()
        };
        assert!(configure_overlay(&config, &sols, &committees, &mut net).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(DirectoryConfig {
            directory_size: 0,
            ..DirectoryConfig::paper()
        }
        .validate()
        .is_err());
        assert!(DirectoryConfig {
            verify_secs_per_identity: f64::NAN,
            ..DirectoryConfig::paper()
        }
        .validate()
        .is_err());
        assert!(DirectoryConfig::paper().validate().is_ok());
    }
}
