//! The five-stage Elastico epoch runner.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use rand::Rng;
use serde::{Deserialize, Serialize};

use mvcom_dataset::{Adversary, CommitteeReport, ShardSampler, Trace, TraceConfig};
use mvcom_obs::{Event, Obs, Value};
use mvcom_pbft::runner::{PbftConfig, PbftRunner};
use mvcom_pbft::ConsensusResult;
use mvcom_simnet::{rng, LatencyModel, Network, NetworkConfig, SimRng};
use mvcom_types::{
    CommitteeId, EpochId, Error, Hash32, Result, ShardInfo, SimTime, TwoPhaseLatency,
};

use crate::formation::{CommitteeFormation, FormedCommittee, OverlayConfig};
use crate::pow::{run_lottery, PowConfig};

/// Chooses which submitted shards the final committee admits — the seam
/// where the MVCom scheduler plugs in.
///
/// The default [`WaitForAll`] selector reproduces vanilla Elastico: the
/// final committee waits for every shard, so the slowest member committee
/// (the straggler of paper Fig. 1) gates the final consensus.
pub trait ShardSelector {
    /// Returns the committees whose shards join the final block.
    fn select(&mut self, shards: &[ShardInfo]) -> Vec<CommitteeId>;
}

/// Vanilla Elastico: admit every submitted shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaitForAll;

impl ShardSelector for WaitForAll {
    fn select(&mut self, shards: &[ShardInfo]) -> Vec<CommitteeId> {
        shards.iter().map(|s| s.committee()).collect()
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticoConfig {
    /// Number of nodes running PoW at each epoch.
    pub n_nodes: u32,
    /// PoW lottery parameters (committee count = `2^committee_bits`).
    pub pow: PowConfig,
    /// Overlay-configuration cost model.
    pub overlay: OverlayConfig,
    /// Minimum surviving committee size (≥ 4 for PBFT).
    pub min_committee_size: u32,
    /// Intra-committee network model.
    pub net: NetworkConfig,
    /// Per-proposal verification delay inside PBFT — calibrated so the
    /// measured intra-committee consensus latency means ≈ 54.5 s (§VI-A).
    pub consensus_verify: LatencyModel,
    /// PBFT view timeout and overall deadline.
    pub view_timeout: SimTime,
    /// Hard per-consensus deadline.
    pub consensus_deadline: SimTime,
    /// Bytes per transaction, for block-transfer modelling.
    pub bytes_per_tx: usize,
    /// The transaction trace shards are sampled from.
    pub trace: TraceConfig,
    /// When set, stage 2 runs the message-level directory protocol
    /// ([`crate::directory`]) instead of the parametric overlay-cost model
    /// — higher fidelity, more simulated messages.
    pub directory: Option<crate::directory::DirectoryConfig>,
}

impl ElasticoConfig {
    /// A small, fast configuration for unit tests: 60 nodes, 4 committees.
    pub fn small_test() -> ElasticoConfig {
        ElasticoConfig {
            n_nodes: 60,
            pow: PowConfig::paper(2),
            overlay: OverlayConfig::paper(),
            min_committee_size: 4,
            net: NetworkConfig::lan(64),
            // Calibrated so the measured three-phase consensus latency
            // (the 2f+1-th order statistic of the per-replica verification
            // delays, plus message rounds) has mean ≈ 54.5 s, matching the
            // paper's §VI-A parameterization.
            consensus_verify: LatencyModel::Exponential { mean_secs: 70.0 },
            view_timeout: SimTime::from_secs(600.0),
            consensus_deadline: SimTime::from_secs(7_200.0),
            bytes_per_tx: 250,
            trace: TraceConfig::tiny(200),
            directory: None,
        }
    }

    /// A paper-scale configuration: `n_nodes` nodes grouped into
    /// committees of roughly `target_committee_size` members.
    pub fn with_nodes(n_nodes: u32, target_committee_size: u32) -> ElasticoConfig {
        let committees = (n_nodes / target_committee_size.max(4)).max(2);
        let bits = (committees as f64).log2().floor().max(1.0) as u32;
        ElasticoConfig {
            n_nodes,
            pow: PowConfig::paper(bits.min(16)),
            net: NetworkConfig::lan(n_nodes.max(64)),
            trace: TraceConfig::jan_2016(),
            ..ElasticoConfig::small_test()
        }
    }

    /// Validates all components.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        self.pow.validate()?;
        self.net.validate()?;
        self.trace.validate()?;
        if self.n_nodes < 8 {
            return Err(Error::invalid_config("n_nodes", "need at least 8 nodes"));
        }
        if self.min_committee_size < 4 {
            return Err(Error::invalid_config(
                "min_committee_size",
                "PBFT needs at least 4 members",
            ));
        }
        if self.bytes_per_tx == 0 {
            return Err(Error::invalid_config("bytes_per_tx", "must be positive"));
        }
        if self.view_timeout.as_secs() <= 0.0 || self.view_timeout.is_infinite() {
            return Err(Error::invalid_config(
                "view_timeout",
                format!("must be positive and finite, got {}", self.view_timeout),
            ));
        }
        if self.consensus_deadline.as_secs() <= 0.0 || self.consensus_deadline.is_infinite() {
            return Err(Error::invalid_config(
                "consensus_deadline",
                format!(
                    "must be positive and finite, got {}",
                    self.consensus_deadline
                ),
            ));
        }
        if self.view_timeout >= self.consensus_deadline {
            return Err(Error::invalid_config(
                "view_timeout",
                format!(
                    "view timeout {} must be strictly below the consensus deadline {} \
                     or no view change can ever complete",
                    self.view_timeout, self.consensus_deadline
                ),
            ));
        }
        if let Some(directory) = &self.directory {
            directory.validate()?;
        }
        Ok(())
    }
}

/// The final block assembled by the final committee (stage 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinalBlock {
    /// The epoch this block closes.
    pub epoch: EpochId,
    /// Whether the final PBFT committed before its deadline.
    pub committed: bool,
    /// Digest of the admitted shard set.
    pub digest: Hash32,
    /// Total transactions across admitted shards.
    pub total_txs: u64,
    /// Latency of the final consensus itself.
    pub consensus_latency: SimTime,
    /// The admitted committees.
    pub included: Vec<CommitteeId>,
}

/// Everything one epoch produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Which epoch this is.
    pub epoch: EpochId,
    /// Stage 1–2 output: the formed committees.
    pub formed: Vec<FormedCommittee>,
    /// Stage 3 output: each surviving committee's shard with its measured
    /// two-phase latency (`ShardInfo` is exactly what MVCom consumes).
    pub shards: Vec<ShardInfo>,
    /// Raw PBFT results per committee (including failed runs).
    pub consensus: Vec<(CommitteeId, ConsensusResult)>,
    /// Stage 4 output.
    pub final_block: FinalBlock,
    /// Stage 5 output: the randomness seeding the next epoch's PoW.
    pub next_randomness: Hash32,
    /// Fault-tolerance telemetry, present when the epoch ran under
    /// [`ElasticoSim::run_epoch_recovering`](crate::recovery). `None` for
    /// the vanilla runners (and when deserializing reports written before
    /// this field existed).
    pub robustness: Option<crate::recovery::RobustnessReport>,
}

/// Output of epoch stages 1–3, handed to a stage-4 admission strategy.
#[derive(Debug, Clone)]
pub(crate) struct StageOutput {
    pub(crate) formed: Vec<FormedCommittee>,
    pub(crate) shards: Vec<ShardInfo>,
    pub(crate) consensus: Vec<(CommitteeId, ConsensusResult)>,
}

impl EpochReport {
    /// Convenience: the two-phase latency of the straggler (the largest
    /// `l_i`), i.e. when a wait-for-all final committee could start.
    pub fn straggler_latency(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.two_phase_latency())
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// Reusable per-epoch buffers: digest construction and admission indexing
/// allocate once per simulator instead of once per epoch/committee.
#[derive(Debug, Default)]
struct EpochScratch {
    /// Byte buffer behind every `Hash32::digest` input of the epoch.
    digest_bytes: Vec<u8>,
    /// Indices into the epoch's shard vector that the selector admitted.
    admitted: Vec<usize>,
}

/// The Elastico protocol simulator.
///
/// Owns the epoch counter and the evolving epoch randomness; each
/// [`ElasticoSim::run_epoch`] executes all five stages.
#[derive(Debug)]
pub struct ElasticoSim {
    config: ElasticoConfig,
    trace: Trace,
    rng: SimRng,
    epoch: EpochId,
    randomness: Hash32,
    obs: Obs,
    threads: usize,
    scratch: EpochScratch,
}

/// One committee's stage-3 consensus inputs, with both RNG streams
/// pre-forked in committee order — the serial draw-order contract that
/// makes the parallel fan-out byte-identical to a serial run.
struct PbftTask {
    n: u32,
    txs: u64,
    digest: Hash32,
    label: String,
    net_rng: SimRng,
    run_rng: SimRng,
}

/// One committee's stage-3 products: the consensus result (or the error a
/// serial run would have stopped at) plus the telemetry it emitted,
/// deferred for index-order replay.
type PbftOutcome = (Result<ConsensusResult>, Vec<Event>);

/// Executes one PBFT run from pre-forked RNG streams.
fn execute_pbft(config: &ElasticoConfig, task: PbftTask, obs: Obs) -> Result<ConsensusResult> {
    let mut pbft = PbftConfig::new(task.n.max(4))?;
    pbft.block_bytes = (task.txs as usize).saturating_mul(config.bytes_per_tx);
    pbft.verify_delay = config.consensus_verify;
    pbft.view_timeout = config.view_timeout;
    pbft.deadline = config.consensus_deadline;
    let net_nodes = task.n.max(4).max(config.net.nodes);
    let net_config = NetworkConfig {
        nodes: net_nodes,
        ..config.net
    };
    let network = Network::new(net_config, task.net_rng)?;
    PbftRunner::new(pbft, network, task.run_rng)
        .with_obs(obs, &task.label)
        .run(task.digest)
}

/// Runs stage-3 tasks across up to `threads` workers (inline when 1),
/// each on a deferred telemetry handle; returns the outcomes in task
/// order. A worker panic is resumed on the caller's thread, matching the
/// serial loop's behaviour.
fn run_pbft_pool(
    config: &ElasticoConfig,
    obs: &Obs,
    tasks: Vec<PbftTask>,
    threads: usize,
) -> Vec<PbftOutcome> {
    let run_one = |task: PbftTask| -> PbftOutcome {
        let (worker_obs, capture) = obs.deferred();
        let result = execute_pbft(config, task, worker_obs);
        (result, capture.take())
    };
    let workers = threads.min(tasks.len());
    if workers <= 1 {
        return tasks.into_iter().map(run_one).collect();
    }
    let queue: Vec<Mutex<Option<PbftTask>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<PbftOutcome>>> = queue.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let joined = crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                // lint: allow(C3, the claim only needs fetch_add atomicity — task seeds derive from the index, so which worker draws it never shows in the output)
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queue.len() {
                    break;
                }
                let Some(task) = queue[i].lock().take() else {
                    break;
                };
                // lint: allow(C3, the queue guard above is dropped before this one is taken and the two vectors protect disjoint per-index cells)
                *slots[i].lock() = Some(run_one(task));
            });
        }
    });
    if let Err(payload) = joined {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // lint: allow(P1, every slot is filled once the scope joins without a panic)
                .expect("joined stage-3 worker filled its slot")
        })
        .collect()
}

impl ElasticoSim {
    /// Builds the simulator, generating the transaction trace from the
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation.
    pub fn new(config: ElasticoConfig, seed: u64) -> Result<ElasticoSim> {
        config.validate()?;
        let mut master = rng::master(seed);
        let trace_rng_seed = master.gen::<u64>();
        let trace = Trace::generate(config.trace, trace_rng_seed);
        Ok(ElasticoSim {
            config,
            trace,
            rng: master,
            epoch: EpochId::GENESIS,
            randomness: Hash32::digest(b"elastico-genesis-randomness"),
            obs: Obs::off(),
            threads: 1,
            scratch: EpochScratch::default(),
        })
    }

    /// Sets the stage-3 worker-thread count: intra-committee PBFT runs
    /// fan out across `threads` workers between the formation barrier
    /// and the final consensus. Per-committee RNG streams are pre-forked
    /// in committee order and telemetry is replayed in committee index
    /// order after the join, so the epoch — report, RNG evolution and
    /// event bytes — is identical at any thread count (pinned by tests).
    ///
    /// # Panics
    ///
    /// When `threads` is 0; pass 1 for a serial run.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ElasticoSim {
        self.set_threads(threads);
        self
    }

    /// See [`ElasticoSim::with_threads`].
    ///
    /// # Panics
    ///
    /// When `threads` is 0; pass 1 for a serial run.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(
            threads >= 1,
            "set_threads precondition: threads must be >= 1, got 0 (use 1 for a serial run)"
        );
        self.threads = threads;
    }

    /// The stage-3 worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a telemetry handle: every subsequent epoch emits the
    /// `epoch_*`, `pow_done`, `formation_done`, `committee_consensus`,
    /// `final_block` and `pbft_*` events documented in OBSERVABILITY.md.
    /// Event timestamps are simulated seconds, relative to the epoch start.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> ElasticoSim {
        self.obs = obs;
        self
    }

    /// The attached telemetry handle (disabled unless
    /// [`ElasticoSim::with_obs`] was called).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The epoch the next `run_epoch` call will execute.
    pub fn current_epoch(&self) -> EpochId {
        self.epoch
    }

    /// The active configuration.
    pub fn config(&self) -> &ElasticoConfig {
        &self.config
    }

    /// Runs one epoch with the vanilla wait-for-all final committee.
    ///
    /// # Errors
    ///
    /// See [`ElasticoSim::run_epoch_with`].
    pub fn run_epoch(&mut self) -> Result<EpochReport> {
        self.run_epoch_with(&mut WaitForAll)
    }

    /// Runs one epoch, delegating shard admission to `selector` (stage 4).
    ///
    /// # Errors
    ///
    /// [`Error::Simulation`] when no committee survives formation or the
    /// final committee cannot be seated.
    pub fn run_epoch_with<S: ShardSelector>(&mut self, selector: &mut S) -> Result<EpochReport> {
        let stages = self.run_stages()?;
        let included = selector.select(&stages.shards);
        self.finish_epoch(stages, included, None)
    }

    /// Runs one epoch under strategic committee behaviour: each committee
    /// files a formation-time report (possibly a lie), the `selector`
    /// schedules against the *reported* features, and stages 4–5 settle
    /// against the *realized* ones (for a [`mvcom_dataset::Freerider`]
    /// the realized latency itself is inflated — the lie is the delay).
    ///
    /// Emits one `adversary_act` event (epoch-index clock) per
    /// adversarial committee and returns the per-committee reports so
    /// callers can feed a `mvcom_core::DefenseEngine` with
    /// observed-vs-reported evidence.
    ///
    /// The adversary draws from its own seed, never from the simulator's
    /// RNG, so with an empty coalition (fraction 0) the epoch is
    /// bit-identical to [`ElasticoSim::run_epoch_with`].
    ///
    /// # Errors
    ///
    /// See [`ElasticoSim::run_epoch_with`].
    pub fn run_epoch_adversarial<S: ShardSelector>(
        &mut self,
        selector: &mut S,
        adversary: &dyn Adversary,
    ) -> Result<(EpochReport, Vec<CommitteeReport>)> {
        let epoch = self.epoch.value();
        let mut stages = self.run_stages()?;
        let reports = adversary.act(epoch, &stages.shards);
        for r in &reports {
            if r.adversarial {
                self.obs.emit(
                    "adversary_act",
                    epoch as f64,
                    &[
                        ("committee", Value::U64(u64::from(r.committee().value()))),
                        ("epoch", Value::U64(epoch)),
                        ("strategy", Value::from(adversary.name())),
                        ("ds", Value::F64(r.ds())),
                        ("dl", Value::F64(r.dl())),
                    ],
                );
            }
        }
        let reported: Vec<ShardInfo> = reports.iter().map(|r| r.reported).collect();
        let included = selector.select(&reported);
        // Settle the epoch on realized behaviour, not claims.
        stages.shards = reports.iter().map(|r| r.truth).collect();
        let report = self.finish_epoch(stages, included, None)?;
        Ok((report, reports))
    }

    /// Stages 1–3 (lottery, formation, intra-committee consensus), shared
    /// by the vanilla runner and the fault-tolerant runner in
    /// [`crate::recovery`]. The RNG fork order here is load-bearing: it is
    /// what makes a seed reproduce an epoch bit-for-bit.
    pub(crate) fn run_stages(&mut self) -> Result<StageOutput> {
        let epoch = self.epoch.value();
        self.obs.emit(
            "epoch_start",
            0.0,
            &[
                ("epoch", Value::U64(epoch)),
                ("nodes", Value::U64(u64::from(self.config.n_nodes))),
            ],
        );

        // Stage 1: PoW identity lottery.
        let mut stage_rng = rng::fork(&mut self.rng, "lottery");
        let solutions = run_lottery(
            &self.config.pow,
            self.config.n_nodes,
            self.randomness,
            &mut stage_rng,
        )?;
        // Solutions arrive sorted by solve time; the last one closes stage 1.
        let pow_done_at = solutions.last().map_or(SimTime::ZERO, |s| s.solved_at);
        self.obs.emit(
            "pow_done",
            pow_done_at.as_secs(),
            &[
                ("epoch", Value::U64(epoch)),
                ("solutions", Value::U64(solutions.len() as u64)),
            ],
        );

        // Stage 2: committee formation + overlay configuration.
        let formation =
            CommitteeFormation::new(self.config.overlay, self.config.min_committee_size);
        let mut form_rng = rng::fork(&mut self.rng, "formation");
        let formed = formation.form(
            &self.config.pow,
            &solutions,
            self.config.n_nodes,
            &mut form_rng,
        )?;
        if formed.is_empty() {
            return Err(Error::simulation(
                "no committee reached the minimum size this epoch",
            ));
        }
        // Optional high-fidelity stage 2: replace the parametric overlay
        // cost with the measured directory-protocol completion times.
        let formed = if let Some(directory) = self.config.directory {
            let net_config = NetworkConfig {
                nodes: self.config.n_nodes.max(self.config.net.nodes),
                ..self.config.net
            };
            let mut overlay_net =
                Network::new(net_config, rng::fork(&mut self.rng, "overlay-net"))?;
            crate::directory::configure_overlay(&directory, &solutions, &formed, &mut overlay_net)?
        } else {
            formed
        };
        let formation_done_at = formed
            .iter()
            .map(|c| c.formation_latency)
            .max()
            .unwrap_or(SimTime::ZERO);
        self.obs.emit(
            "formation_done",
            formation_done_at.as_secs(),
            &[
                ("epoch", Value::U64(epoch)),
                ("committees", Value::U64(formed.len() as u64)),
                ("directory", Value::Bool(self.config.directory.is_some())),
            ],
        );
        self.obs.add("epoch.committees_formed", formed.len() as u64);

        // Assign shard transaction counts from the trace.
        let sampler = ShardSampler::new(&self.trace);
        let mut sample_rng = rng::fork(&mut self.rng, "shards");
        let tx_counts = sampler.sample_tx_counts(formed.len(), &mut sample_rng)?;

        // Stage 3: intra-committee PBFT per committee. Committees are
        // independent between the formation barrier and the final
        // consensus, so they fan out across `self.threads` workers. The
        // determinism contract: per-committee RNG pairs are forked here,
        // serially, in committee order — exactly the draw order of the
        // serial loop — and each worker's telemetry lands on a deferred
        // handle replayed in committee index order after the join, so the
        // epoch is byte-identical at any thread count.
        let mut tasks = Vec::with_capacity(formed.len());
        for (committee, txs) in formed.iter().zip(&tx_counts) {
            self.scratch.digest_bytes.clear();
            self.scratch
                .digest_bytes
                .extend_from_slice(self.randomness.as_bytes());
            self.scratch
                .digest_bytes
                .extend_from_slice(&committee.id.value().to_le_bytes());
            self.scratch
                .digest_bytes
                .extend_from_slice(&txs.to_le_bytes());
            let digest = Hash32::digest(&self.scratch.digest_bytes);
            let label = format!("pbft-{}", committee.id);
            let net_rng = rng::fork(&mut self.rng, &format!("{label}-net"));
            let run_rng = rng::fork(&mut self.rng, &label);
            tasks.push(PbftTask {
                n: committee.members.len() as u32,
                txs: *txs,
                digest,
                label,
                net_rng,
                run_rng,
            });
        }
        let outcomes = run_pbft_pool(&self.config, &self.obs, tasks, self.threads);
        let mut shards = Vec::with_capacity(formed.len());
        let mut consensus = Vec::with_capacity(formed.len());
        for ((committee, txs), (result, events)) in formed.iter().zip(&tx_counts).zip(outcomes) {
            // Replay before inspecting the result: on an error, the
            // events a serial run emitted before failing are already in
            // the deferred buffer.
            self.obs.replay(events);
            let result = result?;
            self.obs.emit(
                "committee_consensus",
                (committee.formation_latency + result.latency).as_secs(),
                &[
                    ("epoch", Value::U64(epoch)),
                    ("committee", Value::U64(u64::from(committee.id.value()))),
                    ("committed", Value::Bool(result.committed)),
                    ("latency", Value::F64(result.latency.as_secs())),
                    ("txs", Value::U64(*txs)),
                ],
            );
            consensus.push((committee.id, result));
            if result.committed {
                shards.push(ShardInfo::new(
                    committee.id,
                    *txs,
                    TwoPhaseLatency::new(committee.formation_latency, result.latency),
                ));
            }
        }
        if shards.is_empty() {
            return Err(Error::simulation("no committee reached intra-consensus"));
        }
        Ok(StageOutput {
            formed,
            shards,
            consensus,
        })
    }

    /// Stages 4–5: final consensus over the `included` shard set, then the
    /// epoch-randomness refresh. The final committee is the formed
    /// committee with the lowest id (Elastico designates a fixed final
    /// committee per epoch).
    pub(crate) fn finish_epoch(
        &mut self,
        stages: StageOutput,
        included: Vec<CommitteeId>,
        robustness: Option<crate::recovery::RobustnessReport>,
    ) -> Result<EpochReport> {
        let StageOutput {
            formed,
            shards,
            consensus,
        } = stages;
        self.scratch.admitted.clear();
        self.scratch.admitted.extend(
            shards
                .iter()
                .enumerate()
                .filter(|(_, s)| included.contains(&s.committee()))
                .map(|(i, _)| i),
        );
        let total_txs: u64 = self
            .scratch
            .admitted
            .iter()
            .map(|&i| shards[i].tx_count())
            .sum();
        let admitted_count = self.scratch.admitted.len();
        let final_digest = {
            self.scratch.digest_bytes.clear();
            self.scratch
                .digest_bytes
                .extend_from_slice(self.randomness.as_bytes());
            for &i in &self.scratch.admitted {
                let s = &shards[i];
                self.scratch
                    .digest_bytes
                    .extend_from_slice(&s.committee().value().to_le_bytes());
                self.scratch
                    .digest_bytes
                    .extend_from_slice(&s.tx_count().to_le_bytes());
            }
            Hash32::digest(&self.scratch.digest_bytes)
        };
        // lint: allow(P1, an empty formation already errored before this point)
        let final_committee_size = formed[0].members.len() as u32;
        let final_result =
            self.run_pbft(final_committee_size, total_txs, final_digest, "pbft-final")?;
        let epoch = self.epoch.value();
        self.obs.emit(
            "final_block",
            final_result.latency.as_secs(),
            &[
                ("epoch", Value::U64(epoch)),
                ("committed", Value::Bool(final_result.committed)),
                ("included", Value::U64(admitted_count as u64)),
                ("total_txs", Value::U64(total_txs)),
                ("latency", Value::F64(final_result.latency.as_secs())),
            ],
        );
        self.obs
            .observe("epoch.final_latency_s", final_result.latency.as_secs());
        self.obs.emit(
            "epoch_end",
            final_result.latency.as_secs(),
            &[
                ("epoch", Value::U64(epoch)),
                ("shards", Value::U64(shards.len() as u64)),
                ("admitted", Value::U64(admitted_count as u64)),
                ("committed", Value::Bool(final_result.committed)),
            ],
        );
        let final_block = FinalBlock {
            epoch: self.epoch,
            committed: final_result.committed,
            digest: final_digest,
            total_txs,
            consensus_latency: final_result.latency,
            included,
        };

        // Stage 5: refresh the epoch randomness.
        let next_randomness = {
            self.scratch.digest_bytes.clear();
            self.scratch
                .digest_bytes
                .extend_from_slice(self.randomness.as_bytes());
            self.scratch
                .digest_bytes
                .extend_from_slice(final_digest.as_bytes());
            self.scratch
                .digest_bytes
                .extend_from_slice(&self.epoch.value().to_le_bytes());
            Hash32::digest(&self.scratch.digest_bytes)
        };
        let report = EpochReport {
            epoch: self.epoch,
            formed,
            shards,
            consensus,
            final_block,
            next_randomness,
            robustness,
        };
        self.randomness = next_randomness;
        self.epoch = self.epoch.next();
        Ok(report)
    }

    /// Forks a labelled RNG stream off the simulator's master stream, for
    /// auxiliary networks (shard submission, chaos) owned by other modules.
    pub(crate) fn fork_rng(&mut self, label: &str) -> SimRng {
        rng::fork(&mut self.rng, label)
    }

    fn run_pbft(
        &mut self,
        n: u32,
        txs: u64,
        digest: Hash32,
        label: &str,
    ) -> Result<ConsensusResult> {
        let net_rng = rng::fork(&mut self.rng, &format!("{label}-net"));
        let run_rng = rng::fork(&mut self.rng, label);
        execute_pbft(
            &self.config,
            PbftTask {
                n,
                txs,
                digest,
                label: label.to_string(),
                net_rng,
                run_rng,
            },
            self.obs.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_produces_shards_and_final_block() {
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 1).unwrap();
        let report = sim.run_epoch().unwrap();
        assert_eq!(report.epoch, EpochId::GENESIS);
        assert!(!report.shards.is_empty());
        assert!(report.final_block.committed);
        assert_eq!(
            report.final_block.included.len(),
            report.shards.len(),
            "wait-for-all admits everything"
        );
        assert_eq!(
            report.final_block.total_txs,
            report.shards.iter().map(|s| s.tx_count()).sum::<u64>()
        );
        assert_eq!(sim.current_epoch(), EpochId(1));
    }

    #[test]
    fn epochs_chain_through_randomness() {
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 2).unwrap();
        let a = sim.run_epoch().unwrap();
        let b = sim.run_epoch().unwrap();
        assert_ne!(a.next_randomness, b.next_randomness);
        assert_eq!(b.epoch, EpochId(1));
        // Different randomness reshuffles committees: membership differs.
        let members_a: Vec<_> = a.formed.iter().map(|c| c.members.clone()).collect();
        let members_b: Vec<_> = b.formed.iter().map(|c| c.members.clone()).collect();
        assert_ne!(members_a, members_b);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ElasticoSim::new(ElasticoConfig::small_test(), 7).unwrap();
        let mut b = ElasticoSim::new(ElasticoConfig::small_test(), 7).unwrap();
        assert_eq!(a.run_epoch().unwrap(), b.run_epoch().unwrap());
    }

    #[test]
    fn two_phase_latency_components_are_positive() {
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 3).unwrap();
        let report = sim.run_epoch().unwrap();
        for shard in &report.shards {
            assert!(shard.latency().formation().as_secs() > 0.0);
            assert!(shard.latency().consensus().as_secs() > 0.0);
            // Formation dominates consensus, as in Fig. 2(a).
            assert!(shard.latency().formation() > shard.latency().consensus());
        }
    }

    #[test]
    fn custom_selector_filters_the_final_block() {
        struct TakeOne;
        impl ShardSelector for TakeOne {
            fn select(&mut self, shards: &[ShardInfo]) -> Vec<CommitteeId> {
                vec![shards[0].committee()]
            }
        }
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 4).unwrap();
        let report = sim.run_epoch_with(&mut TakeOne).unwrap();
        assert_eq!(report.final_block.included.len(), 1);
        assert!(report.final_block.total_txs < report.shards.iter().map(|s| s.tx_count()).sum());
    }

    #[test]
    fn straggler_latency_is_the_max() {
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 5).unwrap();
        let report = sim.run_epoch().unwrap();
        let max = report
            .shards
            .iter()
            .map(|s| s.two_phase_latency())
            .max()
            .unwrap();
        assert_eq!(report.straggler_latency(), max);
    }

    #[test]
    fn with_nodes_derives_committee_bits() {
        let config = ElasticoConfig::with_nodes(800, 100);
        assert_eq!(config.n_nodes, 800);
        assert_eq!(config.pow.committee_count(), 8);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn message_level_overlay_path_runs_end_to_end() {
        let config = ElasticoConfig {
            directory: Some(crate::directory::DirectoryConfig::paper()),
            ..ElasticoConfig::small_test()
        };
        let mut sim = ElasticoSim::new(config, 21).unwrap();
        let report = sim.run_epoch().unwrap();
        assert!(!report.shards.is_empty());
        assert!(report.final_block.committed);
        // Linear identity verification (3 s × 60 nodes = 180 s) keeps the
        // formation latency well above the raw PoW completion.
        for c in &report.formed {
            assert!(
                (c.formation_latency - c.pow_completed_at).as_secs() >= 150.0,
                "overlay too cheap for {}",
                c.id
            );
        }
    }

    #[test]
    fn telemetry_covers_every_stage_and_is_deterministic() {
        let run = || {
            let (obs, buf) = Obs::memory(mvcom_obs::ObsLevel::Events);
            let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 11)
                .unwrap()
                .with_obs(obs.clone());
            let report = sim.run_epoch().unwrap();
            assert_eq!(obs.invalid_dropped(), 0);
            (report, buf.contents())
        };
        let (report_a, text_a) = run();
        let (report_b, text_b) = run();
        assert_eq!(report_a, report_b);
        assert_eq!(text_a, text_b, "same seed must replay byte-identically");
        for needle in [
            "\"kind\":\"epoch_start\"",
            "\"kind\":\"pow_done\"",
            "\"kind\":\"formation_done\"",
            "\"kind\":\"committee_consensus\"",
            "\"kind\":\"pbft_done\"",
            "\"label\":\"pbft-final\"",
            "\"kind\":\"final_block\"",
            "\"kind\":\"epoch_end\"",
        ] {
            assert!(text_a.contains(needle), "missing {needle}");
        }
        // Telemetry must not perturb the simulation itself.
        let mut silent = ElasticoSim::new(ElasticoConfig::small_test(), 11).unwrap();
        assert_eq!(silent.run_epoch().unwrap(), report_a);
    }

    #[test]
    fn empty_coalition_is_bit_identical_to_the_vanilla_runner() {
        use mvcom_dataset::{AdversaryConfig, Misreport};
        let mut vanilla = ElasticoSim::new(ElasticoConfig::small_test(), 31).unwrap();
        let baseline = vanilla.run_epoch_with(&mut WaitForAll).unwrap();
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 31).unwrap();
        let adversary = Misreport::new(AdversaryConfig::new(0.0, 99).unwrap());
        let (report, reports) = sim
            .run_epoch_adversarial(&mut WaitForAll, &adversary)
            .unwrap();
        assert_eq!(report, baseline);
        assert!(reports.iter().all(|r| !r.adversarial));
        assert!(reports.iter().all(|r| r.reported == r.truth));
    }

    #[test]
    fn adversarial_epoch_is_deterministic_and_settles_on_truth() {
        use mvcom_dataset::{AdversaryConfig, Misreport};
        let run = || {
            let (obs, buf) = Obs::memory(mvcom_obs::ObsLevel::Events);
            let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 32)
                .unwrap()
                .with_obs(obs);
            let adversary = Misreport::new(AdversaryConfig::new(0.5, 7).unwrap());
            let out = sim
                .run_epoch_adversarial(&mut WaitForAll, &adversary)
                .unwrap();
            (out, buf.contents())
        };
        let ((report_a, reports_a), text_a) = run();
        let ((report_b, reports_b), text_b) = run();
        assert_eq!(report_a, report_b);
        assert_eq!(reports_a, reports_b);
        assert_eq!(text_a, text_b);
        assert!(text_a.contains("\"kind\":\"adversary_act\""));
        assert!(text_a.contains("\"strategy\":\"misreport\""));
        // Stage 4 settles on realized transaction counts, not claims.
        let true_total: u64 = reports_a.iter().map(|r| r.truth.tx_count()).sum();
        let claimed_total: u64 = reports_a.iter().map(|r| r.reported.tx_count()).sum();
        assert_eq!(report_a.final_block.total_txs, true_total);
        assert!(claimed_total > true_total, "misreporters inflate claims");
    }

    #[test]
    fn epoch_is_byte_identical_at_any_thread_count() {
        let run = |threads: usize| {
            let (obs, buf) = Obs::memory(mvcom_obs::ObsLevel::Trace);
            let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 17)
                .unwrap()
                .with_obs(obs.clone())
                .with_threads(threads);
            let reports: Vec<EpochReport> = (0..2).map(|_| sim.run_epoch().unwrap()).collect();
            assert_eq!(obs.invalid_dropped(), 0);
            let committed = obs
                .metrics()
                .map(|m| m.counter("pbft.committed"))
                .unwrap_or(0);
            (reports, buf.contents(), committed)
        };
        let baseline = run(1);
        for threads in [2, 3, 4, 16] {
            let parallel = run(threads);
            assert_eq!(
                baseline.0, parallel.0,
                "reports differ at {threads} threads"
            );
            assert_eq!(
                baseline.1, parallel.1,
                "event bytes differ at {threads} threads"
            );
            assert_eq!(
                baseline.2, parallel.2,
                "counters differ at {threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "set_threads precondition")]
    fn with_threads_rejects_zero() {
        let _ = ElasticoSim::new(ElasticoConfig::small_test(), 1)
            .unwrap()
            .with_threads(0);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = ElasticoConfig::small_test();
        c.n_nodes = 4;
        assert!(c.validate().is_err());
        let mut c = ElasticoConfig::small_test();
        c.min_committee_size = 3;
        assert!(c.validate().is_err());
        let mut c = ElasticoConfig::small_test();
        c.bytes_per_tx = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_degenerate_timeout_orderings() {
        // Vanishing or infinite timers.
        let mut c = ElasticoConfig::small_test();
        c.view_timeout = SimTime::ZERO;
        assert!(c.validate().is_err());
        let mut c = ElasticoConfig::small_test();
        c.view_timeout = SimTime::INFINITY;
        assert!(c.validate().is_err());
        let mut c = ElasticoConfig::small_test();
        c.consensus_deadline = SimTime::ZERO;
        assert!(c.validate().is_err());
        let mut c = ElasticoConfig::small_test();
        c.consensus_deadline = SimTime::INFINITY;
        assert!(c.validate().is_err());
        // A view timeout at or above the deadline means a single view
        // change already blows the deadline.
        let mut c = ElasticoConfig::small_test();
        c.view_timeout = c.consensus_deadline;
        assert!(c.validate().is_err());
        let mut c = ElasticoConfig::small_test();
        c.view_timeout = c.consensus_deadline + SimTime::from_secs(1.0);
        assert!(c.validate().is_err());
        // The error message names the offending relationship.
        let mut c = ElasticoConfig::small_test();
        c.view_timeout = c.consensus_deadline;
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("view_timeout"), "got: {msg}");
    }
}
