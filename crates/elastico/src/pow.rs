//! The PoW identity lottery (Elastico stage 1).
//!
//! Every node repeatedly hashes `(epoch randomness, node id, nonce)` until
//! the digest clears the difficulty. Solve times are exponential — the
//! memoryless property of hashing trials — with the mean set by
//! difficulty/hash-power; the paper's simulation uses a 600-second
//! expectation (§VI-A). The final `committee_bits` bits of the winning
//! digest assign the node to a committee, exactly as in Elastico.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mvcom_simnet::LatencyModel;
use mvcom_types::{CommitteeId, Error, Hash32, NodeId, Result, SimTime};

/// PoW parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowConfig {
    /// Mean puzzle-solving time in seconds (paper: 600 s).
    pub mean_solve_secs: f64,
    /// Number of committee-assignment bits: `2^committee_bits` committees.
    pub committee_bits: u32,
    /// Relative hash-power spread across nodes: each node's mean solve
    /// time is `mean_solve_secs / power`, with `power` drawn uniformly
    /// from `[1 − spread, 1 + spread]`. `0.0` makes all nodes equal.
    pub power_spread: f64,
}

impl PowConfig {
    /// The paper's §VI-A parameterization: Exp(600 s) solves, moderate
    /// hash-power heterogeneity.
    pub fn paper(committee_bits: u32) -> PowConfig {
        PowConfig {
            mean_solve_secs: 600.0,
            committee_bits,
            power_spread: 0.3,
        }
    }

    /// Number of committees this configuration produces.
    pub fn committee_count(&self) -> u32 {
        1 << self.committee_bits
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if !(self.mean_solve_secs.is_finite() && self.mean_solve_secs > 0.0) {
            return Err(Error::invalid_config("mean_solve_secs", "must be positive"));
        }
        if self.committee_bits == 0 || self.committee_bits > 16 {
            return Err(Error::invalid_config(
                "committee_bits",
                "must be in 1..=16 (2 to 65536 committees)",
            ));
        }
        if !(0.0..1.0).contains(&self.power_spread) {
            return Err(Error::invalid_config("power_spread", "must be in [0, 1)"));
        }
        Ok(())
    }
}

/// One node's solved PoW identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowSolution {
    /// The solving node.
    pub node: NodeId,
    /// When the puzzle was solved (from epoch start).
    pub solved_at: SimTime,
    /// The winning digest (identity).
    pub identity: Hash32,
    /// The committee the digest's low bits assign the node to.
    pub committee: CommitteeId,
}

/// Runs the identity lottery for `n_nodes` nodes against the shared
/// `epoch_randomness`, returning solutions sorted by solve time.
///
/// # Errors
///
/// Propagates configuration validation.
pub fn run_lottery<R: Rng + ?Sized>(
    config: &PowConfig,
    n_nodes: u32,
    epoch_randomness: Hash32,
    rng: &mut R,
) -> Result<Vec<PowSolution>> {
    config.validate()?;
    if n_nodes == 0 {
        return Err(Error::invalid_config("n_nodes", "need at least one node"));
    }
    let mask = (1u64 << config.committee_bits) - 1;
    let mut solutions: Vec<PowSolution> = (0..n_nodes)
        .map(|i| {
            let power = 1.0 + config.power_spread * (rng.gen::<f64>() * 2.0 - 1.0);
            let model = LatencyModel::Exponential {
                mean_secs: config.mean_solve_secs / power,
            };
            let solved_at = model.sample(rng);
            let nonce: u64 = rng.gen();
            let identity = Hash32::digest(
                &[
                    epoch_randomness.as_bytes().as_slice(),
                    &u64::from(i).to_le_bytes(),
                    &nonce.to_le_bytes(),
                ]
                .concat(),
            );
            let committee = CommitteeId((identity.prefix_u64() & mask) as u32);
            PowSolution {
                node: NodeId(i),
                solved_at,
                identity,
                committee,
            }
        })
        .collect();
    solutions.sort_by_key(|a| a.solved_at);
    Ok(solutions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcom_simnet::rng;

    #[test]
    fn lottery_is_sorted_and_complete() {
        let mut r = rng::master(1);
        let sols = run_lottery(&PowConfig::paper(3), 100, Hash32::digest(b"seed"), &mut r).unwrap();
        assert_eq!(sols.len(), 100);
        for w in sols.windows(2) {
            assert!(w[0].solved_at <= w[1].solved_at);
        }
        let nodes: std::collections::HashSet<u32> = sols.iter().map(|s| s.node.0).collect();
        assert_eq!(nodes.len(), 100);
    }

    #[test]
    fn solve_times_have_the_configured_mean() {
        let mut r = rng::master(2);
        let config = PowConfig {
            power_spread: 0.0,
            ..PowConfig::paper(2)
        };
        let sols = run_lottery(&config, 20_000, Hash32::digest(b"s"), &mut r).unwrap();
        let mean: f64 = sols.iter().map(|s| s.solved_at.as_secs()).sum::<f64>() / sols.len() as f64;
        assert!((mean - 600.0).abs() / 600.0 < 0.05, "mean solve {mean}");
    }

    #[test]
    fn committee_assignment_is_roughly_uniform() {
        let mut r = rng::master(3);
        let config = PowConfig::paper(3); // 8 committees
        let sols = run_lottery(&config, 8_000, Hash32::digest(b"u"), &mut r).unwrap();
        let mut counts = [0u32; 8];
        for s in &sols {
            assert!(s.committee.0 < 8);
            counts[s.committee.index()] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&count),
                "committee {c} got {count} members"
            );
        }
    }

    #[test]
    fn epoch_randomness_changes_assignments() {
        let mut r1 = rng::master(4);
        let mut r2 = rng::master(4);
        let a = run_lottery(&PowConfig::paper(4), 50, Hash32::digest(b"epoch1"), &mut r1).unwrap();
        let b = run_lottery(&PowConfig::paper(4), 50, Hash32::digest(b"epoch2"), &mut r2).unwrap();
        // Same RNG stream, different randomness: identities must differ.
        assert!(a
            .iter()
            .zip(&b)
            .any(|(x, y)| x.identity != y.identity || x.committee != y.committee));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(PowConfig {
            mean_solve_secs: 0.0,
            ..PowConfig::paper(2)
        }
        .validate()
        .is_err());
        assert!(PowConfig {
            committee_bits: 0,
            ..PowConfig::paper(2)
        }
        .validate()
        .is_err());
        assert!(PowConfig {
            committee_bits: 20,
            ..PowConfig::paper(2)
        }
        .validate()
        .is_err());
        assert!(PowConfig {
            power_spread: 1.0,
            ..PowConfig::paper(2)
        }
        .validate()
        .is_err());
        let mut r = rng::master(0);
        assert!(run_lottery(&PowConfig::paper(2), 0, Hash32::ZERO, &mut r).is_err());
    }
}
