//! Heartbeat-based failure detection for member committees (paper §V-A).
//!
//! The final committee "perceives a failed member committee by using the
//! ping network protocol" — a failed committee's observed latency becomes
//! infinite. This module turns that observation into an online detector in
//! the phi-accrual style (Hayashibara et al.): instead of a binary timeout,
//! each committee accrues a *suspicion level* φ that grows with the time
//! since its last successful heartbeat, normalized by the inter-arrival
//! statistics observed while it was healthy. Crossing `phi_threshold`
//! classifies the committee as **failed**; a committee that answers but
//! with round-trips far above the population median is a **straggler**
//! (the slow committees of paper Fig. 1 that MVCom's scheduler leaves out).
//!
//! Detections feed the running SE engine as `Leave` events with
//! `DynamicsPolicy::Trim` — the §V solution-space surgery — rather than as
//! scripted [`TimedEvent`](mvcom_core-free) sequences; the epoch runner in
//! [`crate::epoch`] owns that wiring.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mvcom_types::{CommitteeId, Error, Result, SimTime};

/// Tunables of the heartbeat failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatConfig {
    /// Ping period.
    pub interval: SimTime,
    /// Suspicion level at which a committee is declared failed. With
    /// exponential inter-arrival tails, φ grows by `log10(e) ≈ 0.434` per
    /// mean interval of silence, so a threshold of 2.0 tolerates roughly
    /// four to five consecutive missed heartbeats.
    pub phi_threshold: f64,
    /// A committee whose mean round-trip exceeds this multiple of the
    /// population median is classified as a straggler.
    pub straggler_factor: f64,
    /// Heartbeat observations required before φ is trusted; until then a
    /// silent committee is only *suspected* once `2 × interval` elapses.
    pub min_samples: u32,
}

impl HeartbeatConfig {
    /// Defaults sized for epoch timescales: 30 s pings, φ ≥ 2, 3× median
    /// round-trip flags a straggler.
    pub fn paper() -> HeartbeatConfig {
        HeartbeatConfig {
            interval: SimTime::from_secs(30.0),
            phi_threshold: 2.0,
            straggler_factor: 3.0,
            min_samples: 3,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if self.interval.as_secs() <= 0.0 || self.interval.is_infinite() {
            return Err(Error::invalid_config(
                "interval",
                format!(
                    "heartbeat interval must be positive and finite, got {}",
                    self.interval
                ),
            ));
        }
        if self.phi_threshold <= 0.0 || !self.phi_threshold.is_finite() {
            return Err(Error::invalid_config(
                "phi_threshold",
                format!("must be positive and finite, got {}", self.phi_threshold),
            ));
        }
        if self.straggler_factor <= 1.0 || !self.straggler_factor.is_finite() {
            return Err(Error::invalid_config(
                "straggler_factor",
                format!("must exceed 1, got {}", self.straggler_factor),
            ));
        }
        Ok(())
    }
}

/// What the detector currently believes about one committee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitteeHealth {
    /// Answering pings with unremarkable latency.
    Healthy,
    /// Answering, but with round-trips `straggler_factor`× above the
    /// population median — the Fig. 1 straggler the scheduler should not
    /// wait for.
    Straggler,
    /// Suspicion crossed `phi_threshold`: treated as crashed (§V-A
    /// infinite ping latency).
    Failed,
}

/// Aggregate detector counters, surfaced through the CLI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorStats {
    /// Heartbeats sent (pongs received + missed).
    pub heartbeats_sent: u64,
    /// Heartbeats that went unanswered.
    pub heartbeats_missed: u64,
    /// Committees currently classified as failed.
    pub failures_detected: u64,
    /// Committees currently classified as stragglers.
    pub stragglers_detected: u64,
}

#[derive(Debug, Clone, Copy)]
struct MemberState {
    last_heard: SimTime,
    /// Streaming mean of successful inter-arrival gaps.
    gap_mean_secs: f64,
    gap_samples: u32,
    /// Streaming mean of observed round-trip times.
    rtt_mean_secs: f64,
    rtt_samples: u32,
    missed: u64,
    failed: bool,
}

/// The phi-accrual heartbeat monitor the final committee runs over its
/// member committees.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    config: HeartbeatConfig,
    members: BTreeMap<CommitteeId, MemberState>,
    sent: u64,
    missed: u64,
}

impl HeartbeatMonitor {
    /// Builds a monitor from a validated configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`HeartbeatConfig::validate`].
    pub fn new(config: HeartbeatConfig) -> Result<HeartbeatMonitor> {
        config.validate()?;
        Ok(HeartbeatMonitor {
            config,
            members: BTreeMap::new(),
            sent: 0,
            missed: 0,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &HeartbeatConfig {
        &self.config
    }

    /// Starts monitoring `committee`, treating `now` as its last-heard
    /// time. Re-registering resets the committee's state.
    pub fn register(&mut self, committee: CommitteeId, now: SimTime) {
        self.members.insert(
            committee,
            MemberState {
                last_heard: now,
                gap_mean_secs: self.config.interval.as_secs(),
                gap_samples: 0,
                rtt_mean_secs: 0.0,
                rtt_samples: 0,
                missed: 0,
                failed: false,
            },
        );
    }

    /// Records the outcome of one ping sent at `now`: a finite `rtt` is a
    /// pong, [`SimTime::INFINITY`] a miss (the §V-A signal).
    pub fn observe(&mut self, committee: CommitteeId, rtt: SimTime, now: SimTime) {
        let Some(state) = self.members.get_mut(&committee) else {
            return;
        };
        self.sent += 1;
        if rtt.is_infinite() {
            self.missed += 1;
            state.missed += 1;
            return;
        }
        let gap = (now - state.last_heard).as_secs().max(f64::MIN_POSITIVE);
        state.gap_samples += 1;
        state.gap_mean_secs += (gap - state.gap_mean_secs) / f64::from(state.gap_samples);
        state.rtt_samples += 1;
        state.rtt_mean_secs += (rtt.as_secs() - state.rtt_mean_secs) / f64::from(state.rtt_samples);
        state.last_heard = now;
        state.failed = false;
    }

    /// The suspicion level of `committee` at time `now`: the negative
    /// decimal log of the probability that a healthy committee would stay
    /// silent this long, under an exponential inter-arrival model —
    /// `φ = (now − last_heard) / mean_gap · log10(e)`. Unknown committees
    /// accrue infinite suspicion.
    pub fn phi(&self, committee: CommitteeId, now: SimTime) -> f64 {
        let Some(state) = self.members.get(&committee) else {
            return f64::INFINITY;
        };
        let silence = (now - state.last_heard).as_secs().max(0.0);
        let mean = if state.gap_samples >= self.config.min_samples {
            state.gap_mean_secs
        } else {
            // Too few samples to trust the estimate: fall back to twice
            // the ping period so early flakiness is not fatal.
            2.0 * self.config.interval.as_secs()
        };
        silence / mean.max(f64::MIN_POSITIVE) * std::f64::consts::LOG10_E
    }

    /// Classifies `committee` at time `now`. Once failed, a committee
    /// stays failed until a fresh pong is observed.
    pub fn health(&mut self, committee: CommitteeId, now: SimTime) -> CommitteeHealth {
        let phi = self.phi(committee, now);
        let median_rtt = self.median_rtt();
        let Some(state) = self.members.get_mut(&committee) else {
            return CommitteeHealth::Failed;
        };
        if state.failed || phi >= self.config.phi_threshold {
            state.failed = true;
            return CommitteeHealth::Failed;
        }
        if state.rtt_samples >= self.config.min_samples
            && median_rtt > 0.0
            && state.rtt_mean_secs > self.config.straggler_factor * median_rtt
        {
            return CommitteeHealth::Straggler;
        }
        CommitteeHealth::Healthy
    }

    /// Classifies every monitored committee at time `now`.
    pub fn classify(&mut self, now: SimTime) -> Vec<(CommitteeId, CommitteeHealth)> {
        let ids: Vec<CommitteeId> = self.members.keys().copied().collect();
        ids.into_iter()
            .map(|id| (id, self.health(id, now)))
            .collect()
    }

    /// Aggregate counters at time `now` (failure/straggler counts reflect
    /// the classification at that instant).
    pub fn stats(&mut self, now: SimTime) -> DetectorStats {
        let classified = self.classify(now);
        DetectorStats {
            heartbeats_sent: self.sent,
            heartbeats_missed: self.missed,
            failures_detected: classified
                .iter()
                .filter(|(_, h)| *h == CommitteeHealth::Failed)
                .count() as u64,
            stragglers_detected: classified
                .iter()
                .filter(|(_, h)| *h == CommitteeHealth::Straggler)
                .count() as u64,
        }
    }

    fn median_rtt(&self) -> f64 {
        let mut rtts: Vec<f64> = self
            .members
            .values()
            .filter(|s| s.rtt_samples > 0)
            .map(|s| s.rtt_mean_secs)
            .collect();
        if rtts.is_empty() {
            return 0.0;
        }
        rtts.sort_by(f64::total_cmp);
        rtts[rtts.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HeartbeatMonitor {
        let config = HeartbeatConfig {
            interval: SimTime::from_secs(10.0),
            ..HeartbeatConfig::paper()
        };
        HeartbeatMonitor::new(config).unwrap()
    }

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn config_validation_rejects_degenerates() {
        let mut c = HeartbeatConfig::paper();
        c.interval = SimTime::ZERO;
        assert!(c.validate().is_err());
        let mut c = HeartbeatConfig::paper();
        c.phi_threshold = 0.0;
        assert!(c.validate().is_err());
        let mut c = HeartbeatConfig::paper();
        c.straggler_factor = 1.0;
        assert!(c.validate().is_err());
        assert!(HeartbeatConfig::paper().validate().is_ok());
    }

    #[test]
    fn responsive_committee_stays_healthy() {
        let mut m = monitor();
        let c = CommitteeId(1);
        m.register(c, secs(0.0));
        for k in 1..=20 {
            let now = secs(10.0 * f64::from(k));
            m.observe(c, secs(0.2), now);
            assert_eq!(m.health(c, now), CommitteeHealth::Healthy, "tick {k}");
        }
        let stats = m.stats(secs(200.0));
        assert_eq!(stats.heartbeats_sent, 20);
        assert_eq!(stats.heartbeats_missed, 0);
        assert_eq!(stats.failures_detected, 0);
    }

    #[test]
    fn silence_accrues_suspicion_until_failure() {
        let mut m = monitor();
        let c = CommitteeId(2);
        m.register(c, secs(0.0));
        // Establish a healthy baseline of 10 s gaps.
        for k in 1..=5 {
            m.observe(c, secs(0.3), secs(10.0 * f64::from(k)));
        }
        // Then the committee crashes: every later ping misses.
        let mut detected_at = None;
        for k in 6..=20 {
            let now = secs(10.0 * f64::from(k));
            m.observe(c, SimTime::INFINITY, now);
            if m.health(c, now) == CommitteeHealth::Failed {
                detected_at = Some(now);
                break;
            }
        }
        let detected_at = detected_at.expect("failure must be detected");
        // φ = 2.0 with a ~10 s mean gap crosses after ~46 s of silence.
        assert!(detected_at.as_secs() > 60.0 && detected_at.as_secs() <= 110.0);
        // Failed state is sticky while silence continues.
        assert_eq!(m.health(c, secs(1_000.0)), CommitteeHealth::Failed);
        let stats = m.stats(secs(1_000.0));
        assert_eq!(stats.failures_detected, 1);
        assert!(stats.heartbeats_missed > 0);
    }

    #[test]
    fn recovery_clears_the_failed_flag() {
        let mut m = monitor();
        let c = CommitteeId(3);
        m.register(c, secs(0.0));
        for k in 1..=5 {
            m.observe(c, secs(0.3), secs(10.0 * f64::from(k)));
        }
        for k in 6..=15 {
            m.observe(c, SimTime::INFINITY, secs(10.0 * f64::from(k)));
        }
        assert_eq!(m.health(c, secs(150.0)), CommitteeHealth::Failed);
        // The node restarts and a pong arrives.
        m.observe(c, secs(0.3), secs(160.0));
        assert_eq!(m.health(c, secs(160.0)), CommitteeHealth::Healthy);
    }

    #[test]
    fn slow_but_alive_committee_is_a_straggler() {
        let mut m = monitor();
        // Five fast committees and one with 10× their round-trip.
        for id in 0..5 {
            m.register(CommitteeId(id), secs(0.0));
        }
        m.register(CommitteeId(9), secs(0.0));
        for k in 1..=6 {
            let now = secs(10.0 * f64::from(k));
            for id in 0..5 {
                m.observe(CommitteeId(id), secs(0.2), now);
            }
            m.observe(CommitteeId(9), secs(2.0), now);
        }
        assert_eq!(
            m.health(CommitteeId(9), secs(60.0)),
            CommitteeHealth::Straggler
        );
        assert_eq!(
            m.health(CommitteeId(0), secs(60.0)),
            CommitteeHealth::Healthy
        );
        let stats = m.stats(secs(60.0));
        assert_eq!(stats.stragglers_detected, 1);
        assert_eq!(stats.failures_detected, 0);
    }

    #[test]
    fn unknown_committee_is_failed() {
        let mut m = monitor();
        assert!(m.phi(CommitteeId(42), secs(0.0)).is_infinite());
        assert_eq!(
            m.health(CommitteeId(42), secs(0.0)),
            CommitteeHealth::Failed
        );
    }

    #[test]
    fn early_silence_with_few_samples_uses_the_lenient_fallback() {
        let mut m = monitor();
        let c = CommitteeId(5);
        m.register(c, secs(0.0));
        // No samples yet: 20 s of silence over the 2×interval fallback is
        // φ ≈ 0.43 — suspected but not failed.
        assert!(m.phi(c, secs(20.0)) < m.config().phi_threshold);
        assert_eq!(m.health(c, secs(20.0)), CommitteeHealth::Healthy);
    }
}
