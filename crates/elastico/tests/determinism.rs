//! Byte-identical replay regression for roster assembly (lint rule D1).
//!
//! The directory protocol's roster maps are `BTreeMap`s, so the `Debug`
//! rendering of the configured committees — members, PoW completion,
//! formation latency — is a total fingerprint of stage 1–2. A
//! reintroduced `HashMap` (or any ambient entropy) in the lottery,
//! bucketing, or overlay path breaks byte-identity and this test names
//! the seed.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom_elastico::directory::{configure_overlay, DirectoryConfig};
use mvcom_elastico::formation::{CommitteeFormation, OverlayConfig};
use mvcom_elastico::pow::{run_lottery, PowConfig};
use mvcom_simnet::{rng, Network, NetworkConfig};
use mvcom_types::Hash32;

fn fingerprint(seed: u64) -> String {
    let n = 150;
    let pow = PowConfig::paper(3);
    let mut master = rng::master(seed);
    let sols = run_lottery(&pow, n, Hash32::digest(b"replay"), &mut master).unwrap();
    let formation = CommitteeFormation::new(OverlayConfig::paper(), 4);
    let committees = formation
        .form(&pow, &sols, n, &mut rng::fork(&mut master, "form"))
        .unwrap();
    let mut network = Network::new(NetworkConfig::lan(n), rng::fork(&mut master, "net")).unwrap();
    let configured =
        configure_overlay(&DirectoryConfig::paper(), &sols, &committees, &mut network).unwrap();
    format!("{configured:?}")
}

#[test]
fn roster_assembly_is_byte_identical_for_two_seeds() {
    for seed in [11, 40_417] {
        let first = fingerprint(seed);
        let second = fingerprint(seed);
        assert_eq!(first, second, "seed {seed} did not replay byte-identically");
        assert!(first.len() > 100, "fingerprint suspiciously small: {first}");
    }
}

#[test]
fn different_seeds_produce_different_rosters() {
    assert_ne!(fingerprint(11), fingerprint(40_417));
}
