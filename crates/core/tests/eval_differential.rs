//! Differential testing: the incremental [`EvalCache`] against the naive
//! clone-and-recompute paths of [`Instance`], under both deadline policies.
//!
//! The cache answers the same questions as `Instance::{utility, selected_ddl,
//! swap_delta, insert_delta, remove_delta}` via closed forms over Fenwick
//! order statistics; these properties drive both implementations through
//! random instances and random operation sequences and require agreement to
//! 1e-9 relative at every step.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom_core::eval::EvalCache;
use mvcom_core::problem::{DdlPolicy, Instance, InstanceBuilder};
use mvcom_core::Solution;
use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Swap(usize, usize),
    Insert(usize),
    Remove(usize),
}

/// A random instance: 2–60 shards with arbitrary sizes and latencies
/// (duplicate latencies included with reasonable probability via the coarse
/// grid), either deadline policy, alpha in the paper's sweep range.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((1u64..2_000, 0u32..400), 2..60),
        1u32..20,
        prop_oneof![Just(DdlPolicy::MaxArrival), Just(DdlPolicy::MaxSelected)],
    )
        .prop_map(|(shards, alpha_half, policy)| {
            InstanceBuilder::new()
                .alpha(f64::from(alpha_half) * 0.5)
                .capacity(u64::MAX / 2)
                .ddl_policy(policy)
                .shards(
                    shards
                        .iter()
                        .enumerate()
                        .map(|(i, &(txs, lat_step))| {
                            ShardInfo::new(
                                CommitteeId(i as u32),
                                txs,
                                // 2.5-second grid ⇒ collisions are common,
                                // exercising duplicate-latency tie-breaks.
                                TwoPhaseLatency::from_total(SimTime::from_secs(
                                    f64::from(lat_step) * 2.5,
                                )),
                            )
                        })
                        .collect(),
                )
                .build()
                .expect("generated instances are valid")
        })
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            ((0..64usize), (0..64usize)).prop_map(|(a, b)| Op::Swap(a, b)),
            (0..64usize).prop_map(Op::Insert),
            (0..64usize).prop_map(Op::Remove),
        ],
        1..200,
    )
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    /// Every delta the cache prices agrees with the naive clone-and-
    /// recompute reference, on every reachable state of a random walk.
    #[test]
    fn incremental_deltas_match_naive_recompute(
        inst in arb_instance(),
        ops in arb_ops(),
        start_stride in 1usize..4,
    ) {
        let n = inst.len();
        let mut sol = Solution::from_indices(n, (0..n).step_by(start_stride), &inst);
        let mut cache = EvalCache::new(&inst, &sol);
        for op in ops {
            match op {
                Op::Swap(out, inc) => {
                    let (out, inc) = (out % n, inc % n);
                    if !sol.contains(out) || sol.contains(inc) {
                        continue;
                    }
                    let naive = inst.swap_delta(&sol, out, inc);
                    let fast = cache.swap_delta(&inst, &sol, out, inc);
                    prop_assert!(close(naive, fast), "swap: naive {} vs cached {}", naive, fast);
                    sol.swap(out, inc, &inst);
                    cache.swap(out, inc);
                }
                Op::Insert(i) => {
                    let i = i % n;
                    if sol.contains(i) {
                        continue;
                    }
                    let naive = inst.insert_delta(&sol, i);
                    let fast = cache.insert_delta(&inst, &sol, i);
                    prop_assert!(close(naive, fast), "insert: naive {} vs cached {}", naive, fast);
                    sol.insert(i, &inst);
                    cache.insert(i);
                }
                Op::Remove(i) => {
                    let i = i % n;
                    if !sol.contains(i) {
                        continue;
                    }
                    let naive = inst.remove_delta(&sol, i);
                    let fast = cache.remove_delta(&inst, &sol, i);
                    prop_assert!(close(naive, fast), "remove: naive {} vs cached {}", naive, fast);
                    sol.remove(i, &inst);
                    cache.remove(i);
                }
            }
            // State-level agreement after each committed op: utility and
            // induced deadline.
            let naive_u = inst.utility(&sol);
            let fast_u = cache.utility(&inst, &sol);
            prop_assert!(close(naive_u, fast_u), "utility: naive {} vs cached {}", naive_u, fast_u);
            prop_assert_eq!(cache.selected_ddl(), inst.selected_ddl(&sol));
            prop_assert_eq!(cache.selected_count(), sol.selected_count());
        }
    }

    /// A cache built fresh on the final state agrees with one that lived
    /// through the whole walk — mutation never diverges from construction
    /// (this is exactly the checkpoint-restore rebuild contract).
    #[test]
    fn mutated_cache_equals_rebuilt_cache(
        inst in arb_instance(),
        ops in arb_ops(),
    ) {
        let n = inst.len();
        let mut sol = Solution::empty(n);
        let mut cache = EvalCache::new(&inst, &sol);
        for op in ops {
            match op {
                Op::Swap(out, inc) => {
                    let (out, inc) = (out % n, inc % n);
                    if sol.contains(out) && !sol.contains(inc) {
                        sol.swap(out, inc, &inst);
                        cache.swap(out, inc);
                    }
                }
                Op::Insert(i) => {
                    if !sol.contains(i % n) {
                        sol.insert(i % n, &inst);
                        cache.insert(i % n);
                    }
                }
                Op::Remove(i) => {
                    if sol.contains(i % n) {
                        sol.remove(i % n, &inst);
                        cache.remove(i % n);
                    }
                }
            }
        }
        let rebuilt = EvalCache::new(&inst, &sol);
        prop_assert_eq!(rebuilt.selected_count(), cache.selected_count());
        prop_assert_eq!(rebuilt.selected_ddl(), cache.selected_ddl());
        for i in 0..n {
            prop_assert_eq!(rebuilt.contains(i), sol.contains(i));
            prop_assert_eq!(cache.contains(i), sol.contains(i));
        }
        prop_assert_eq!(
            rebuilt.utility(&inst, &sol).to_bits(),
            cache.utility(&inst, &sol).to_bits()
        );
    }
}
