//! Crash-recovery integration: a defended scheduling loop killed
//! mid-quarantine, restored from serialized checkpoints, must reproduce
//! the uninterrupted run's decisions byte-for-byte.
//!
//! Two layers are snapshotted across a simulated process boundary (JSON):
//!
//! * [`DefenseCheckpoint`] — the reputation/quarantine state. The defense
//!   engine is RNG-free, so a restored engine replays the exact decision
//!   sequence of an uninterrupted one.
//! * [`SeCheckpoint`] — an SE solve killed mid-epoch. Restore re-derives
//!   deterministic RNG streams keyed by the checkpoint version, so every
//!   resume from the same snapshot lands on the same admitted set.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]

use std::collections::BTreeSet;

use mvcom_core::problem::InstanceBuilder;
use mvcom_core::se::{SeCheckpoint, SeConfig, SeEngine};
use mvcom_core::{DefenseCheckpoint, DefenseConfig, DefenseEngine, DefenseObservation};
use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};

const N: usize = 8;
const LIARS: [u32; 2] = [6, 7];
const EPOCHS: u64 = 8;
const INTERRUPT_AT: u64 = 3;

/// Ground truth for one epoch — plain arithmetic, no RNG, so both runs
/// regenerate identical inputs on their own.
fn truth(epoch: u64) -> Vec<ShardInfo> {
    (0..N as u32)
        .map(|c| {
            let txs = 900 + 40 * u64::from(c) + 13 * epoch;
            let lat = 500.0 + 12.0 * f64::from(c) + 7.0 * epoch as f64;
            ShardInfo::new(
                CommitteeId(c),
                txs,
                TwoPhaseLatency::from_total(SimTime::from_secs(lat)),
            )
        })
        .collect()
}

/// What the scheduler hears: the two liars inflate size and deflate
/// latency every epoch, everyone else reports truth.
fn reports(epoch: u64) -> Vec<ShardInfo> {
    truth(epoch)
        .into_iter()
        .map(|s| {
            if LIARS.contains(&s.committee().value()) {
                ShardInfo::new(
                    s.committee(),
                    (s.tx_count() as f64 * 1.8).round() as u64,
                    TwoPhaseLatency::from_total(s.two_phase_latency() * 0.6),
                )
            } else {
                s
            }
        })
        .collect()
}

fn se_config(epoch: u64) -> SeConfig {
    SeConfig {
        seed: 42 ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ..SeConfig::fast_test(0)
    }
}

fn schedule(candidates: &[ShardInfo], epoch: u64) -> BTreeSet<CommitteeId> {
    let instance = InstanceBuilder::new()
        .alpha(1.5)
        .capacity(6_000)
        .n_min((N / 2).min(candidates.len()))
        .shards(candidates.to_vec())
        .build()
        .unwrap();
    let outcome = SeEngine::new(&instance, se_config(epoch)).unwrap().run();
    outcome
        .best_solution
        .iter_selected()
        .map(|i| instance.shards()[i].committee())
        .collect()
}

fn observe(epoch: u64, admitted: &BTreeSet<CommitteeId>) -> Vec<DefenseObservation> {
    truth(epoch)
        .iter()
        .zip(reports(epoch))
        .map(|(tr, rep)| DefenseObservation {
            committee: tr.committee(),
            reported_size: rep.tx_count(),
            reported_latency: rep.two_phase_latency(),
            observed_latency: tr.two_phase_latency(),
            observed_size: admitted.contains(&tr.committee()).then_some(tr.tx_count()),
        })
        .collect()
}

/// One epoch of the defended loop. Returns the admitted set plus the
/// defense state serialized to JSON — the byte-for-byte decision record
/// the two runs are compared on.
fn run_epoch(defense: &mut DefenseEngine, epoch: u64) -> (Vec<u32>, String) {
    let candidates = defense.admissible(epoch, &reports(epoch), N / 2);
    let admitted = schedule(&candidates, epoch);
    defense.end_epoch(epoch, &observe(epoch, &admitted));
    let ids = admitted.iter().map(|c| c.value()).collect();
    let state = serde_json::to_string(&defense.checkpoint()).unwrap();
    (ids, state)
}

#[test]
fn defense_restore_mid_quarantine_reproduces_decisions_byte_for_byte() {
    // Uninterrupted reference run.
    let mut reference = DefenseEngine::new(DefenseConfig::paper()).unwrap();
    let reference_log: Vec<_> = (0..EPOCHS).map(|e| run_epoch(&mut reference, e)).collect();

    // Interrupted run: killed after epoch 2, while both liars sit in
    // quarantine; state crosses the process boundary as JSON.
    let mut victim = DefenseEngine::new(DefenseConfig::paper()).unwrap();
    let mut log: Vec<_> = (0..INTERRUPT_AT)
        .map(|e| run_epoch(&mut victim, e))
        .collect();
    for liar in LIARS {
        assert!(
            victim.is_quarantined(CommitteeId(liar), INTERRUPT_AT),
            "liar {liar} should be quarantined at the interruption point"
        );
    }
    let json = serde_json::to_string(&victim.checkpoint()).unwrap();
    drop(victim); // the scheduler process dies here

    let ckpt: DefenseCheckpoint = serde_json::from_str(&json).unwrap();
    let mut restored = DefenseEngine::from_checkpoint(&ckpt).unwrap();
    for liar in LIARS {
        assert!(restored.is_quarantined(CommitteeId(liar), INTERRUPT_AT));
    }
    log.extend((INTERRUPT_AT..EPOCHS).map(|e| run_epoch(&mut restored, e)));

    assert_eq!(reference_log, log, "restored decisions diverged");
    assert_eq!(
        serde_json::to_string(&reference.checkpoint()).unwrap(),
        serde_json::to_string(&restored.checkpoint()).unwrap(),
        "final defense state diverged"
    );
}

#[test]
fn se_solve_killed_mid_quarantine_epoch_resumes_deterministically() {
    // Reach the quarantine epoch, then kill the SE solve itself mid-run.
    let mut defense = DefenseEngine::new(DefenseConfig::paper()).unwrap();
    for epoch in 0..INTERRUPT_AT {
        run_epoch(&mut defense, epoch);
    }
    let candidates = defense.admissible(INTERRUPT_AT, &reports(INTERRUPT_AT), N / 2);
    assert!(
        candidates
            .iter()
            .all(|s| !LIARS.contains(&s.committee().value())),
        "quarantined liars must be out of the candidate pool"
    );
    assert_eq!(candidates.len(), N - LIARS.len());

    let instance = InstanceBuilder::new()
        .alpha(1.5)
        .capacity(6_000)
        .n_min(N / 2)
        .shards(candidates)
        .build()
        .unwrap();
    let config = se_config(INTERRUPT_AT);
    let mut engine = SeEngine::new(&instance, config).unwrap();
    for _ in 0..60 {
        engine.step();
    }
    let json = serde_json::to_string(&engine.checkpoint()).unwrap();
    drop(engine); // the solver process dies here

    let ckpt: SeCheckpoint = serde_json::from_str(&json).unwrap();
    let resume = |ckpt: &SeCheckpoint| {
        let engine = SeEngine::from_checkpoint(&instance, config, ckpt).unwrap();
        assert_eq!(engine.restored_chains(), ckpt.chain_count());
        assert_eq!(engine.iteration(), 60);
        let outcome = engine.run();
        let admitted: Vec<u32> = outcome
            .best_solution
            .iter_selected()
            .map(|i| instance.shards()[i].committee().value())
            .collect();
        (outcome.best_utility.to_bits(), admitted)
    };
    // Every resume from the same snapshot lands on the same decision —
    // the recovery manager can hand the checkpoint to any replacement.
    let first = resume(&ckpt);
    let second = resume(&ckpt);
    assert_eq!(first, second, "resumed solves diverged");
}
