//! Model-based testing: the bitset `Solution` against a reference
//! `HashSet` implementation under random operation sequences.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use std::collections::HashSet;

use mvcom_core::problem::{Instance, InstanceBuilder};
use mvcom_core::Solution;
use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(usize),
    Remove(usize),
    Swap(usize, usize),
}

fn arb_ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..n).prop_map(Op::Insert),
            (0..n).prop_map(Op::Remove),
            ((0..n), (0..n)).prop_map(|(a, b)| Op::Swap(a, b)),
        ],
        0..120,
    )
}

fn instance(n: usize) -> Instance {
    InstanceBuilder::new()
        .capacity(u64::MAX / 2)
        .shards(
            (0..n)
                .map(|i| {
                    ShardInfo::new(
                        CommitteeId(i as u32),
                        (i as u64 + 1) * 3,
                        TwoPhaseLatency::from_total(SimTime::from_secs(1.0 + i as f64)),
                    )
                })
                .collect(),
        )
        .build()
        .unwrap()
}

proptest! {
    #[test]
    fn solution_agrees_with_hashset_model(ops in arb_ops(150)) {
        let n = 150;
        let inst = instance(n);
        let mut solution = Solution::empty(n);
        let mut model: HashSet<usize> = HashSet::new();
        for op in ops {
            match op {
                Op::Insert(i) => {
                    if !model.contains(&i) {
                        model.insert(i);
                        solution.insert(i, &inst);
                    }
                }
                Op::Remove(i) => {
                    if model.contains(&i) {
                        model.remove(&i);
                        solution.remove(i, &inst);
                    }
                }
                Op::Swap(out, inc) => {
                    if model.contains(&out) && !model.contains(&inc) {
                        model.remove(&out);
                        model.insert(inc);
                        solution.swap(out, inc, &inst);
                    }
                }
            }
            // Invariants after every operation.
            prop_assert_eq!(solution.selected_count(), model.len());
            let expected_txs: u64 = model.iter().map(|&i| inst.shards()[i].tx_count()).sum();
            prop_assert_eq!(solution.tx_total(), expected_txs);
        }
        // Full-membership agreement at the end.
        let got: HashSet<usize> = solution.iter_selected().collect();
        prop_assert_eq!(got, model.clone());
        let complement: HashSet<usize> = solution.iter_unselected().collect();
        prop_assert_eq!(complement.len(), n - model.len());
        prop_assert!(complement.is_disjoint(&model));
    }

    #[test]
    fn distance_is_a_metric_sample(
        a in proptest::collection::btree_set(0usize..64, 0..32),
        b in proptest::collection::btree_set(0usize..64, 0..32),
        c in proptest::collection::btree_set(0usize..64, 0..32),
    ) {
        let inst = instance(64);
        let sa = Solution::from_indices(64, a.iter().copied(), &inst);
        let sb = Solution::from_indices(64, b.iter().copied(), &inst);
        let sc = Solution::from_indices(64, c.iter().copied(), &inst);
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(sa.distance(&sa), 0);
        prop_assert_eq!(sa.distance(&sb), sb.distance(&sa));
        prop_assert!(sa.distance(&sc) <= sa.distance(&sb) + sb.distance(&sc));
        // Agreement with the symmetric difference of the models.
        let sym: usize = a.symmetric_difference(&b).count();
        prop_assert_eq!(sa.distance(&sb), sym);
    }
}
