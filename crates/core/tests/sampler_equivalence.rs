//! The SE fast-path sampler against the frozen reference (DESIGN.md §14).
//!
//! [`EvalCache::random_selected`]/[`EvalCache::random_unselected`] promise
//! a *bit-identical* contract with [`Solution::random_selected`]/
//! [`Solution::random_unselected`]: the same RNG draw sequence (64
//! rejection draws, then one fallback draw) and the same returned index,
//! with only the fallback's `O(|I|)` scan replaced by an `O(log |I|)`
//! Fenwick select. These tests pin that contract three ways: the order
//! statistics themselves (select-kth-one/zero vs `iter_*().nth(k)` on
//! arbitrary bitsets), the sampler outputs under shared seeds across
//! density regimes (dense, sparse, empty-adjacent, full-adjacent — the
//! sparse regimes are where the fallback actually fires), and whole
//! seeded [`SeEngine`] runs across samplers and thread counts.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom_core::eval::EvalCache;
use mvcom_core::problem::{Instance, InstanceBuilder};
use mvcom_core::se::{SeConfig, SeEngine, SeSampler};
use mvcom_core::Solution;
use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn instance(n: usize) -> Instance {
    InstanceBuilder::new()
        .alpha(1.5)
        .capacity(u64::MAX / 2)
        .n_min(1)
        .shards(
            (0..n)
                .map(|i| {
                    ShardInfo::new(
                        CommitteeId(i as u32),
                        80 + (i as u64 * 13) % 90,
                        TwoPhaseLatency::from_total(SimTime::from_secs(
                            400.0 + ((i as f64 * 71.0) % 500.0),
                        )),
                    )
                })
                .collect(),
        )
        .build()
        .unwrap()
}

/// An arbitrary bitset: a length and a subset of indices.
fn arb_bitset() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (2usize..300).prop_flat_map(|len| {
        (
            Just(len),
            proptest::collection::btree_set(0..len, 0..len.min(64)),
        )
            .prop_map(|(len, set)| (len, set.into_iter().collect()))
    })
}

proptest! {
    /// Fenwick select-kth-one agrees with `iter_selected().nth(k)` and
    /// select-kth-zero with `iter_unselected().nth(k)` for every valid
    /// `k` of an arbitrary bitset.
    #[test]
    fn select_kth_matches_nth((len, picks) in arb_bitset()) {
        let inst = instance(len);
        let sol = Solution::from_indices(len, picks.iter().copied(), &inst);
        let cache = EvalCache::new(&inst, &sol);
        for k in 0..sol.selected_count() {
            prop_assert_eq!(
                cache.select_kth_selected(k),
                sol.iter_selected().nth(k).unwrap()
            );
        }
        for k in 0..(len - sol.selected_count()) {
            prop_assert_eq!(
                cache.select_kth_unselected(k),
                sol.iter_unselected().nth(k).unwrap()
            );
        }
    }

    /// The select trees stay consistent through incremental mutation, not
    /// just construction: after random swaps, select-kth still matches.
    #[test]
    fn select_kth_matches_nth_after_mutations(
        (len, picks) in arb_bitset(),
        seed in 0u64..32,
    ) {
        let inst = instance(len);
        let mut sol = Solution::from_indices(len, picks.iter().copied(), &inst);
        let mut cache = EvalCache::new(&inst, &sol);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..40 {
            let (out, inc) = (sol.random_selected(&mut rng), sol.random_unselected(&mut rng));
            if let (Some(out), Some(inc)) = (out, inc) {
                sol.swap(out, inc, &inst);
                cache.swap(out, inc);
            }
            for k in 0..sol.selected_count() {
                prop_assert_eq!(
                    cache.select_kth_selected(k),
                    sol.iter_selected().nth(k).unwrap()
                );
            }
            for k in 0..(len - sol.selected_count()) {
                prop_assert_eq!(
                    cache.select_kth_unselected(k),
                    sol.iter_unselected().nth(k).unwrap()
                );
            }
        }
    }
}

/// Drives both samplers from identically seeded RNGs over one solution
/// shape and asserts index-sequence equality *and* RNG-state equality
/// (the draw counts must match too, or downstream draws would diverge).
fn assert_samplers_agree(len: usize, picks: &[usize], seed: u64, draws: usize) {
    let inst = instance(len);
    let sol = Solution::from_indices(len, picks.iter().copied(), &inst);
    let cache = EvalCache::new(&inst, &sol);
    let mut slow_rng = ChaCha8Rng::seed_from_u64(seed);
    let mut fast_rng = ChaCha8Rng::seed_from_u64(seed);
    for step in 0..draws {
        assert_eq!(
            sol.random_selected(&mut slow_rng),
            cache.random_selected(&sol, &mut fast_rng),
            "selected draw diverged at step {step} (len={len}, |sel|={})",
            sol.selected_count()
        );
        assert_eq!(
            sol.random_unselected(&mut slow_rng),
            cache.random_unselected(&sol, &mut fast_rng),
            "unselected draw diverged at step {step} (len={len}, |sel|={})",
            sol.selected_count()
        );
        // Same number of RNG draws consumed: the streams stay in lockstep.
        assert_eq!(
            slow_rng.gen::<u64>(),
            fast_rng.gen::<u64>(),
            "RNG streams out of lockstep after step {step}"
        );
    }
}

#[test]
fn samplers_agree_dense() {
    // Half density: the 64-draw rejection loop almost always succeeds.
    let picks: Vec<usize> = (0..64).step_by(2).collect();
    for seed in 0..4 {
        assert_samplers_agree(64, &picks, seed, 200);
    }
}

#[test]
fn samplers_agree_sparse() {
    // 3 of 4096 (≈0.07% density): `random_selected`'s rejection loop
    // fails with probability ≈(1−3/4096)⁶⁴ ≈ 95% — the fallback *is* the
    // hot path here, exactly the regime the Fenwick select exists for.
    for seed in 0..4 {
        assert_samplers_agree(4096, &[7, 2048, 4095], seed, 200);
    }
}

#[test]
fn samplers_agree_empty_adjacent() {
    // A single selected shard: the sparsest reachable selected set.
    for seed in 0..4 {
        assert_samplers_agree(2048, &[1337], seed, 200);
    }
}

#[test]
fn samplers_agree_full_adjacent() {
    // All but one selected: `random_unselected`'s fallback is hot.
    let picks: Vec<usize> = (0..2048).filter(|&i| i != 600).collect();
    for seed in 0..4 {
        assert_samplers_agree(2048, &picks, seed, 200);
    }
}

#[test]
fn samplers_agree_empty_and_full() {
    let inst = instance(8);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let empty = Solution::empty(8);
    let cache = EvalCache::new(&inst, &empty);
    assert_eq!(cache.random_selected(&empty, &mut rng), None);
    let full = Solution::full(&inst);
    let cache = EvalCache::new(&inst, &full);
    assert_eq!(cache.random_unselected(&full, &mut rng), None);
}

fn engine_instance() -> Instance {
    InstanceBuilder::new()
        .alpha(1.5)
        .capacity(40 * 120)
        .n_min(13)
        .shards(
            (0..40)
                .map(|i| {
                    ShardInfo::new(
                        CommitteeId(i as u32),
                        80 + (i as u64 * 13) % 90,
                        TwoPhaseLatency::from_total(SimTime::from_secs(
                            400.0 + ((i as f64 * 71.0) % 500.0),
                        )),
                    )
                })
                .collect(),
        )
        .build()
        .unwrap()
}

#[test]
fn engine_output_is_identical_across_samplers() {
    let inst = engine_instance();
    for seed in [3, 17] {
        let cfg = SeConfig::paper(seed).with_max_iterations(300);
        let slow = SeEngine::new(&inst, cfg)
            .unwrap()
            .with_sampler(SeSampler::RejectionScan)
            .run();
        let fast = SeEngine::new(&inst, cfg)
            .unwrap()
            .with_sampler(SeSampler::RankSelect)
            .run();
        assert_eq!(slow.best_solution, fast.best_solution);
        assert_eq!(slow.best_utility, fast.best_utility);
        assert_eq!(slow.trajectory, fast.trajectory);
    }
}

#[test]
fn engine_output_is_identical_across_thread_counts() {
    let inst = engine_instance();
    for seed in [5, 23] {
        let serial = SeEngine::new(&inst, SeConfig::paper(seed).with_max_iterations(300))
            .unwrap()
            .run();
        for threads in [2, 4, 16] {
            let fanned = SeEngine::new(&inst, SeConfig::paper(seed).with_max_iterations(300))
                .unwrap()
                .with_threads(threads)
                .run();
            assert_eq!(
                serial.best_solution, fanned.best_solution,
                "{threads} threads"
            );
            assert_eq!(
                serial.best_utility, fanned.best_utility,
                "{threads} threads"
            );
            assert_eq!(serial.trajectory, fanned.trajectory, "{threads} threads");
        }
    }
}
