//! The MVCom utility-maximization problem (paper §III).
//!
//! An [`Instance`] fixes one epoch: the arrived shards with their features
//! `(s_i, l_i)`, the throughput weight `α`, the final-block capacity `Ĉ`,
//! the minimum committee count `N_min`, and the deadline semantics
//! ([`DdlPolicy`]). All solvers — the SE engine and every baseline — consume
//! this type, so their utilities are comparable by construction.

use serde::{Deserialize, Serialize};

use mvcom_types::{CommitteeId, Error, Result, ShardInfo, SimTime};

use crate::solution::Solution;

/// How the epoch deadline `t_j` entering the age term `Π_i = t_j − l_i` is
/// determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DdlPolicy {
    /// `t_j = max_{k ∈ I_j} l_k` over **all arrived** shards — the paper's
    /// eq. (1). The deadline is a constant of the instance, so per-shard
    /// marginal utilities are independent and the objective is separable.
    #[default]
    MaxArrival,
    /// `t_j = max_{k: x_k = 1} l_k` over the **selected** shards — the
    /// motivating dilemma of paper §I taken literally: admitting a straggler
    /// raises everyone's age. The objective becomes non-separable; provided
    /// as a documented extension and exercised by an ablation benchmark.
    MaxSelected,
}

/// One epoch of the MVCom problem.
///
/// Create instances through [`InstanceBuilder`]; the builder validates that
/// the constraint set is non-empty (there exists a selection with at least
/// `N_min` shards within capacity `Ĉ`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    shards: Vec<ShardInfo>,
    alpha: f64,
    capacity: u64,
    n_min: usize,
    ddl_policy: DdlPolicy,
    /// Cached `max_i l_i` (the MaxArrival deadline).
    ddl: SimTime,
}

impl Instance {
    /// The shards of this epoch, indexed `0..len()`.
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// Number of arrived shards, `|I_j|`.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` iff the epoch has no shards (never true for built instances).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The throughput weight `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The final-block transaction capacity `Ĉ`.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The minimum number of committees that must be admitted, `N_min`.
    pub fn n_min(&self) -> usize {
        self.n_min
    }

    /// The deadline semantics in force.
    pub fn ddl_policy(&self) -> DdlPolicy {
        self.ddl_policy
    }

    /// The epoch deadline under [`DdlPolicy::MaxArrival`]:
    /// `t_j = max_i l_i`.
    pub fn ddl(&self) -> SimTime {
        self.ddl
    }

    /// The index of `committee`'s shard, if it arrived this epoch.
    pub fn index_of(&self, committee: CommitteeId) -> Option<usize> {
        self.shards.iter().position(|s| s.committee() == committee)
    }

    /// The cumulative age `Π_i = t_j − l_i` a selected shard `i` would
    /// incur under the MaxArrival deadline. Always non-negative.
    pub fn age(&self, i: usize) -> f64 {
        (self.ddl.as_secs() - self.shards[i].two_phase_latency().as_secs()).max(0.0)
    }

    /// The marginal utility `α·s_i − Π_i` of selecting shard `i` under
    /// [`DdlPolicy::MaxArrival`]. May be negative: a small shard that
    /// arrived very early costs more age than it contributes throughput.
    pub fn marginal_utility(&self, i: usize) -> f64 {
        self.alpha * self.shards[i].tx_count() as f64 - self.age(i)
    }

    /// The objective value `U(f)` of a solution under this instance's
    /// [`DdlPolicy`]. Does **not** check feasibility; see
    /// [`Instance::is_feasible`].
    pub fn utility(&self, solution: &Solution) -> f64 {
        match self.ddl_policy {
            DdlPolicy::MaxArrival => solution
                .iter_selected()
                .map(|i| self.marginal_utility(i))
                .sum(),
            DdlPolicy::MaxSelected => {
                let t = self.selected_ddl(solution);
                // No clamp on the age term: `t` is a pure `f64::max` fold
                // over the very same latency values (no arithmetic), so
                // `t >= l_i` holds *exactly* for every selected shard —
                // `t - l_i` cannot be negative, not even by float noise.
                // `eval::tests` pins this with utility == Σ marginal
                // identities.
                solution
                    .iter_selected()
                    .map(|i| {
                        self.alpha * self.shards[i].tx_count() as f64
                            - (t - self.shards[i].two_phase_latency().as_secs())
                    })
                    .sum()
            }
        }
    }

    /// The deadline induced by a solution under [`DdlPolicy::MaxSelected`]:
    /// the maximum latency among selected shards (`0` for the empty set).
    pub fn selected_ddl(&self, solution: &Solution) -> f64 {
        solution
            .iter_selected()
            .map(|i| self.shards[i].two_phase_latency().as_secs())
            .fold(0.0, f64::max)
    }

    /// The exact utility change from swapping selected shard `out` for
    /// unselected shard `inc`. `O(1)` under MaxArrival; `O(n)` under
    /// MaxSelected (the induced deadline may move). Hot loops should prefer
    /// the allocation-free `O(log n)` [`crate::eval::EvalCache::swap_delta`];
    /// this naive clone-and-recompute form is kept as the differential-test
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics — in release builds too — when `solution` was built for a
    /// different shard count, when `out` or `inc` is out of range for
    /// this instance, when `out` is not selected, or when `inc` is
    /// selected: a silent garbage delta would corrupt every downstream
    /// solver state.
    pub fn swap_delta(&self, solution: &Solution, out: usize, inc: usize) -> f64 {
        assert!(
            solution.len() == self.len(),
            "swap_delta precondition: solution over {} shards does not belong to this \
             {}-shard instance",
            solution.len(),
            self.len()
        );
        assert!(
            out < self.len() && inc < self.len(),
            "swap_delta precondition: committee ids out={out}, inc={inc} must be < {}",
            self.len()
        );
        assert!(
            solution.contains(out) && !solution.contains(inc),
            "swap_delta precondition: out={out} must be selected, inc={inc} unselected"
        );
        match self.ddl_policy {
            DdlPolicy::MaxArrival => self.marginal_utility(inc) - self.marginal_utility(out),
            DdlPolicy::MaxSelected => {
                let mut next = solution.clone();
                next.remove(out, self);
                next.insert(inc, self);
                self.utility(&next) - self.utility(solution)
            }
        }
    }

    /// The exact utility change from selecting the unselected shard `i`.
    /// `O(1)` under MaxArrival; `O(n)` under MaxSelected (prefer
    /// [`crate::eval::EvalCache::insert_delta`] in hot loops).
    ///
    /// # Panics
    ///
    /// Panics — in release builds too — when `solution` was built for a
    /// different shard count, when `i` is out of range for this
    /// instance, or when `i` is already selected.
    pub fn insert_delta(&self, solution: &Solution, i: usize) -> f64 {
        assert!(
            solution.len() == self.len(),
            "insert_delta precondition: solution over {} shards does not belong to this \
             {}-shard instance",
            solution.len(),
            self.len()
        );
        assert!(
            i < self.len(),
            "insert_delta precondition: committee id {i} must be < {}",
            self.len()
        );
        assert!(
            !solution.contains(i),
            "insert_delta precondition: shard {i} is already selected"
        );
        match self.ddl_policy {
            DdlPolicy::MaxArrival => self.marginal_utility(i),
            DdlPolicy::MaxSelected => {
                let mut next = solution.clone();
                next.insert(i, self);
                self.utility(&next) - self.utility(solution)
            }
        }
    }

    /// The exact utility change from deselecting the selected shard `i`.
    /// `O(1)` under MaxArrival; `O(n)` under MaxSelected (prefer
    /// [`crate::eval::EvalCache::remove_delta`] in hot loops).
    ///
    /// # Panics
    ///
    /// Panics — in release builds too — when `solution` was built for a
    /// different shard count, when `i` is out of range for this
    /// instance, or when `i` is not selected.
    pub fn remove_delta(&self, solution: &Solution, i: usize) -> f64 {
        assert!(
            solution.len() == self.len(),
            "remove_delta precondition: solution over {} shards does not belong to this \
             {}-shard instance",
            solution.len(),
            self.len()
        );
        assert!(
            i < self.len(),
            "remove_delta precondition: committee id {i} must be < {}",
            self.len()
        );
        assert!(
            solution.contains(i),
            "remove_delta precondition: shard {i} is not selected"
        );
        match self.ddl_policy {
            DdlPolicy::MaxArrival => -self.marginal_utility(i),
            DdlPolicy::MaxSelected => {
                let mut next = solution.clone();
                next.remove(i, self);
                self.utility(&next) - self.utility(solution)
            }
        }
    }

    /// The total cumulative age `Σ_i x_i·Π_i` of a solution (paper eq. (1)
    /// summed), under the instance's deadline policy.
    pub fn cumulative_age(&self, solution: &Solution) -> f64 {
        let t = match self.ddl_policy {
            DdlPolicy::MaxArrival => self.ddl.as_secs(),
            DdlPolicy::MaxSelected => self.selected_ddl(solution),
        };
        solution
            .iter_selected()
            .map(|i| (t - self.shards[i].two_phase_latency().as_secs()).max(0.0))
            .sum()
    }

    /// The *Valuable Degree* of a solution (paper §VI-E):
    /// `Σ_i x_i · s_i / Π_i`.
    ///
    /// The shard that defines the deadline has `Π_i = 0`; its ratio is
    /// computed with the age clamped to 1 second so the metric stays finite
    /// (the paper does not specify its handling of this singularity).
    pub fn valuable_degree(&self, solution: &Solution) -> f64 {
        let t = match self.ddl_policy {
            DdlPolicy::MaxArrival => self.ddl.as_secs(),
            DdlPolicy::MaxSelected => self.selected_ddl(solution),
        };
        solution
            .iter_selected()
            .map(|i| {
                let age = (t - self.shards[i].two_phase_latency().as_secs()).max(1.0);
                self.shards[i].tx_count() as f64 / age
            })
            .sum()
    }

    /// Checks both constraints: `Σ x_i ≥ N_min` (paper (3)) and
    /// `Σ x_i·s_i ≤ Ĉ` (paper (4)).
    pub fn is_feasible(&self, solution: &Solution) -> bool {
        solution.selected_count() >= self.n_min && self.within_capacity(solution)
    }

    /// Checks the capacity constraint alone — the initialization routine
    /// (Alg. 2) enforces capacity before cardinality.
    pub fn within_capacity(&self, solution: &Solution) -> bool {
        solution.tx_total() <= self.capacity
    }

    /// The largest cardinality `n` for which a capacity-feasible selection
    /// of `n` shards exists (take the `n` smallest shards).
    pub fn max_feasible_cardinality(&self) -> usize {
        let mut sizes: Vec<u64> = self.shards.iter().map(|s| s.tx_count()).collect();
        sizes.sort_unstable();
        let mut total = 0u64;
        let mut n = 0usize;
        for s in sizes {
            total = total.saturating_add(s);
            if total > self.capacity {
                break;
            }
            n += 1;
        }
        n
    }

    /// Sum of all shard sizes, `Σ_i s_i`.
    pub fn total_txs(&self) -> u64 {
        self.shards.iter().map(|s| s.tx_count()).sum()
    }

    /// Builds a trimmed copy of the instance with `committee`'s shard
    /// removed — the solution-space surgery of paper §V (Fig. 7) applied to
    /// the problem data. Returns the trimmed instance and the removed index.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownCommittee`] if the committee has no shard here;
    /// [`Error::Infeasible`] if the survivors cannot satisfy the
    /// constraints.
    pub fn without_committee(&self, committee: CommitteeId) -> Result<(Instance, usize)> {
        let idx = self
            .index_of(committee)
            .ok_or(Error::UnknownCommittee(committee))?;
        let mut shards = self.shards.clone();
        shards.remove(idx);
        let trimmed = InstanceBuilder::new()
            .alpha(self.alpha)
            .capacity(self.capacity)
            .n_min(self.n_min)
            .ddl_policy(self.ddl_policy)
            .shards(shards)
            .build()?;
        Ok((trimmed, idx))
    }

    /// Builds an extended copy with one additional shard appended — a
    /// committee *join* event. The deadline is re-derived, so ages of
    /// existing shards may change.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidEvent`] if a shard from the same committee is
    /// already present.
    pub fn with_joined(&self, shard: ShardInfo) -> Result<Instance> {
        if self.index_of(shard.committee()).is_some() {
            return Err(Error::InvalidEvent {
                committee: shard.committee(),
                reason: "committee already has a shard in this epoch".into(),
            });
        }
        let mut shards = self.shards.clone();
        shards.push(shard);
        InstanceBuilder::new()
            .alpha(self.alpha)
            .capacity(self.capacity)
            .n_min(self.n_min)
            .ddl_policy(self.ddl_policy)
            .shards(shards)
            .build()
    }
}

/// Builder for [`Instance`] (C-BUILDER).
///
/// # Example
///
/// ```
/// use mvcom_core::problem::InstanceBuilder;
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// let shards = vec![
///     ShardInfo::new(CommitteeId(0), 800, TwoPhaseLatency::from_total(SimTime::from_secs(700.0))),
///     ShardInfo::new(CommitteeId(1), 900, TwoPhaseLatency::from_total(SimTime::from_secs(900.0))),
/// ];
/// let instance = InstanceBuilder::new()
///     .alpha(1.5)
///     .capacity(2_000)
///     .n_min(1)
///     .shards(shards)
///     .build()
///     .unwrap();
/// assert_eq!(instance.ddl().as_secs(), 900.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    shards: Vec<ShardInfo>,
    alpha: f64,
    capacity: u64,
    n_min: usize,
    ddl_policy: DdlPolicy,
}

impl InstanceBuilder {
    /// Starts a builder with `α = 1.0`, zero capacity, `N_min = 0`, and the
    /// paper's MaxArrival deadline policy.
    pub fn new() -> InstanceBuilder {
        InstanceBuilder {
            shards: Vec::new(),
            alpha: 1.0,
            capacity: 0,
            n_min: 0,
            ddl_policy: DdlPolicy::MaxArrival,
        }
    }

    /// Sets the throughput weight `α` (paper sweeps 1.5–10).
    pub fn alpha(mut self, alpha: f64) -> InstanceBuilder {
        self.alpha = alpha;
        self
    }

    /// Sets the final-block capacity `Ĉ` in transactions.
    pub fn capacity(mut self, capacity: u64) -> InstanceBuilder {
        self.capacity = capacity;
        self
    }

    /// Sets the minimum number of admitted committees `N_min`.
    pub fn n_min(mut self, n_min: usize) -> InstanceBuilder {
        self.n_min = n_min;
        self
    }

    /// Sets the deadline semantics (default [`DdlPolicy::MaxArrival`]).
    pub fn ddl_policy(mut self, policy: DdlPolicy) -> InstanceBuilder {
        self.ddl_policy = policy;
        self
    }

    /// Replaces the shard set.
    pub fn shards(mut self, shards: Vec<ShardInfo>) -> InstanceBuilder {
        self.shards = shards;
        self
    }

    /// Appends one shard.
    pub fn shard(mut self, shard: ShardInfo) -> InstanceBuilder {
        self.shards.push(shard);
        self
    }

    /// Validates and builds the instance.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidInstance`] — no shards, non-positive/non-finite
    ///   `α`, zero capacity, duplicate committee ids, or a shard with an
    ///   infinite latency.
    /// * [`Error::Infeasible`] — no selection can satisfy both constraints:
    ///   `N_min > |I|`, or the `N_min` smallest shards already exceed `Ĉ`.
    pub fn build(self) -> Result<Instance> {
        if self.shards.is_empty() {
            return Err(Error::invalid_instance("an epoch needs at least one shard"));
        }
        if !self.alpha.is_finite() || self.alpha <= 0.0 {
            return Err(Error::invalid_instance(format!(
                "alpha must be positive and finite, got {}",
                self.alpha
            )));
        }
        if self.capacity == 0 {
            return Err(Error::invalid_instance(
                "final-block capacity must be positive",
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.shards {
            if !seen.insert(s.committee()) {
                return Err(Error::invalid_instance(format!(
                    "duplicate shard for {}",
                    s.committee()
                )));
            }
            if s.two_phase_latency().is_infinite() {
                return Err(Error::invalid_instance(format!(
                    "{} has infinite latency (failed committee); remove it before building",
                    s.committee()
                )));
            }
        }
        if self.n_min > self.shards.len() {
            return Err(Error::infeasible(format!(
                "N_min = {} exceeds the {} arrived shards",
                self.n_min,
                self.shards.len()
            )));
        }
        let ddl = self
            .shards
            .iter()
            .map(|s| s.two_phase_latency())
            .max()
            // lint: allow(P1, build() rejects an empty shard list at entry)
            .expect("non-empty");
        let instance = Instance {
            shards: self.shards,
            alpha: self.alpha,
            capacity: self.capacity,
            n_min: self.n_min,
            ddl_policy: self.ddl_policy,
            ddl,
        };
        if instance.max_feasible_cardinality() < instance.n_min {
            return Err(Error::infeasible(format!(
                "even the {} smallest shards exceed the capacity {}",
                instance.n_min, instance.capacity
            )));
        }
        Ok(instance)
    }
}

/// The NP-hardness reduction of paper §III-C, made executable.
///
/// Maps a 0/1-knapsack instance (values `p_k`, weights `w_k`, capacity `C̄`)
/// to an MVCom instance with one epoch and `N_min = 0` such that selections
/// correspond one-to-one and objectives coincide. Concretely, for each item
/// `k` we create a shard with `s_k = w_k` and a latency chosen so that
/// `α·s_k − (t − l_k) = p_k`.
///
/// The weight `α` is raised to `max(alpha, max_k p_k/w_k)` when necessary:
/// the encoding needs every age `t − l_k = α·w_k − p_k` to be non-negative,
/// and per-item marginal utilities equal `p_k` for *any* such `α`. A
/// sentinel shard with `s = C̄ + 1` (so it can never be selected) pins the
/// deadline at `t`, keeping the bijection intact.
///
/// # Errors
///
/// Returns [`Error::InvalidInstance`] for empty/mismatched item lists,
/// zero weights, or zero capacity.
pub fn knapsack_reduction(
    values: &[f64],
    weights: &[u64],
    capacity: u64,
    alpha: f64,
) -> Result<Instance> {
    if values.len() != weights.len() || values.is_empty() {
        return Err(Error::invalid_instance(
            "knapsack needs equal-length, non-empty value and weight lists",
        ));
    }
    if capacity == 0 {
        return Err(Error::invalid_instance(
            "knapsack capacity must be positive",
        ));
    }
    if weights.contains(&0) {
        return Err(Error::invalid_instance("knapsack weights must be positive"));
    }
    // Raise alpha until every age alpha*w_k - p_k is non-negative.
    let min_alpha = values
        .iter()
        .zip(weights)
        .map(|(&p, &w)| p / w as f64)
        .fold(0.0_f64, f64::max);
    let alpha = alpha.max(min_alpha);
    // t bounds every l_k = t - (alpha*w_k - p_k) within (0, t].
    let max_gap = values
        .iter()
        .zip(weights)
        .map(|(&p, &w)| alpha * w as f64 - p)
        .fold(0.0_f64, f64::max);
    let t = max_gap.max(0.0) + 1.0;
    let mut shards: Vec<ShardInfo> = values
        .iter()
        .zip(weights)
        .enumerate()
        .map(|(k, (&p, &w))| {
            let l = t - (alpha * w as f64 - p);
            ShardInfo::new(
                CommitteeId(k as u32),
                w,
                mvcom_types::TwoPhaseLatency::from_total(SimTime::from_secs(l)),
            )
        })
        .collect();
    // Sentinel pinning the deadline at exactly t: latency t, size C̄+1 so it
    // can never be selected.
    shards.push(ShardInfo::new(
        CommitteeId(values.len() as u32),
        capacity + 1,
        mvcom_types::TwoPhaseLatency::from_total(SimTime::from_secs(t)),
    ));
    InstanceBuilder::new()
        .alpha(alpha)
        .capacity(capacity)
        .n_min(0)
        .shards(shards)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcom_types::TwoPhaseLatency;

    fn shard(id: u32, txs: u64, latency: f64) -> ShardInfo {
        ShardInfo::new(
            CommitteeId(id),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(latency)),
        )
    }

    fn example() -> Instance {
        // Latencies 800, 900, 1200, 1000 — the paper's Fig. 1 example.
        InstanceBuilder::new()
            .alpha(1.5)
            .capacity(3_000)
            .n_min(2)
            .shards(vec![
                shard(1, 1_000, 800.0),
                shard(2, 900, 900.0),
                shard(3, 1_400, 1200.0),
                shard(4, 1_100, 1000.0),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn ddl_is_max_latency() {
        let inst = example();
        assert_eq!(inst.ddl().as_secs(), 1200.0);
        assert_eq!(inst.len(), 4);
        assert!(!inst.is_empty());
    }

    #[test]
    fn ages_follow_eq_1() {
        let inst = example();
        assert_eq!(inst.age(0), 400.0); // 1200 - 800
        assert_eq!(inst.age(1), 300.0);
        assert_eq!(inst.age(2), 0.0); // the straggler defines the DDL
        assert_eq!(inst.age(3), 200.0);
    }

    #[test]
    fn marginal_utility_mixes_throughput_and_age() {
        let inst = example();
        // alpha*s - age = 1.5*1000 - 400 = 1100.
        assert_eq!(inst.marginal_utility(0), 1100.0);
        // The straggler has zero age: 1.5*1400 = 2100.
        assert_eq!(inst.marginal_utility(2), 2100.0);
    }

    #[test]
    fn utility_sums_selected_marginals() {
        let inst = example();
        let sol = Solution::from_indices(inst.len(), [0, 2], &inst);
        assert_eq!(inst.utility(&sol), 1100.0 + 2100.0);
        assert_eq!(inst.cumulative_age(&sol), 400.0);
    }

    #[test]
    fn swap_delta_matches_recomputation() {
        let inst = example();
        let sol = Solution::from_indices(inst.len(), [0, 1], &inst);
        let delta = inst.swap_delta(&sol, 1, 2);
        let mut swapped = sol.clone();
        swapped.remove(1, &inst);
        swapped.insert(2, &inst);
        assert!((inst.utility(&swapped) - inst.utility(&sol) - delta).abs() < 1e-9);
    }

    #[test]
    fn insert_and_remove_deltas_match_recomputation() {
        for policy in [DdlPolicy::MaxArrival, DdlPolicy::MaxSelected] {
            let inst = InstanceBuilder::new()
                .alpha(1.5)
                .capacity(10_000)
                .ddl_policy(policy)
                .shards(vec![
                    shard(1, 1_000, 800.0),
                    shard(2, 900, 900.0),
                    shard(3, 1_400, 1200.0),
                    shard(4, 1_100, 1000.0),
                ])
                .build()
                .unwrap();
            let sol = Solution::from_indices(4, [0, 2], &inst);
            let base = inst.utility(&sol);
            let mut with3 = sol.clone();
            with3.insert(3, &inst);
            assert!(
                (inst.insert_delta(&sol, 3) - (inst.utility(&with3) - base)).abs() < 1e-9,
                "{policy:?}"
            );
            let mut without2 = sol.clone();
            without2.remove(2, &inst);
            assert!(
                (inst.remove_delta(&sol, 2) - (inst.utility(&without2) - base)).abs() < 1e-9,
                "{policy:?}"
            );
        }
    }

    #[test]
    fn feasibility_checks_both_constraints() {
        let inst = example();
        let too_few = Solution::from_indices(inst.len(), [0], &inst);
        assert!(!inst.is_feasible(&too_few));
        let over_capacity = Solution::from_indices(inst.len(), [0, 2, 3], &inst); // 3500 > 3000
        assert!(!inst.is_feasible(&over_capacity));
        assert!(inst.within_capacity(&Solution::from_indices(inst.len(), [0, 2], &inst)));
        let ok = Solution::from_indices(inst.len(), [0, 1], &inst);
        assert!(inst.is_feasible(&ok));
    }

    #[test]
    fn max_feasible_cardinality_uses_smallest_shards() {
        let inst = example();
        // Sorted sizes: 900, 1000, 1100, 1400 → prefix sums 900, 1900, 3000, 4400.
        assert_eq!(inst.max_feasible_cardinality(), 3);
    }

    #[test]
    fn valuable_degree_clamps_zero_age() {
        let inst = example();
        let sol = Solution::from_indices(inst.len(), [0, 2], &inst);
        // shard 0: 1000/400; shard 2: age 0 clamped to 1 → 1400/1.
        let vd = inst.valuable_degree(&sol);
        assert!((vd - (1000.0 / 400.0 + 1400.0)).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        assert!(InstanceBuilder::new().capacity(10).build().is_err()); // no shards
        assert!(InstanceBuilder::new()
            .shard(shard(0, 10, 1.0))
            .build()
            .is_err()); // zero capacity
        assert!(InstanceBuilder::new()
            .alpha(0.0)
            .capacity(10)
            .shard(shard(0, 10, 1.0))
            .build()
            .is_err());
        assert!(InstanceBuilder::new()
            .alpha(f64::NAN)
            .capacity(10)
            .shard(shard(0, 10, 1.0))
            .build()
            .is_err());
        // Duplicate committee.
        assert!(InstanceBuilder::new()
            .capacity(100)
            .shard(shard(0, 10, 1.0))
            .shard(shard(0, 20, 2.0))
            .build()
            .is_err());
        // Infinite latency.
        let dead = ShardInfo::new(
            CommitteeId(5),
            10,
            TwoPhaseLatency::from_total(SimTime::INFINITY),
        );
        assert!(InstanceBuilder::new()
            .capacity(100)
            .shard(dead)
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_infeasible_constraints() {
        // N_min exceeds shard count.
        assert!(matches!(
            InstanceBuilder::new()
                .capacity(100)
                .n_min(3)
                .shards(vec![shard(0, 10, 1.0), shard(1, 10, 2.0)])
                .build(),
            Err(Error::Infeasible { .. })
        ));
        // N_min smallest shards exceed capacity.
        assert!(matches!(
            InstanceBuilder::new()
                .capacity(15)
                .n_min(2)
                .shards(vec![shard(0, 10, 1.0), shard(1, 10, 2.0)])
                .build(),
            Err(Error::Infeasible { .. })
        ));
    }

    #[test]
    fn without_committee_trims_and_rederives_ddl() {
        let inst = example();
        let (trimmed, idx) = inst.without_committee(CommitteeId(3)).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(trimmed.len(), 3);
        assert_eq!(trimmed.ddl().as_secs(), 1000.0);
        assert!(inst.without_committee(CommitteeId(99)).is_err());
    }

    #[test]
    fn with_joined_extends_and_rejects_duplicates() {
        let inst = example();
        let joined = inst.with_joined(shard(9, 500, 1500.0)).unwrap();
        assert_eq!(joined.len(), 5);
        assert_eq!(joined.ddl().as_secs(), 1500.0);
        // Existing committee cannot join twice.
        assert!(inst.with_joined(shard(1, 1, 1.0)).is_err());
    }

    #[test]
    fn max_selected_policy_uses_induced_deadline() {
        let inst = InstanceBuilder::new()
            .alpha(1.5)
            .capacity(10_000)
            .n_min(1)
            .ddl_policy(DdlPolicy::MaxSelected)
            .shards(vec![
                shard(1, 1_000, 800.0),
                shard(2, 900, 900.0),
                shard(3, 1_400, 1200.0),
            ])
            .build()
            .unwrap();
        // Selecting {0,1}: deadline 900, ages 100 and 0.
        let sol = Solution::from_indices(inst.len(), [0, 1], &inst);
        let expected = 1.5 * 1000.0 - 100.0 + 1.5 * 900.0;
        assert!((inst.utility(&sol) - expected).abs() < 1e-9);
        // Adding the straggler raises everyone's age.
        let all = Solution::from_indices(inst.len(), [0, 1, 2], &inst);
        let expected_all = (1.5 * 1000.0 - 400.0) + (1.5 * 900.0 - 300.0) + 1.5 * 1400.0;
        assert!((inst.utility(&all) - expected_all).abs() < 1e-9);
        // swap_delta agrees with recomputation under MaxSelected too.
        let delta = inst.swap_delta(&sol, 1, 2);
        let mut next = sol.clone();
        next.remove(1, &inst);
        next.insert(2, &inst);
        assert!((delta - (inst.utility(&next) - inst.utility(&sol))).abs() < 1e-9);
    }

    /// Clamp audit (ISSUE 2 satellite): under `MaxSelected` the deadline is
    /// a pure `f64::max` fold over the selected latencies themselves, so
    /// `t − l_i ≥ 0` holds exactly — clamping the age at zero is
    /// unreachable and `utility` is bitwise equal to the unclamped
    /// per-shard marginal sum for any selection.
    #[test]
    fn max_selected_utility_equals_unclamped_marginal_sum() {
        // Latencies with non-representable decimal parts to stress float
        // identity (0.1 + 0.2 ≠ 0.3 territory).
        let inst = InstanceBuilder::new()
            .alpha(1.7)
            .capacity(u64::MAX / 2)
            .ddl_policy(DdlPolicy::MaxSelected)
            .shards(
                (0..64)
                    .map(|i| shard(i, 10 + u64::from(i), 0.1 + (f64::from(i) * 3.7) % 29.0))
                    .collect(),
            )
            .build()
            .unwrap();
        let selections = [
            Solution::full(&inst),
            Solution::from_indices(64, (0..64).step_by(3), &inst),
            Solution::from_indices(64, [7], &inst),
        ];
        for sol in &selections {
            let t = inst.selected_ddl(sol);
            let mut unclamped = 0.0;
            let mut clamped = 0.0;
            for i in sol.iter_selected() {
                let l = inst.shards()[i].two_phase_latency().as_secs();
                assert!(t - l >= 0.0, "selected shard {i} older than its deadline");
                unclamped += inst.alpha() * inst.shards()[i].tx_count() as f64 - (t - l);
                clamped += inst.alpha() * inst.shards()[i].tx_count() as f64 - (t - l).max(0.0);
            }
            // Bitwise identical: the clamp can never fire.
            assert_eq!(unclamped, clamped);
            assert_eq!(inst.utility(sol), unclamped);
        }
    }

    #[test]
    #[should_panic(expected = "swap_delta precondition")]
    fn swap_delta_precondition_panics_in_all_profiles() {
        let inst = example();
        let sol = Solution::from_indices(inst.len(), [0, 1], &inst);
        let _ = inst.swap_delta(&sol, 2, 3); // `out` not selected
    }

    #[test]
    #[should_panic(expected = "insert_delta precondition")]
    fn insert_delta_precondition_panics_in_all_profiles() {
        let inst = example();
        let sol = Solution::from_indices(inst.len(), [0, 1], &inst);
        let _ = inst.insert_delta(&sol, 0); // already selected
    }

    #[test]
    #[should_panic(expected = "remove_delta precondition")]
    fn remove_delta_precondition_panics_in_all_profiles() {
        let inst = example();
        let sol = Solution::from_indices(inst.len(), [0, 1], &inst);
        let _ = inst.remove_delta(&sol, 3); // not selected
    }

    #[test]
    #[should_panic(expected = "swap_delta precondition")]
    fn swap_delta_rejects_out_of_range_committee_id() {
        let inst = example();
        let sol = Solution::from_indices(inst.len(), [0, 1], &inst);
        let _ = inst.swap_delta(&sol, 0, inst.len()); // `inc` out of range
    }

    #[test]
    #[should_panic(expected = "insert_delta precondition")]
    fn insert_delta_rejects_out_of_range_committee_id() {
        let inst = example();
        let sol = Solution::from_indices(inst.len(), [0, 1], &inst);
        let _ = inst.insert_delta(&sol, inst.len() + 7);
    }

    #[test]
    #[should_panic(expected = "remove_delta precondition")]
    fn remove_delta_rejects_foreign_solution() {
        let inst = example();
        // A solution built for a *different* (larger) shard set used to
        // slip past the membership check and feed garbage latencies into
        // the O(n) recompute path.
        let sol = Solution::from_indices(inst.len() + 3, [0, 1], &inst);
        let _ = inst.remove_delta(&sol, 0);
    }

    #[test]
    fn knapsack_reduction_preserves_objective() {
        // Items: values 60, 100, 120; weights 10, 20, 30; capacity 50.
        // Optimal knapsack: items 1+2 → value 220.
        let inst = knapsack_reduction(&[60.0, 100.0, 120.0], &[10, 20, 30], 50, 2.0).unwrap();
        assert_eq!(inst.len(), 4); // 3 items + sentinel
                                   // Per-item marginal utility equals the knapsack value.
        assert!((inst.marginal_utility(0) - 60.0).abs() < 1e-9);
        assert!((inst.marginal_utility(1) - 100.0).abs() < 1e-9);
        assert!((inst.marginal_utility(2) - 120.0).abs() < 1e-9);
        // Sentinel cannot fit.
        let sentinel = Solution::from_indices(inst.len(), [3], &inst);
        assert!(!inst.within_capacity(&sentinel));
        // The knapsack optimum maps to a feasible MVCom solution of equal value.
        let best = Solution::from_indices(inst.len(), [1, 2], &inst);
        assert!(inst.is_feasible(&best));
        assert!((inst.utility(&best) - 220.0).abs() < 1e-9);
    }

    #[test]
    fn knapsack_reduction_rejects_bad_input() {
        assert!(knapsack_reduction(&[], &[], 10, 1.0).is_err());
        assert!(knapsack_reduction(&[1.0], &[1, 2], 10, 1.0).is_err());
        assert!(knapsack_reduction(&[1.0], &[1], 0, 1.0).is_err());
    }
}
