//! The online distributed Stochastic-Exploration algorithm (paper §IV).
//!
//! # How the paper's Algorithm 1 maps onto this module
//!
//! * **Solution family.** For every feasible cardinality
//!   `n ∈ [N_min, min(|I|−1, n_cap)]` (where `n_cap` is the largest `n`
//!   whose smallest-`n` shards fit in `Ĉ`), a [`chain::Chain`] holds one
//!   candidate solution `f_n` with exactly `n` admitted shards,
//!   initialized per Algorithm 2 ([`chain::Chain::init`]).
//! * **Timers.** Following Algorithm 3, a chain draws pairs `(ĩ, ï)` —
//!   one admitted shard to drop, one excluded shard to admit — and arms an
//!   exponential timer with mean `exp(τ − ½β(U_f' − U_f)) / (|I_j| − n)`
//!   per pair. Timers are compared in log-space so utility differences in
//!   the thousands cannot overflow.
//! * **State transit & RESET.** The paper's solution threads execute
//!   *concurrently* (§IV-A, Fig. 5): between two RESET broadcasts each
//!   thread's local timer expires roughly once in real time. The
//!   virtual-time engine images that as a *round*: per iteration, every
//!   chain races the timers of `proposal_fanout` sampled pairs and commits
//!   the winner — a sampled jump of the designed CTMC, whose winning
//!   neighbor is distributed ∝ its transition rate `exp(½β·ΔU − τ)` —
//!   then all timers are RESET (Alg. 1 lines 14–20).
//! * **Γ parallel execution threads.** Following §IV-D ("each runs a set of
//!   feasible solutions {f_n}"), the engine hosts Γ independent *replicas*
//!   of the whole solution family; each iteration advances every replica by
//!   one round. Γ therefore trades extra exploration per iteration for
//!   diminishing returns — reproducing the saturation of Fig. 8.
//! * **Convergence & answer.** The run converges when the best utility has
//!   not improved for a configured window; the answer is the best feasible
//!   solution across all chains of all replicas, plus the full selection
//!   `f_{|I_j|}` when it fits in `Ĉ` (Alg. 1 line 25).
//!
//! Dynamic joining/leaving of committees is layered on top in
//! [`crate::dynamics`].

pub mod chain;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod parallel;

pub use chain::SeSampler;
pub use checkpoint::{ChainSnapshot, SeCheckpoint};
pub use config::SeConfig;
pub use engine::{SeEngine, SeOutcome, Trajectory, TrajectoryPoint};
pub use parallel::{ParallelRunner, ResetStats};
