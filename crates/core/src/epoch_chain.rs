//! Multi-epoch scheduling with cross-epoch DDL carry-over (paper Fig. 3).
//!
//! The MVCom objective (paper eq. (2)) sums over all epochs `j ∈ J`, and
//! §III-A specifies how the epochs couple: *"if `C_i` was not permitted in
//! epoch `j`, its two-phase latency will be updated by reducing the
//! previous DDL in epoch `j+1`. Thus, a refused committee will be more
//! likely to be permitted with a new smaller two-phase latency at epoch
//! `j+1`."*
//!
//! [`EpochChain`] implements exactly that bookkeeping: each epoch merges
//! freshly arrived shards with the carried-over refusals (latencies
//! reduced by the previous deadline, clamped at zero), schedules the epoch
//! with the SE engine, and queues this epoch's refusals for the next. The
//! per-epoch [`EpochOutcome`]s accumulate the paper's two performance
//! quantities — admitted throughput and cumulative age.

use serde::{Deserialize, Serialize};

use mvcom_types::{EpochId, Error, Result, ShardInfo, SimTime};

use crate::problem::{DdlPolicy, InstanceBuilder};
use crate::se::{SeConfig, SeEngine};

/// How each epoch's block capacity `Ĉ` is derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EpochCapacity {
    /// `Ĉ = per_committee · |I_j|` (the paper's `1000·|I_j|` scaling).
    PerCommittee(u64),
    /// A fixed absolute capacity per epoch.
    Absolute(u64),
}

impl EpochCapacity {
    fn derive(&self, n_shards: usize) -> u64 {
        match *self {
            EpochCapacity::PerCommittee(per) => per.saturating_mul(n_shards as u64),
            EpochCapacity::Absolute(c) => c,
        }
    }
}

/// Configuration of a multi-epoch scheduling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochChainConfig {
    /// The throughput weight `α`.
    pub alpha: f64,
    /// Capacity rule per epoch.
    pub capacity: EpochCapacity,
    /// `N_min` as a fraction of the epoch's arrived shards.
    pub n_min_fraction: f64,
    /// Deadline semantics.
    pub ddl_policy: DdlPolicy,
    /// SE engine settings (the seed is advanced per epoch).
    pub se: SeConfig,
    /// Refusals older than this many epochs are dropped (their clients are
    /// assumed to re-submit); `0` disables carry-over entirely.
    pub max_carry_epochs: u32,
}

impl EpochChainConfig {
    /// The paper's defaults: `α = 1.5`, `Ĉ = 1000·|I|`, `N_min = 50 %`,
    /// MaxArrival deadline, refusals carried up to 4 epochs.
    pub fn paper(seed: u64) -> EpochChainConfig {
        EpochChainConfig {
            alpha: 1.5,
            capacity: EpochCapacity::PerCommittee(1_000),
            n_min_fraction: 0.5,
            ddl_policy: DdlPolicy::MaxArrival,
            se: SeConfig::paper(seed),
            max_carry_epochs: 4,
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(Error::invalid_config("alpha", "must be positive"));
        }
        if !(0.0..=1.0).contains(&self.n_min_fraction) {
            return Err(Error::invalid_config("n_min_fraction", "must be in [0, 1]"));
        }
        self.se.validate()
    }
}

/// A refused shard waiting to re-enter, with its age bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct CarriedShard {
    shard: ShardInfo,
    /// Epochs this shard has been refused so far.
    refusals: u32,
}

/// What one epoch produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochOutcome {
    /// The epoch index.
    pub epoch: EpochId,
    /// Shards that entered this epoch (fresh + carried).
    pub arrived: usize,
    /// How many of the arrived shards were carried over from refusals.
    pub carried_in: usize,
    /// The epoch deadline `t_j`.
    pub ddl: SimTime,
    /// Admitted shards (the final block's content).
    pub admitted: Vec<ShardInfo>,
    /// Refused shards queued for the next epoch (post carry-over latency
    /// reduction).
    pub carried_out: usize,
    /// The converged utility of this epoch's schedule.
    pub utility: f64,
    /// Total admitted transactions.
    pub admitted_txs: u64,
    /// Total cumulative age of the admitted transactions.
    pub cumulative_age: f64,
}

/// The multi-epoch scheduler.
///
/// # Example
///
/// ```
/// use mvcom_core::epoch_chain::{EpochChain, EpochChainConfig};
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// # fn main() -> Result<(), mvcom_types::Error> {
/// let mut chain = EpochChain::new(EpochChainConfig::paper(1))?;
/// let epoch0: Vec<ShardInfo> = (0..12).map(|i| ShardInfo::new(
///     CommitteeId(i), 1_000,
///     TwoPhaseLatency::from_total(SimTime::from_secs(600.0 + 40.0 * f64::from(i))),
/// )).collect();
/// let outcome = chain.run_epoch(epoch0)?;
/// assert!(!outcome.admitted.is_empty());
/// // Refused committees re-enter the next epoch with reduced latency.
/// assert_eq!(chain.pending(), outcome.carried_out);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EpochChain {
    config: EpochChainConfig,
    pending: Vec<CarriedShard>,
    epoch: EpochId,
}

impl EpochChain {
    /// Creates a chain scheduler.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation.
    pub fn new(config: EpochChainConfig) -> Result<EpochChain> {
        config.validate()?;
        Ok(EpochChain {
            config,
            pending: Vec::new(),
            epoch: EpochId::GENESIS,
        })
    }

    /// Number of refused shards currently waiting to re-enter.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The next epoch to be scheduled.
    pub fn current_epoch(&self) -> EpochId {
        self.epoch
    }

    /// Schedules one epoch: merges `fresh` shards with the carried-over
    /// refusals, runs SE, and queues this epoch's refusals (with their
    /// latencies reduced by the epoch deadline, per Fig. 3).
    ///
    /// Committees appearing both fresh and carried keep the *fresh* entry
    /// (they re-formed this epoch; the stale refusal is dropped).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidInstance`] / [`Error::Infeasible`] from instance
    /// construction when the merged epoch violates the constraints.
    pub fn run_epoch(&mut self, fresh: Vec<ShardInfo>) -> Result<EpochOutcome> {
        let mut shards = fresh;
        let fresh_ids: std::collections::BTreeSet<_> =
            shards.iter().map(|s| s.committee()).collect();
        let carried: Vec<CarriedShard> = self
            .pending
            .drain(..)
            .filter(|c| !fresh_ids.contains(&c.shard.committee()))
            .collect();
        let carried_in = carried.len();
        shards.extend(carried.iter().map(|c| c.shard));

        let n = shards.len();
        let n_min = ((n as f64) * self.config.n_min_fraction).round() as usize;
        let instance = InstanceBuilder::new()
            .alpha(self.config.alpha)
            .capacity(self.config.capacity.derive(n))
            .n_min(n_min.min(n))
            .ddl_policy(self.config.ddl_policy)
            .shards(shards)
            .build()?;

        let se_config = SeConfig {
            seed: self.config.se.seed ^ self.epoch.value().wrapping_mul(0x9E37_79B9),
            ..self.config.se
        };
        let outcome = SeEngine::new(&instance, se_config)?.run();

        let ddl = instance.ddl();
        let mut admitted = Vec::with_capacity(outcome.best_solution.selected_count());
        let mut refused = Vec::new();
        for (i, shard) in instance.shards().iter().enumerate() {
            if outcome.best_solution.contains(i) {
                admitted.push(*shard);
            } else {
                refused.push(*shard);
            }
        }
        // Fig. 3 carry-over: refused latency is reduced by this epoch's
        // DDL; committees refused too many times are dropped.
        let refusal_count = |committee| {
            carried
                .iter()
                .find(|c| c.shard.committee() == committee)
                .map(|c| c.refusals)
                .unwrap_or(0)
        };
        self.pending = refused
            .into_iter()
            .map(|s| CarriedShard {
                refusals: refusal_count(s.committee()) + 1,
                shard: s.carried_over(ddl),
            })
            .filter(|c| c.refusals <= self.config.max_carry_epochs)
            .collect();

        let report = EpochOutcome {
            epoch: self.epoch,
            arrived: n,
            carried_in,
            ddl,
            admitted_txs: admitted.iter().map(|s| s.tx_count()).sum(),
            cumulative_age: instance.cumulative_age(&outcome.best_solution),
            carried_out: self.pending.len(),
            utility: outcome.best_utility,
            admitted,
        };
        self.epoch = self.epoch.next();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcom_types::{CommitteeId, TwoPhaseLatency};

    fn shard(id: u32, txs: u64, latency: f64) -> ShardInfo {
        ShardInfo::new(
            CommitteeId(id),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(latency)),
        )
    }

    fn epoch(base_id: u32, n: usize) -> Vec<ShardInfo> {
        (0..n)
            .map(|i| {
                shard(
                    base_id + i as u32,
                    800 + (i as u64 * 53) % 600,
                    300.0 + ((i as f64) * 173.0) % 900.0,
                )
            })
            .collect()
    }

    fn config(seed: u64) -> EpochChainConfig {
        EpochChainConfig {
            se: SeConfig::fast_test(seed),
            ..EpochChainConfig::paper(seed)
        }
    }

    #[test]
    fn single_epoch_partitions_shards() {
        let mut chain = EpochChain::new(config(1)).unwrap();
        let outcome = chain.run_epoch(epoch(0, 16)).unwrap();
        assert_eq!(outcome.epoch, EpochId::GENESIS);
        assert_eq!(outcome.arrived, 16);
        assert_eq!(outcome.carried_in, 0);
        assert_eq!(outcome.admitted.len() + outcome.carried_out, 16);
        assert!(outcome.admitted.len() >= 8); // N_min = 50%
        assert_eq!(chain.current_epoch(), EpochId(1));
    }

    #[test]
    fn refusals_re_enter_with_reduced_latency() {
        let mut chain = EpochChain::new(config(2)).unwrap();
        let first = chain.run_epoch(epoch(0, 16)).unwrap();
        if first.carried_out == 0 {
            return; // everything admitted; nothing to check
        }
        let pending_before: Vec<ShardInfo> = chain.pending.iter().map(|c| c.shard).collect();
        // Carried latencies are the refused originals minus the DDL.
        for p in &pending_before {
            assert!(p.two_phase_latency() <= first.ddl);
        }
        let second = chain.run_epoch(epoch(100, 12)).unwrap();
        assert_eq!(second.carried_in, pending_before.len());
        assert_eq!(second.arrived, 12 + pending_before.len());
    }

    #[test]
    fn fresh_submission_supersedes_stale_refusal() {
        let mut chain = EpochChain::new(config(3)).unwrap();
        chain.run_epoch(epoch(0, 16)).unwrap();
        let refused_ids: Vec<CommitteeId> =
            chain.pending.iter().map(|c| c.shard.committee()).collect();
        if refused_ids.is_empty() {
            return;
        }
        // The refused committee re-submits fresh with a new shard.
        let mut fresh = epoch(200, 10);
        fresh.push(shard(refused_ids[0].0, 999, 111.0));
        let outcome = chain.run_epoch(fresh).unwrap();
        // No duplicate committee entered the epoch.
        assert_eq!(outcome.arrived, 11 + refused_ids.len() - 1);
    }

    #[test]
    fn old_refusals_are_eventually_dropped() {
        let mut cfg = config(4);
        cfg.max_carry_epochs = 1;
        let mut chain = EpochChain::new(cfg).unwrap();
        chain.run_epoch(epoch(0, 16)).unwrap();
        // After two more epochs, nothing from epoch 0 may remain pending.
        chain.run_epoch(epoch(100, 12)).unwrap();
        chain.run_epoch(epoch(200, 12)).unwrap();
        for c in &chain.pending {
            assert!(c.refusals <= 1);
            assert!(c.shard.committee().0 >= 100);
        }
    }

    #[test]
    fn carry_over_makes_refusals_more_attractive() {
        // A shard with near-zero carried latency has age ≈ DDL... i.e. the
        // largest age; per eq. (1) the *later* arrivals are favoured, so a
        // carried shard competes on its (unchanged) size. Verify at least
        // the accounting: the carried shard's marginal utility changed by
        // exactly the latency reduction.
        let mut chain = EpochChain::new(config(5)).unwrap();
        let outcome = chain.run_epoch(epoch(0, 16)).unwrap();
        if chain.pending.is_empty() {
            return;
        }
        let carried = chain.pending[0].shard;
        let original = epoch(0, 16)
            .into_iter()
            .find(|s| s.committee() == carried.committee())
            .unwrap();
        let reduction = original.two_phase_latency() - carried.two_phase_latency();
        assert!(
            (reduction.as_secs()
                - outcome
                    .ddl
                    .as_secs()
                    .min(original.two_phase_latency().as_secs()))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn multi_epoch_run_is_stable() {
        let mut chain = EpochChain::new(config(6)).unwrap();
        let mut total_txs = 0u64;
        for e in 0..5u32 {
            let outcome = chain.run_epoch(epoch(e * 1_000, 14)).unwrap();
            assert!(outcome.admitted_txs > 0);
            assert!(outcome.cumulative_age >= 0.0);
            total_txs += outcome.admitted_txs;
        }
        assert!(total_txs > 0);
        assert_eq!(chain.current_epoch(), EpochId(5));
    }

    #[test]
    fn config_validation() {
        let mut c = EpochChainConfig::paper(0);
        c.alpha = 0.0;
        assert!(c.validate().is_err());
        let mut c = EpochChainConfig::paper(0);
        c.n_min_fraction = 1.5;
        assert!(c.validate().is_err());
        assert!(EpochChainConfig::paper(0).validate().is_ok());
    }
}
