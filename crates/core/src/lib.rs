//! The MVCom problem and the online distributed Stochastic-Exploration
//! scheduler — the primary contribution of *"MVCom: Scheduling Most Valuable
//! Committees for the Large-Scale Sharded Blockchain"* (ICDCS 2021).
//!
//! # The problem
//!
//! At each epoch of a sharded blockchain, member committees submit shards to
//! a final committee. Shard `i` carries `s_i` transactions and arrives with
//! two-phase latency `l_i`; the epoch deadline is `t = max_i l_i`. The final
//! committee must choose a subset `x ∈ {0,1}^|I|` maximizing
//!
//! ```text
//! U(x) = Σ_i x_i · (α·s_i − (t − l_i))
//! s.t.  Σ_i x_i ≥ N_min,    Σ_i x_i·s_i ≤ Ĉ
//! ```
//!
//! — a knapsack-hard tradeoff between throughput (`α·s_i`) and the
//! cumulative age `Π_i = t − l_i` of the transactions kept waiting
//! ([`problem`]). NP-hardness is witnessed by the reduction implemented in
//! [`problem::knapsack_reduction`].
//!
//! # The algorithm
//!
//! [`se`] implements the paper's Algorithm 1: a family of candidate
//! solutions (one Markov chain per admitted-shard cardinality `n`), each
//! repeatedly proposing a random swap of one admitted shard for one excluded
//! shard and arming an exponential timer with mean
//! `exp(τ − ½β(U_f' − U_f)) / (|I| − n)`. The first timer to expire commits
//! its swap and broadcasts RESET; the race between timers realizes a
//! time-reversible Markov chain whose stationary distribution is
//! `p*_f ∝ exp(β·U_f)` — so the process concentrates on near-optimal
//! solutions. Committee joins, leaves and failures are handled online
//! ([`dynamics`]).
//!
//! # The theory
//!
//! [`theory`] turns the paper's analytical results into executable
//! functions: the log-sum-exp approximation gap `(1/β)·log|F|`, the
//! Theorem 1 mixing-time bounds, the Lemma 4 total-variation bound, the
//! Theorem 2 perturbation bound, and an exact stationary-distribution
//! calculator for small instances used to validate the sampler empirically.
//!
//! # Quick start
//!
//! ```
//! use mvcom_core::problem::InstanceBuilder;
//! use mvcom_core::se::{SeConfig, SeEngine};
//! use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
//!
//! # fn main() -> Result<(), mvcom_types::Error> {
//! let shards: Vec<ShardInfo> = (0..20)
//!     .map(|i| {
//!         ShardInfo::new(
//!             CommitteeId(i),
//!             1_000 + 50 * u64::from(i),
//!             TwoPhaseLatency::from_total(SimTime::from_secs(600.0 + 10.0 * f64::from(i))),
//!         )
//!     })
//!     .collect();
//! let instance = InstanceBuilder::new()
//!     .alpha(1.5)
//!     .capacity(15_000)
//!     .n_min(5)
//!     .shards(shards)
//!     .build()?;
//! let outcome = SeEngine::new(&instance, SeConfig::fast_test(1))?.run();
//! assert!(outcome.best_solution.selected_count() >= 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Unit tests may unwrap freely; library code goes through the P1 rule of
// `mvcom-lint` and the workspace `clippy::unwrap_used` deny set instead.
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod defense;
pub mod dynamics;
pub mod epoch_chain;
pub mod eval;
pub mod problem;
pub mod se;
pub mod solution;
pub mod theory;

pub use defense::{
    DefenseCheckpoint, DefenseConfig, DefenseEngine, DefenseObservation, ScreenedReport,
};
pub use eval::EvalCache;
pub use problem::{DdlPolicy, Instance, InstanceBuilder};
pub use se::{SeConfig, SeEngine, SeOutcome};
pub use solution::Solution;
