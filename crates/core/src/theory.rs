//! Executable forms of the paper's analytical results.
//!
//! * [`approximation_loss`] — the log-sum-exp optimality gap
//!   `(1/β)·log|F|` of Remark 1.
//! * [`mixing_time_lower`] / [`mixing_time_upper`] — the Theorem 1 bounds
//!   on `t_mix(ε)` (plus `ln_`-variants that cannot overflow).
//! * [`failure_tv_bound`] — Lemma 4's `d_TV(q*, q̃) ≤ ½`, checked exactly
//!   on enumerable instances by [`trimmed_tv_distance`].
//! * [`perturbation_bound`] — Theorem 2's `‖q*uᵀ − q̃uᵀ‖ ≤ max_g U_g`.
//! * [`CtmcSimulator`] — an *exact* continuous-time realization of the
//!   designed Markov chain over one cardinality slice of the solution
//!   space, used to verify empirically that the time-averaged occupancy
//!   converges to the stationary distribution `p*_f ∝ exp(β·U_f)` of
//!   eq. (6).

use std::collections::BTreeMap;

use rand::Rng;

use mvcom_types::{Error, Result};

use crate::problem::Instance;
use crate::solution::Solution;

/// `log₂|F|` for an epoch with `n` shards: the solution space is all
/// subsets, `|F| = 2^n` (paper §IV-F).
pub fn log2_solution_space(n: usize) -> f64 {
    n as f64
}

/// Remark 1: solving the log-sum-exp approximation MVCom(β) instead of
/// MVCom loses at most `(1/β)·log|F| = n·ln2/β` utility.
///
/// # Panics
///
/// Panics if `beta` is not positive.
pub fn approximation_loss(beta: f64, n: usize) -> f64 {
    assert!(beta > 0.0, "beta must be positive");
    (n as f64) * std::f64::consts::LN_2 / beta
}

/// Theorem 1 lower bound on the mixing time:
///
/// ```text
/// t_mix(ε) ≥ exp[τ − ½β(U_max − U_min)] / (|I|² − |I|) · ln(1/(2ε))
/// ```
pub fn mixing_time_lower(
    epsilon: f64,
    n: usize,
    u_max: f64,
    u_min: f64,
    beta: f64,
    tau: f64,
) -> f64 {
    ln_mixing_time_lower(epsilon, n, u_max, u_min, beta, tau).exp()
}

/// `ln` of [`mixing_time_lower`] — usable when the bound itself overflows.
pub fn ln_mixing_time_lower(
    epsilon: f64,
    n: usize,
    u_max: f64,
    u_min: f64,
    beta: f64,
    tau: f64,
) -> f64 {
    assert!(epsilon > 0.0 && epsilon < 0.5, "need 0 < ε < ½");
    assert!(n >= 2, "need at least two shards");
    let spread = u_max - u_min;
    // ε < ½ guarantees ln(1/(2ε)) > 0, so its own ln below is finite.
    tau - 0.5 * beta * spread - ((n * n - n) as f64).ln() + (1.0 / (2.0 * epsilon)).ln().ln()
}

/// Theorem 1 upper bound on the mixing time:
///
/// ```text
/// t_mix(ε) ≤ 4|I|(|I|² − |I|) · exp[(3/2)β(U_max − U_min) + τ]
///            · [ln(1/(2ε)) + ½|I|·ln2 + ½β(U_max − U_min)]
/// ```
pub fn mixing_time_upper(
    epsilon: f64,
    n: usize,
    u_max: f64,
    u_min: f64,
    beta: f64,
    tau: f64,
) -> f64 {
    ln_mixing_time_upper(epsilon, n, u_max, u_min, beta, tau).exp()
}

/// `ln` of [`mixing_time_upper`]. With β·(U_max − U_min) routinely in the
/// thousands, the plain bound exceeds `f64::MAX`; the log form stays exact.
pub fn ln_mixing_time_upper(
    epsilon: f64,
    n: usize,
    u_max: f64,
    u_min: f64,
    beta: f64,
    tau: f64,
) -> f64 {
    assert!(epsilon > 0.0 && epsilon < 0.5, "need 0 < ε < ½");
    assert!(n >= 2, "need at least two shards");
    let spread = u_max - u_min;
    let poly = (4 * n * (n * n - n)) as f64;
    let bracket = (1.0 / (2.0 * epsilon)).ln()
        + 0.5 * (n as f64) * std::f64::consts::LN_2
        + 0.5 * beta * spread;
    poly.ln() + 1.5 * beta * spread + tau + bracket.ln()
}

/// Lemma 4: when one committee fails, the total-variation distance between
/// the trimmed stationary distribution `q*` and the instantaneous
/// distribution `q̃` is at most ½.
pub const fn failure_tv_bound() -> f64 {
    0.5
}

/// Theorem 2: the utility perturbation caused by a single committee
/// failure is bounded by the utility of the best solution in the trimmed
/// space, `max_{g∈G} U_g`.
pub fn perturbation_bound(best_trimmed_utility: f64) -> f64 {
    best_trimmed_utility
}

/// Enumerates every capacity-feasible solution with exactly `cardinality`
/// admitted shards — one slice of the Markov chain's state space.
///
/// # Errors
///
/// [`Error::InvalidInstance`] when the instance has more than 26 shards
/// (the enumeration would exceed 2²⁶ states).
pub fn enumerate_states(instance: &Instance, cardinality: usize) -> Result<Vec<Solution>> {
    let n = instance.len();
    if n > 26 {
        return Err(Error::invalid_instance(format!(
            "exhaustive enumeration capped at 26 shards, got {n}"
        )));
    }
    let mut states = Vec::new();
    for mask in 0u64..(1 << n) {
        if mask.count_ones() as usize != cardinality {
            continue;
        }
        let sol = Solution::from_indices(n, (0..n).filter(|&i| mask >> i & 1 == 1), instance);
        if instance.within_capacity(&sol) {
            states.push(sol);
        }
    }
    Ok(states)
}

/// The exact stationary distribution of eq. (6) over the given states:
/// `p*_f = exp(β·U_f) / Σ_{f'} exp(β·U_{f'})`, evaluated with the
/// log-sum-exp trick so large `β·U` cannot overflow.
pub fn stationary_distribution(instance: &Instance, beta: f64, states: &[Solution]) -> Vec<f64> {
    assert!(!states.is_empty(), "need at least one state");
    let log_weights: Vec<f64> = states.iter().map(|s| beta * instance.utility(s)).collect();
    let max = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let unnorm: Vec<f64> = log_weights.iter().map(|&w| (w - max).exp()).collect();
    let z: f64 = unnorm.iter().sum();
    unnorm.into_iter().map(|w| w / z).collect()
}

/// Total-variation distance `½·Σ|p_i − q_i|` between two distributions
/// over the same support.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions over different supports");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Computes the *exact* Lemma 4 quantity for an enumerable instance: the
/// TV distance between the trimmed-space stationary distribution `q*` and
/// the instantaneous distribution `q̃` (the original distribution restricted
/// to surviving states) at the moment shard `failed_idx` fails.
///
/// Lemma 4's `≤ ½` bound is **asymptotic**: its proof models the utilities
/// as i.i.d. and invokes the law of large numbers, under which
/// `d_TV → |F∖G|/|F| = ½`. The exact quantity computed here approaches ½
/// as `β → 0` (all states near-equiprobable) but can exceed ½ for sharply
/// concentrated distributions whose probability mass sits on states that
/// contain the failed shard — a boundary-condition effect the tests pin
/// down explicitly.
///
/// # Errors
///
/// Propagates the enumeration cap.
pub fn trimmed_tv_distance(
    instance: &Instance,
    beta: f64,
    cardinality: usize,
    failed_idx: usize,
) -> Result<f64> {
    let states = enumerate_states(instance, cardinality)?;
    let p_star = stationary_distribution(instance, beta, &states);
    // Survivors: states not containing the failed shard.
    let survivors: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.contains(failed_idx))
        .map(|(i, _)| i)
        .collect();
    if survivors.is_empty() {
        return Err(Error::invalid_instance(
            "every state contains the failed shard; trimmed space is empty",
        ));
    }
    // q̃: the original stationary distribution restricted to survivors —
    // the paper's eq. (16) (survivor mass not renormalized over G only;
    // the residual mass sat on removed states).
    let survivor_mass: f64 = survivors.iter().map(|&i| p_star[i]).sum();
    let q_tilde: Vec<f64> = survivors.iter().map(|&i| p_star[i]).collect();
    // q*: the trimmed stationary distribution, eq. (15).
    let trimmed_states: Vec<Solution> = survivors.iter().map(|&i| states[i].clone()).collect();
    let q_star = stationary_distribution(instance, beta, &trimmed_states);
    // d_TV treats q̃ as a sub-distribution; the deficit is the mass the
    // failed states held, matching the paper's derivation.
    let core: f64 = q_star
        .iter()
        .zip(&q_tilde)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>();
    Ok(0.5 * (core + (1.0 - survivor_mass)))
}

/// Builds the exact transition-rate matrix `Q` of the designed Markov
/// chain over the given states: for adjacent states (one admitted/excluded
/// pair swapped), `q_{f,f'} = exp(½β(U_{f'} − U_f) − τ)` (paper eq. (10));
/// diagonals make rows sum to zero. Rates use a utility shift so `exp`
/// stays finite for moderate `β·ΔU`.
///
/// # Panics
///
/// Panics if `states` is empty.
pub fn transition_rate_matrix(
    instance: &Instance,
    beta: f64,
    tau: f64,
    states: &[Solution],
) -> Vec<Vec<f64>> {
    assert!(!states.is_empty(), "need at least one state");
    let n = states.len();
    let utilities: Vec<f64> = states.iter().map(|s| instance.utility(s)).collect();
    let mut q = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j || states[i].distance(&states[j]) != 2 {
                continue;
            }
            q[i][j] = (0.5 * beta * (utilities[j] - utilities[i]) - tau).exp();
        }
        let row_sum: f64 = q[i].iter().sum();
        q[i][i] = -row_sum;
    }
    q
}

/// Estimates the spectral gap `λ₂` of the chain (the smallest non-zero
/// eigenvalue of `−Q`) via deflated power iteration on the
/// `π`-symmetrized generator. The relaxation time is `1/λ₂`, and the
/// standard sandwich `(t_rel − 1)·ln(1/2ε) ≤ t_mix ≤ t_rel·ln(1/(ε·π_min))`
/// connects it to the Theorem 1 bounds (validated in the tests).
///
/// # Panics
///
/// Panics if `states` has fewer than two elements.
pub fn spectral_gap(instance: &Instance, beta: f64, tau: f64, states: &[Solution]) -> f64 {
    assert!(states.len() >= 2, "spectral gap needs at least two states");
    let n = states.len();
    let q = transition_rate_matrix(instance, beta, tau, states);
    let pi = stationary_distribution(instance, beta, states);
    // Symmetrize: S = D^{1/2} Q D^{-1/2}, reversibility makes S symmetric
    // with the same (real, non-positive) spectrum as Q.
    let mut s = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            s[i][j] = (pi[i] / pi[j].max(1e-300)).sqrt() * q[i][j];
        }
    }
    // Shift to make the dominant eigenvalue the one we can power-iterate:
    // B = S + c·I with c ≥ max |S_ii| has top eigenvalue c (eigenvector
    // √π); the second eigenvalue is c − λ₂.
    let c = s
        .iter()
        .enumerate()
        .map(|(i, row)| row[i].abs())
        .fold(0.0f64, f64::max)
        + 1.0;
    let sqrt_pi: Vec<f64> = pi.iter().map(|p| p.sqrt()).collect();
    let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let mut v: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 17) as f64 - 8.0).collect();
    for _ in 0..2_000 {
        // Deflate the known top eigenvector.
        let dot: f64 = v.iter().zip(&sqrt_pi).map(|(a, b)| a * b).sum();
        let pi_norm2: f64 = sqrt_pi.iter().map(|x| x * x).sum();
        for (vi, pi_i) in v.iter_mut().zip(&sqrt_pi) {
            *vi -= dot / pi_norm2 * pi_i;
        }
        // Multiply by B = S + c·I.
        let mut next = vec![0.0; n];
        for (i, next_i) in next.iter_mut().enumerate() {
            *next_i = c * v[i] + s[i].iter().zip(&v).map(|(a, b)| a * b).sum::<f64>();
        }
        let m = norm(&next);
        if m < 1e-300 {
            return 0.0; // degenerate: the slice is a single communicating pair
        }
        for x in &mut next {
            *x /= m;
        }
        v = next;
    }
    // Rayleigh quotient for the deflated dominant eigenvalue of B.
    let mut bv = vec![0.0; n];
    for (i, bv_i) in bv.iter_mut().enumerate() {
        *bv_i = c * v[i] + s[i].iter().zip(&v).map(|(a, b)| a * b).sum::<f64>();
    }
    let rayleigh: f64 =
        v.iter().zip(&bv).map(|(a, b)| a * b).sum::<f64>() / v.iter().map(|x| x * x).sum::<f64>();
    (c - rayleigh).max(0.0)
}

/// An exact continuous-time realization of the designed Markov chain over
/// one cardinality slice: from state `f`, every neighbor `f'` (one
/// admitted/excluded pair swapped, capacity-feasible) carries rate
/// `q_{f,f'} = exp(½β(U_{f'} − U_f) − τ)` (paper eq. (10)); the jump
/// target is drawn ∝ rate and the holding time is `Exp(Σ rates)`.
///
/// Time-averaged occupancy converges to eq. (6)'s `p*` — the property the
/// SE implementation approximates with its timer race.
#[derive(Debug)]
pub struct CtmcSimulator<'a> {
    instance: &'a Instance,
    beta: f64,
    tau: f64,
    state: Solution,
}

impl<'a> CtmcSimulator<'a> {
    /// Starts the chain from `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` violates the capacity constraint.
    pub fn new(
        instance: &'a Instance,
        beta: f64,
        tau: f64,
        initial: Solution,
    ) -> CtmcSimulator<'a> {
        assert!(
            instance.within_capacity(&initial),
            "initial state violates capacity"
        );
        CtmcSimulator {
            instance,
            beta,
            tau,
            state: initial,
        }
    }

    /// The current state.
    pub fn state(&self) -> &Solution {
        &self.state
    }

    /// Runs `jumps` transitions, returning time-weighted state occupancy
    /// keyed by the selected-index set.
    pub fn occupancy<R: Rng + ?Sized>(
        &mut self,
        jumps: usize,
        rng: &mut R,
    ) -> BTreeMap<Vec<usize>, f64> {
        let mut occupancy: BTreeMap<Vec<usize>, f64> = BTreeMap::new();
        for _ in 0..jumps {
            let neighbors = self.feasible_neighbors();
            if neighbors.is_empty() {
                break;
            }
            // Rates in a numerically safe form: shift by the max exponent.
            let exponents: Vec<f64> = neighbors
                .iter()
                .map(|&(out, inc)| {
                    0.5 * self.beta * (self.instance.swap_delta(&self.state, out, inc)) - self.tau
                })
                .collect();
            let max_e = exponents.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let weights: Vec<f64> = exponents.iter().map(|&e| (e - max_e).exp()).collect();
            let total_w: f64 = weights.iter().sum();
            // Holding time Exp(Σ rates); Σ rates = e^{max_e}·Σ weights.
            // Work with the log to stay finite, clamping pathological cases.
            let ln_total_rate = max_e + total_w.ln();
            let exp1: f64 = -rng.gen_range(f64::MIN_POSITIVE..1.0_f64).ln();
            let ln_hold = exp1.ln() - ln_total_rate;
            let hold = ln_hold.exp().clamp(1e-300, 1e300);
            let key: Vec<usize> = self.state.iter_selected().collect();
            *occupancy.entry(key).or_insert(0.0) += hold;

            // Jump ∝ rate.
            let mut pick = rng.gen_range(0.0..total_w);
            let mut chosen = neighbors.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                if pick < w {
                    chosen = i;
                    break;
                }
                pick -= w;
            }
            let (out, inc) = neighbors[chosen];
            self.state.swap(out, inc, self.instance);
        }
        occupancy
    }

    fn feasible_neighbors(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in self.state.iter_selected() {
            for j in self.state.iter_unselected() {
                let new_total = self.state.tx_total() - self.instance.shards()[i].tx_count()
                    + self.instance.shards()[j].tx_count();
                if new_total <= self.instance.capacity() {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceBuilder;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn shard(id: u32, txs: u64, latency: f64) -> ShardInfo {
        ShardInfo::new(
            CommitteeId(id),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(latency)),
        )
    }

    fn small_instance() -> Instance {
        InstanceBuilder::new()
            .alpha(1.0)
            .capacity(10_000)
            .n_min(1)
            .shards(vec![
                shard(0, 100, 950.0),
                shard(1, 140, 800.0),
                shard(2, 90, 990.0),
                shard(3, 120, 700.0),
                shard(4, 110, 1000.0),
                shard(5, 95, 850.0),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn approximation_loss_shrinks_with_beta() {
        let a = approximation_loss(1.0, 50);
        let b = approximation_loss(10.0, 50);
        assert!((a - 50.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert!((b - a / 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn approximation_loss_rejects_bad_beta() {
        approximation_loss(0.0, 10);
    }

    #[test]
    fn mixing_bounds_are_ordered_and_monotone() {
        let (n, umax, umin, beta, tau) = (10usize, 30.0, 0.0, 0.1, 0.0);
        let lower = mixing_time_lower(0.01, n, umax, umin, beta, tau);
        let upper = mixing_time_upper(0.01, n, umax, umin, beta, tau);
        assert!(lower > 0.0);
        assert!(upper > lower, "upper {upper} <= lower {lower}");
        // Tighter ε demands more mixing time on both sides.
        assert!(mixing_time_upper(0.001, n, umax, umin, beta, tau) > upper);
        assert!(mixing_time_lower(0.001, n, umax, umin, beta, tau) > lower);
        // Larger β slows the upper bound (Remark 2).
        assert!(mixing_time_upper(0.01, n, umax, umin, 1.0, tau) > upper);
    }

    #[test]
    fn ln_bounds_match_plain_bounds_when_finite() {
        let (n, umax, umin, beta, tau) = (8usize, 12.0, 2.0, 0.5, 0.0);
        let plain = mixing_time_upper(0.05, n, umax, umin, beta, tau);
        let ln = ln_mixing_time_upper(0.05, n, umax, umin, beta, tau);
        assert!((plain.ln() - ln).abs() < 1e-9);
        let plain_l = mixing_time_lower(0.05, n, umax, umin, beta, tau);
        let ln_l = ln_mixing_time_lower(0.05, n, umax, umin, beta, tau);
        assert!((plain_l.ln() - ln_l).abs() < 1e-9);
    }

    #[test]
    fn ln_bound_survives_paper_scale_utilities() {
        // β(Umax−Umin) ~ 2·10⁶ would overflow exp(); the ln form must not.
        let ln = ln_mixing_time_upper(0.01, 500, 1.0e6, 0.0, 2.0, 0.0);
        assert!(ln.is_finite());
        assert!(mixing_time_upper(0.01, 500, 1.0e6, 0.0, 2.0, 0.0).is_infinite());
    }

    #[test]
    fn enumerate_states_counts_subsets() {
        let inst = small_instance();
        // Capacity is loose: all C(6,2)=15 two-subsets are feasible.
        let states = enumerate_states(&inst, 2).unwrap();
        assert_eq!(states.len(), 15);
        for s in &states {
            assert_eq!(s.selected_count(), 2);
        }
    }

    #[test]
    fn enumerate_states_respects_capacity() {
        let inst = InstanceBuilder::new()
            .capacity(220)
            .shards(vec![
                shard(0, 100, 1.0),
                shard(1, 110, 2.0),
                shard(2, 130, 3.0),
            ])
            .build()
            .unwrap();
        // Pairs: {0,1}=210 ok, {0,2}=230 no, {1,2}=240 no.
        let states = enumerate_states(&inst, 2).unwrap();
        assert_eq!(states.len(), 1);
    }

    #[test]
    fn enumeration_cap_enforced() {
        let inst = InstanceBuilder::new()
            .capacity(u64::MAX / 2)
            .shards((0..30).map(|i| shard(i, 1, 1.0 + f64::from(i))).collect())
            .build()
            .unwrap();
        assert!(enumerate_states(&inst, 2).is_err());
    }

    #[test]
    fn stationary_distribution_sums_to_one_and_ranks_by_utility() {
        let inst = small_instance();
        let states = enumerate_states(&inst, 3).unwrap();
        let p = stationary_distribution(&inst, 0.05, &states);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Higher utility ⇒ higher probability.
        let best = mvcom_types::max_by_f64(states.iter().enumerate(), |(_, s)| inst.utility(s))
            .unwrap()
            .0;
        assert!(p
            .iter()
            .enumerate()
            .all(|(i, &pi)| pi <= p[best] + 1e-12 || i == best));
    }

    #[test]
    fn tv_distance_basics() {
        assert_eq!(tv_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((tv_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lemma4_bound_holds_in_the_lln_regime() {
        // The Lemma 4 proof works in the law-of-large-numbers regime where
        // exp(β·U_f) is flat across states; β → 0 realizes it exactly, and
        // d_TV → |F∖G|/|F|. Over the cardinality-3 slice of 6 shards the
        // failed shard sits in C(5,2)/C(6,3) = ½ of the states.
        let inst = small_instance();
        for failed in 0..inst.len() {
            let d = trimmed_tv_distance(&inst, 1e-9, 3, failed).unwrap();
            assert!(
                (d - failure_tv_bound()).abs() < 1e-6,
                "TV distance {d} should approach ½ for failed shard {failed}"
            );
        }
    }

    #[test]
    fn lemma4_bound_can_break_under_concentration() {
        // Documented boundary condition: with a concentrated distribution
        // (large β) whose mass sits on states containing the failed shard,
        // the exact perturbation exceeds the asymptotic ½ bound. Shard 4
        // defines the deadline (zero age) and has the highest marginal
        // utility, so the β=0.05 stationary mass concentrates on states
        // containing it.
        let inst = small_instance();
        let d = trimmed_tv_distance(&inst, 0.05, 3, 4).unwrap();
        assert!(
            d > failure_tv_bound(),
            "expected concentration to exceed the asymptotic bound, got {d}"
        );
        assert!(d <= 1.0 + 1e-9);
    }

    #[test]
    fn transition_matrix_is_a_generator_and_satisfies_detailed_balance() {
        let inst = small_instance();
        let beta = 0.01;
        let states = enumerate_states(&inst, 3).unwrap();
        let q = transition_rate_matrix(&inst, beta, 0.0, &states);
        let pi = stationary_distribution(&inst, beta, &states);
        for (i, row) in q.iter().enumerate() {
            // Rows sum to zero; off-diagonals non-negative.
            assert!(row.iter().sum::<f64>().abs() < 1e-9);
            for (j, &rate) in row.iter().enumerate() {
                if i != j {
                    assert!(rate >= 0.0);
                    // Lemma 3: π_i q_ij == π_j q_ji.
                    assert!(
                        (pi[i] * rate - pi[j] * q[j][i]).abs() < 1e-12,
                        "detailed balance violated at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn spectral_gap_is_positive_and_beta_slows_mixing() {
        let inst = small_instance();
        let states = enumerate_states(&inst, 3).unwrap();
        let gap_soft = spectral_gap(&inst, 0.001, 0.0, &states);
        let gap_sharp = spectral_gap(&inst, 0.02, 0.0, &states);
        assert!(gap_soft > 0.0);
        assert!(gap_sharp > 0.0);
        // Remark 2: larger β concentrates the chain and slows mixing, so
        // the relaxation time 1/gap grows.
        assert!(
            gap_sharp < gap_soft,
            "gap should shrink with β: {gap_soft} → {gap_sharp}"
        );
    }

    #[test]
    fn theorem_1_bounds_bracket_the_spectral_relaxation_time() {
        // Sandwich: (t_rel − 1)·ln(1/2ε) ≤ t_mix ≤ t_rel·ln(1/(ε·π_min)).
        // Theorem 1's bounds must not contradict the spectral estimate:
        // lower(ε) ≤ t_rel·ln(1/(ε·π_min)) and upper(ε) ≥ (t_rel−1)·ln(1/2ε).
        let inst = small_instance();
        let beta = 0.005;
        let epsilon = 0.05;
        let states = enumerate_states(&inst, 3).unwrap();
        let utilities: Vec<f64> = states.iter().map(|s| inst.utility(s)).collect();
        let u_max = utilities.iter().copied().fold(f64::MIN, f64::max);
        let u_min = utilities.iter().copied().fold(f64::MAX, f64::min);
        let pi = stationary_distribution(&inst, beta, &states);
        let pi_min = pi.iter().copied().fold(f64::MAX, f64::min);
        let t_rel = 1.0 / spectral_gap(&inst, beta, 0.0, &states);
        let spectral_upper = t_rel * (1.0 / (epsilon * pi_min)).ln();
        let spectral_lower = (t_rel - 1.0).max(0.0) * (1.0 / (2.0 * epsilon)).ln();
        let thm_lower = mixing_time_lower(epsilon, inst.len(), u_max, u_min, beta, 0.0);
        let thm_upper = mixing_time_upper(epsilon, inst.len(), u_max, u_min, beta, 0.0);
        assert!(
            thm_lower <= spectral_upper,
            "Theorem 1 lower bound {thm_lower} exceeds the spectral upper bound {spectral_upper}"
        );
        assert!(
            thm_upper >= spectral_lower,
            "Theorem 1 upper bound {thm_upper} below the spectral lower bound {spectral_lower}"
        );
    }

    #[test]
    fn ctmc_occupancy_converges_to_stationary() {
        // Use a small β so the chain mixes quickly, then compare
        // time-weighted occupancy against eq. (6).
        let inst = small_instance();
        let beta = 0.02;
        let states = enumerate_states(&inst, 2).unwrap();
        let p_star = stationary_distribution(&inst, beta, &states);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let initial = states[0].clone();
        let mut sim = CtmcSimulator::new(&inst, beta, 0.0, initial);
        let occupancy = sim.occupancy(60_000, &mut rng);
        let total: f64 = occupancy.values().sum();
        let empirical: Vec<f64> = states
            .iter()
            .map(|s| {
                let key: Vec<usize> = s.iter_selected().collect();
                occupancy.get(&key).copied().unwrap_or(0.0) / total
            })
            .collect();
        let d = tv_distance(&empirical, &p_star);
        assert!(d < 0.08, "empirical TV distance {d} too large");
    }

    #[test]
    fn perturbation_bound_is_identity_on_best_trimmed() {
        assert_eq!(perturbation_bound(123.0), 123.0);
    }
}
