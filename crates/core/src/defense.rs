//! Reputation-weighted defenses against strategic committees.
//!
//! PR 1 hardened the pipeline against *benign* faults; this module is the
//! scheduler-side answer to committees that **lie**. Each epoch a committee
//! reports `(s_i, l_i)` at formation; after the epoch closes, the final
//! committee observes the realized values on the RESET bus (the true
//! latency always, the true transaction count only for admitted shards).
//! [`DefenseEngine`] maintains a per-committee reputation from the ratio
//! `observed / reported` and feeds three defenses back into scheduling:
//!
//! 1. **Robust estimation** — [`DefenseEngine::screen`] replaces each
//!    report with a median-of-window corrected estimate, so a committee
//!    that habitually inflates `s_i` is scheduled against its *historical*
//!    truth, not its claim.
//! 2. **Utility discounting** — every committee carries a trust weight in
//!    `[min_trust, 1]`; flagged committees have their corrected `s_i`
//!    multiplied by it, which discounts their utility `α·s_i` inside the
//!    SE objective so the schedule degrades gracefully instead of
//!    collapsing when the adversarial fraction grows.
//! 3. **Quarantine with backoff** — committees whose windowed residual
//!    stays above the flagging threshold are excluded from candidacy for
//!    exponentially growing spans, and rehabilitated (with depressed
//!    trust) when the span expires.
//!
//! The engine is deliberately RNG-free: its state is a pure fold over the
//! observation sequence, so a [`DefenseCheckpoint`] restore mid-quarantine
//! reproduces the exact flag/quarantine decisions of an uninterrupted run
//! (see `crates/core/tests/defense_checkpoint.rs`).
//!
//! Telemetry: `flagged`, `quarantine` and `rehabilitated` events on the
//! epoch-index clock (see OBSERVABILITY.md).

use std::collections::BTreeMap;

use mvcom_obs::{Obs, Value};
use mvcom_types::{sort_by_f64, CommitteeId, Error, ShardInfo, SimTime, TwoPhaseLatency};
use serde::{Deserialize, Serialize};

/// Tuning knobs for the reputation defenses.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Epochs of history kept per committee for the median estimators.
    pub window: usize,
    /// Per-epoch residual above which an epoch counts as suspicious.
    pub flag_threshold: f64,
    /// Consecutive suspicious epochs before a committee is flagged.
    pub flag_streak: u64,
    /// Quarantine length (epochs) for a first offense.
    pub quarantine_base: u64,
    /// Cap on the exponential quarantine backoff.
    pub quarantine_max: u64,
    /// Multiplicative trust cut applied when a committee is flagged.
    pub flag_discount: f64,
    /// Additive trust recovery per clean (unflagged, unquarantined) epoch.
    pub trust_recovery: f64,
    /// Trust floor; keeps flagged committees schedulable as a last resort.
    pub min_trust: f64,
}

impl DefenseConfig {
    /// Defaults used by the `fig_adv` evaluation: an 8-epoch window, a
    /// 25 % residual tolerance (comfortably above honest estimation
    /// noise, comfortably below the strategy profiles in
    /// `mvcom-dataset::adversary`), two strikes to flag, and 2→32 epoch
    /// quarantine backoff.
    pub fn paper() -> DefenseConfig {
        DefenseConfig {
            window: 8,
            flag_threshold: 0.25,
            flag_streak: 2,
            quarantine_base: 2,
            quarantine_max: 32,
            flag_discount: 0.5,
            trust_recovery: 0.05,
            min_trust: 0.05,
        }
    }

    /// Validates ranges; returns `Error::InvalidConfig` on nonsense.
    pub fn validate(&self) -> Result<(), Error> {
        if self.window == 0 {
            return Err(Error::invalid_config("window", "must be at least 1"));
        }
        if !self.flag_threshold.is_finite() || self.flag_threshold <= 0.0 {
            return Err(Error::invalid_config(
                "flag_threshold",
                "must be positive and finite",
            ));
        }
        if self.flag_streak == 0 {
            return Err(Error::invalid_config("flag_streak", "must be at least 1"));
        }
        if self.quarantine_base == 0 || self.quarantine_max < self.quarantine_base {
            return Err(Error::invalid_config(
                "quarantine_base",
                "need 1 <= quarantine_base <= quarantine_max",
            ));
        }
        if !(0.0..=1.0).contains(&self.flag_discount) || !self.flag_discount.is_finite() {
            return Err(Error::invalid_config("flag_discount", "must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.trust_recovery) || !self.trust_recovery.is_finite() {
            return Err(Error::invalid_config("trust_recovery", "must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.min_trust) || !self.min_trust.is_finite() {
            return Err(Error::invalid_config("min_trust", "must be in [0, 1]"));
        }
        Ok(())
    }
}

/// What the final committee learned about one committee after an epoch.
#[derive(Clone, Copy, Debug)]
pub struct DefenseObservation {
    /// The committee the observation is about.
    pub committee: CommitteeId,
    /// Transaction count claimed at formation.
    pub reported_size: u64,
    /// Two-phase latency claimed at formation (total).
    pub reported_latency: SimTime,
    /// Realized latency on the RESET bus — observable for every
    /// participating committee, admitted or not.
    pub observed_latency: SimTime,
    /// Realized transaction count — only observable for admitted shards
    /// (the final committee never sees an excluded shard's payload).
    pub observed_size: Option<u64>,
}

/// Per-committee reputation state. Serializable so the whole engine can be
/// checkpointed alongside [`crate::se::SeCheckpoint`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CommitteeRecord {
    /// Trust weight in `[min_trust, 1]`; multiplies the corrected size.
    pub trust: f64,
    /// Windowed `observed / reported` size ratios (admitted epochs only).
    pub size_ratios: Vec<f64>,
    /// Windowed `observed / reported` latency ratios.
    pub latency_ratios: Vec<f64>,
    /// Windowed per-epoch residuals (the flagging signal).
    pub residuals: Vec<f64>,
    /// Consecutive suspicious epochs so far.
    pub streak: u64,
    /// Lifetime flag count; drives the quarantine backoff.
    pub offenses: u64,
    /// First epoch at which the committee may be screened again, if
    /// currently quarantined.
    pub quarantined_until: Option<u64>,
}

impl CommitteeRecord {
    fn fresh() -> CommitteeRecord {
        CommitteeRecord {
            trust: 1.0,
            size_ratios: Vec::new(),
            latency_ratios: Vec::new(),
            residuals: Vec::new(),
            streak: 0,
            offenses: 0,
            quarantined_until: None,
        }
    }
}

/// One screened report: the robust estimate the scheduler should use in
/// place of the raw claim.
#[derive(Clone, Copy, Debug)]
pub struct ScreenedReport {
    /// Corrected `(s_i, l_i)` — reported values rescaled by the windowed
    /// median ratios, with the size further discounted by trust.
    pub info: ShardInfo,
    /// `true` while the committee is serving a quarantine span; callers
    /// should exclude it from candidacy (subject to `N_min` feasibility).
    pub quarantined: bool,
    /// Trust weight backing the discount, for diagnostics.
    pub trust: f64,
}

/// Serializable snapshot of a [`DefenseEngine`].
///
/// Records are stored as a sorted `Vec` of pairs (not a map) so the JSON
/// form is stable and round-trips without string-keyed contortions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DefenseCheckpoint {
    /// Epoch counter at capture time (next epoch to be screened).
    pub epoch: u64,
    /// Engine configuration.
    pub config: DefenseConfig,
    /// Per-committee records, ascending by committee id.
    pub records: Vec<(CommitteeId, CommitteeRecord)>,
}

/// The reputation engine: screen reports before scheduling, ingest
/// observations after the epoch settles.
#[derive(Debug)]
pub struct DefenseEngine {
    config: DefenseConfig,
    records: BTreeMap<CommitteeId, CommitteeRecord>,
    epoch: u64,
    obs: Obs,
}

/// Median of a non-empty slice (average of the middle pair for even
/// lengths); `default` when empty.
fn median(values: &[f64], default: f64) -> f64 {
    if values.is_empty() {
        return default;
    }
    let mut sorted = values.to_vec();
    sort_by_f64(&mut sorted, |v| *v);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

fn push_window(window: &mut Vec<f64>, value: f64, cap: usize) {
    window.push(value);
    if window.len() > cap {
        window.remove(0);
    }
}

impl DefenseEngine {
    /// A fresh engine with no history (every committee starts at trust 1).
    pub fn new(config: DefenseConfig) -> Result<DefenseEngine, Error> {
        config.validate()?;
        Ok(DefenseEngine {
            config,
            records: BTreeMap::new(),
            epoch: 0,
            obs: Obs::off(),
        })
    }

    /// Attaches a telemetry handle for `flagged` / `quarantine` /
    /// `rehabilitated` events (epoch-index clock).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> DefenseEngine {
        self.obs = obs;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &DefenseConfig {
        &self.config
    }

    /// Current trust weight for a committee (1.0 if never seen).
    pub fn trust(&self, committee: CommitteeId) -> f64 {
        self.records.get(&committee).map_or(1.0, |r| r.trust)
    }

    /// Whether a committee is quarantined at the given epoch.
    pub fn is_quarantined(&self, committee: CommitteeId, epoch: u64) -> bool {
        self.records
            .get(&committee)
            .and_then(|r| r.quarantined_until)
            .is_some_and(|until| epoch < until)
    }

    /// Screens one epoch's formation reports: rehabilitates committees
    /// whose quarantine has expired (emitting `rehabilitated`), then maps
    /// every report to its robust estimate. Order follows the input.
    pub fn screen(&mut self, epoch: u64, reports: &[ShardInfo]) -> Vec<ScreenedReport> {
        self.epoch = epoch;
        for report in reports {
            let record = self
                .records
                .entry(report.committee())
                .or_insert_with(CommitteeRecord::fresh);
            if record.quarantined_until.is_some_and(|until| epoch >= until) {
                record.quarantined_until = None;
                record.streak = 0;
                record.residuals.clear();
                self.obs.emit(
                    "rehabilitated",
                    epoch as f64,
                    &[
                        ("committee", Value::from(report.committee().value())),
                        ("epoch", Value::U64(epoch)),
                        ("trust", Value::F64(record.trust)),
                    ],
                );
            }
        }
        reports
            .iter()
            .map(|report| {
                // Entry inserted for every report in the loop above.
                let record = &self.records[&report.committee()];
                let size_corr = median(&record.size_ratios, 1.0).clamp(0.1, 10.0);
                let lat_corr = median(&record.latency_ratios, 1.0).clamp(0.1, 10.0);
                let s = ((report.tx_count() as f64) * size_corr * record.trust)
                    .round()
                    .max(1.0) as u64;
                let latency = TwoPhaseLatency::new(
                    report.latency().formation() * lat_corr,
                    report.latency().consensus() * lat_corr,
                );
                ScreenedReport {
                    info: ShardInfo::new(report.committee(), s, latency),
                    quarantined: record.quarantined_until.is_some_and(|until| epoch < until),
                    trust: record.trust,
                }
            })
            .collect()
    }

    /// Candidate list after screening: corrected estimates with
    /// quarantined committees excluded — unless exclusion would leave
    /// fewer than `n_min` candidates, in which case quarantined
    /// committees are readmitted in descending trust order (ties broken
    /// by committee id) so the epoch stays feasible.
    pub fn admissible(
        &mut self,
        epoch: u64,
        reports: &[ShardInfo],
        n_min: usize,
    ) -> Vec<ShardInfo> {
        let screened = self.screen(epoch, reports);
        let mut admitted: Vec<ShardInfo> = screened
            .iter()
            .filter(|s| !s.quarantined)
            .map(|s| s.info)
            .collect();
        if admitted.len() < n_min {
            let mut benched: Vec<&ScreenedReport> =
                screened.iter().filter(|s| s.quarantined).collect();
            sort_by_f64(&mut benched, |s| -s.trust);
            for s in benched {
                if admitted.len() >= n_min {
                    break;
                }
                admitted.push(s.info);
            }
        }
        admitted
    }

    /// Ingests one epoch's realized observations, updating windows,
    /// trust, flags and quarantine state. Committees with no observation
    /// this epoch (e.g. quarantined, absent) are left untouched.
    pub fn end_epoch(&mut self, epoch: u64, observations: &[DefenseObservation]) {
        for ob in observations {
            let record = self
                .records
                .entry(ob.committee)
                .or_insert_with(CommitteeRecord::fresh);
            if record.quarantined_until.is_some_and(|until| epoch < until) {
                continue;
            }
            let reported_l = ob.reported_latency.as_millis().max(1.0);
            let rl = ob.observed_latency.as_millis() / reported_l;
            push_window(&mut record.latency_ratios, rl, self.config.window);
            let mut residual = (rl - 1.0).max(0.0);
            if let Some(observed_s) = ob.observed_size {
                let rs = observed_s as f64 / (ob.reported_size.max(1) as f64);
                push_window(&mut record.size_ratios, rs, self.config.window);
                residual = residual.max((rs - 1.0).abs());
            }
            push_window(&mut record.residuals, residual, self.config.window);

            let windowed = median(&record.residuals, 0.0);
            if windowed > self.config.flag_threshold {
                record.streak += 1;
                if record.streak >= self.config.flag_streak {
                    record.streak = 0;
                    record.offenses += 1;
                    record.trust =
                        (record.trust * self.config.flag_discount).max(self.config.min_trust);
                    self.obs.emit(
                        "flagged",
                        epoch as f64,
                        &[
                            ("committee", Value::from(ob.committee.value())),
                            ("epoch", Value::U64(epoch)),
                            ("residual", Value::F64(windowed)),
                            ("trust", Value::F64(record.trust)),
                        ],
                    );
                    let shift = (record.offenses - 1).min(63) as u32;
                    let span = self
                        .config
                        .quarantine_base
                        .saturating_shl(shift)
                        .min(self.config.quarantine_max);
                    let until = epoch + 1 + span;
                    record.quarantined_until = Some(until);
                    self.obs.emit(
                        "quarantine",
                        epoch as f64,
                        &[
                            ("committee", Value::from(ob.committee.value())),
                            ("epoch", Value::U64(epoch)),
                            ("until", Value::U64(until)),
                            ("offenses", Value::U64(record.offenses)),
                        ],
                    );
                }
            } else {
                record.streak = 0;
                record.trust = (record.trust + self.config.trust_recovery).min(1.0);
            }
        }
        self.epoch = epoch + 1;
    }

    /// Serializable snapshot of the full reputation state.
    pub fn checkpoint(&self) -> DefenseCheckpoint {
        DefenseCheckpoint {
            epoch: self.epoch,
            config: self.config,
            records: self
                .records
                .iter()
                .map(|(id, record)| (*id, record.clone()))
                .collect(),
        }
    }

    /// Rebuilds an engine from a snapshot. The engine is a pure fold over
    /// its observation stream, so a restored engine replays the exact
    /// flag/quarantine decisions the uninterrupted run would have made.
    pub fn from_checkpoint(ckpt: &DefenseCheckpoint) -> Result<DefenseEngine, Error> {
        ckpt.config.validate()?;
        Ok(DefenseEngine {
            config: ckpt.config,
            records: ckpt.records.iter().cloned().collect(),
            epoch: ckpt.epoch,
            obs: Obs::off(),
        })
    }
}

/// `u64::checked_shl` with saturation — quarantine spans cap at
/// `quarantine_max` anyway, so overflow just means "the cap".
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: u32, s: u64, total_secs: f64) -> ShardInfo {
        ShardInfo::new(
            CommitteeId(id),
            s,
            TwoPhaseLatency::from_total(SimTime::from_secs(total_secs)),
        )
    }

    fn ob(
        id: u32,
        reported_s: u64,
        reported_l: f64,
        observed_s: Option<u64>,
        observed_l: f64,
    ) -> DefenseObservation {
        DefenseObservation {
            committee: CommitteeId(id),
            reported_size: reported_s,
            reported_latency: SimTime::from_secs(reported_l),
            observed_latency: SimTime::from_secs(observed_l),
            observed_size: observed_s,
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(DefenseConfig::paper().validate().is_ok());
        let mut c = DefenseConfig::paper();
        c.window = 0;
        assert!(c.validate().is_err());
        let mut c = DefenseConfig::paper();
        c.flag_threshold = -0.5;
        assert!(c.validate().is_err());
        let mut c = DefenseConfig::paper();
        c.quarantine_max = 1;
        assert!(c.validate().is_err());
        let mut c = DefenseConfig::paper();
        c.flag_discount = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn honest_committee_is_never_flagged() {
        let mut engine = DefenseEngine::new(DefenseConfig::paper()).unwrap();
        for epoch in 0..50 {
            engine.end_epoch(epoch, &[ob(1, 1000, 600.0, Some(1000), 600.0)]);
        }
        assert!(!engine.is_quarantined(CommitteeId(1), 50));
        assert!((engine.trust(CommitteeId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn early_arrival_is_not_an_offense() {
        let mut engine = DefenseEngine::new(DefenseConfig::paper()).unwrap();
        // Arrives at half the promised latency, every epoch.
        for epoch in 0..50 {
            engine.end_epoch(epoch, &[ob(2, 1000, 600.0, Some(1000), 300.0)]);
        }
        assert!(!engine.is_quarantined(CommitteeId(2), 50));
    }

    #[test]
    fn size_inflator_is_flagged_and_quarantined() {
        let mut engine = DefenseEngine::new(DefenseConfig::paper()).unwrap();
        // Claims 2000, delivers 1000: rs = 0.5, residual 0.5 > 0.25.
        let mut flagged_at = None;
        for epoch in 0..10 {
            engine.end_epoch(epoch, &[ob(3, 2000, 600.0, Some(1000), 600.0)]);
            if engine.is_quarantined(CommitteeId(3), epoch + 1) {
                flagged_at = Some(epoch);
                break;
            }
        }
        // Two strikes to flag: quarantined after the second offense epoch.
        assert_eq!(flagged_at, Some(1));
        assert!(engine.trust(CommitteeId(3)) < 1.0);
    }

    #[test]
    fn freerider_is_flagged_on_latency_alone() {
        let mut engine = DefenseEngine::new(DefenseConfig::paper()).unwrap();
        // Truthful size, but delivers 1.5x late (rl − 1 = 0.5 > 0.25);
        // size never observed (excluded shard).
        for epoch in 0..5 {
            engine.end_epoch(epoch, &[ob(4, 1000, 600.0, None, 900.0)]);
        }
        assert!(engine.is_quarantined(CommitteeId(4), 3));
    }

    #[test]
    fn quarantine_backoff_doubles_and_caps() {
        let config = DefenseConfig {
            quarantine_base: 2,
            quarantine_max: 8,
            ..DefenseConfig::paper()
        };
        let mut engine = DefenseEngine::new(config).unwrap();
        let mut spans = Vec::new();
        let mut epoch = 0;
        for _ in 0..4 {
            // Feed offenses until quarantined, then skip to release.
            loop {
                engine.end_epoch(epoch, &[ob(5, 2000, 600.0, Some(1000), 600.0)]);
                epoch += 1;
                if engine.is_quarantined(CommitteeId(5), epoch) {
                    break;
                }
            }
            let record = &engine.records[&CommitteeId(5)];
            let until = record.quarantined_until.unwrap();
            spans.push(until - epoch);
            // Serve out the quarantine, then screen to rehabilitate.
            epoch = until;
            engine.screen(epoch, &[shard(5, 2000, 600.0)]);
        }
        assert_eq!(spans, vec![2, 4, 8, 8]);
    }

    #[test]
    fn rehabilitation_restores_candidacy_and_trust_recovers() {
        let mut engine = DefenseEngine::new(DefenseConfig::paper()).unwrap();
        for epoch in 0..2 {
            engine.end_epoch(epoch, &[ob(6, 2000, 600.0, Some(1000), 600.0)]);
        }
        assert!(engine.is_quarantined(CommitteeId(6), 2));
        let trust_low = engine.trust(CommitteeId(6));
        let until = engine.records[&CommitteeId(6)].quarantined_until.unwrap();
        let screened = engine.screen(until, &[shard(6, 1000, 600.0)]);
        assert!(!screened[0].quarantined);
        // Clean epochs now recover trust.
        for epoch in until..until + 4 {
            engine.end_epoch(epoch, &[ob(6, 1000, 600.0, Some(1000), 600.0)]);
        }
        assert!(engine.trust(CommitteeId(6)) > trust_low);
    }

    #[test]
    fn screen_corrects_inflated_size_toward_truth() {
        let mut engine = DefenseEngine::new(DefenseConfig::paper()).unwrap();
        // History: reports 2000, delivers 1000 (ratio 0.5), but stay just
        // below the quarantine path by alternating honest epochs.
        for epoch in 0..8 {
            let observed = if epoch % 2 == 0 {
                Some(1000)
            } else {
                Some(2000)
            };
            engine.end_epoch(epoch, &[ob(7, 2000, 600.0, observed, 600.0)]);
        }
        let record_trust = engine.trust(CommitteeId(7));
        let screened = engine.screen(8, &[shard(7, 2000, 600.0)]);
        let med = median(&engine.records[&CommitteeId(7)].size_ratios, 1.0);
        let expect = (2000.0 * med * record_trust).round().max(1.0) as u64;
        assert_eq!(screened[0].info.tx_count(), expect);
        assert!(screened[0].info.tx_count() < 2000);
    }

    #[test]
    fn fresh_committee_screens_to_its_own_report() {
        let mut engine = DefenseEngine::new(DefenseConfig::paper()).unwrap();
        let report = shard(8, 1234, 321.0);
        let screened = engine.screen(0, &[report]);
        assert_eq!(screened[0].info.tx_count(), 1234);
        assert!(
            (screened[0].info.two_phase_latency().as_millis()
                - report.two_phase_latency().as_millis())
            .abs()
                < 1e-9
        );
        assert!(!screened[0].quarantined);
    }

    #[test]
    fn admissible_backfills_to_n_min_from_quarantine() {
        let mut engine = DefenseEngine::new(DefenseConfig::paper()).unwrap();
        // Quarantine committees 1 and 2.
        for epoch in 0..2 {
            engine.end_epoch(
                epoch,
                &[
                    ob(1, 2000, 600.0, Some(1000), 600.0),
                    ob(2, 2000, 600.0, Some(1000), 600.0),
                ],
            );
        }
        let reports = vec![
            shard(1, 1000, 600.0),
            shard(2, 1000, 600.0),
            shard(3, 1000, 600.0),
        ];
        // n_min = 1: only the honest committee remains.
        assert_eq!(engine.admissible(2, &reports, 1).len(), 1);
        // n_min = 3: both quarantined committees are readmitted.
        assert_eq!(engine.admissible(2, &reports, 3).len(), 3);
    }

    #[test]
    fn checkpoint_roundtrip_reproduces_decisions() {
        let config = DefenseConfig::paper();
        let feed = |engine: &mut DefenseEngine, epoch: u64| {
            engine.end_epoch(
                epoch,
                &[
                    ob(1, 2000, 600.0, Some(1000), 600.0),
                    ob(2, 1000, 600.0, Some(1000), 600.0),
                ],
            );
        };
        // Uninterrupted run.
        let mut a = DefenseEngine::new(config).unwrap();
        for epoch in 0..12 {
            a.screen(epoch, &[shard(1, 2000, 600.0), shard(2, 1000, 600.0)]);
            feed(&mut a, epoch);
        }
        // Interrupted at epoch 3 (mid-quarantine for committee 1, which
        // serves epochs 2..4), serialized through JSON, restored, then
        // continued.
        let mut b = DefenseEngine::new(config).unwrap();
        for epoch in 0..3 {
            b.screen(epoch, &[shard(1, 2000, 600.0), shard(2, 1000, 600.0)]);
            feed(&mut b, epoch);
        }
        assert!(b.is_quarantined(CommitteeId(1), 3));
        let json = serde_json::to_string(&b.checkpoint()).unwrap();
        let restored: DefenseCheckpoint = serde_json::from_str(&json).unwrap();
        let mut b = DefenseEngine::from_checkpoint(&restored).unwrap();
        for epoch in 3..12 {
            b.screen(epoch, &[shard(1, 2000, 600.0), shard(2, 1000, 600.0)]);
            feed(&mut b, epoch);
        }
        assert_eq!(
            serde_json::to_string(&a.checkpoint()).unwrap(),
            serde_json::to_string(&b.checkpoint()).unwrap()
        );
    }

    #[test]
    fn events_are_emitted_on_flag_quarantine_and_rehabilitation() {
        let (obs, buffer) = Obs::memory(mvcom_obs::ObsLevel::Events);
        let mut engine = DefenseEngine::new(DefenseConfig::paper())
            .unwrap()
            .with_obs(obs);
        for epoch in 0..2 {
            engine.end_epoch(epoch, &[ob(9, 2000, 600.0, Some(1000), 600.0)]);
        }
        let until = engine.records[&CommitteeId(9)].quarantined_until.unwrap();
        engine.screen(until, &[shard(9, 1000, 600.0)]);
        engine.obs.flush();
        let text = buffer.contents();
        assert!(text.contains("\"kind\":\"flagged\""), "{text}");
        assert!(text.contains("\"kind\":\"quarantine\""), "{text}");
        assert!(text.contains("\"kind\":\"rehabilitated\""), "{text}");
    }
}
