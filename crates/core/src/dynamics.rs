//! Online handling of committee joining, leaving and failure (paper §IV-A,
//! §V, Figs. 9 & 14).
//!
//! The [`SeEngine`] exposes `handle_join` /
//! `handle_leave`; this module adds the *driver*: a scripted sequence of
//! [`TimedEvent`]s applied at given iterations while the engine runs, with
//! the utility perturbation around each event recorded — exactly what the
//! paper's dynamic-event figures plot.

use serde::{Deserialize, Serialize};

use mvcom_types::{CommitteeId, Result, ShardInfo};

use crate::se::{SeConfig, SeEngine, SeOutcome};
use crate::Instance;

/// How the solution family reacts to a dynamic event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DynamicsPolicy {
    /// Algorithm 1 lines 9–12 taken literally: on any join/leave, rebuild
    /// the instance and re-run `Initialization()` for every chain.
    #[default]
    Reinitialize,
    /// The §V analysis: trim the failed committee out of every surviving
    /// solution (`F → G`, Fig. 7) and keep exploring from the projected
    /// states; joins extend the index space in place. Converges faster
    /// after an event at the cost of less randomized restarts.
    Trim,
}

/// One scripted dynamic event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A new committee submits its shard mid-epoch.
    Join(ShardInfo),
    /// A committee leaves gracefully or is detected as failed (infinite
    /// ping latency, §V-A).
    Leave(CommitteeId),
}

/// An event bound to the engine iteration at which it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Iteration at which the event is applied.
    pub at_iteration: u64,
    /// What happens.
    pub kind: EventKind,
}

impl TimedEvent {
    /// A join event at `at_iteration`.
    pub fn join(at_iteration: u64, shard: ShardInfo) -> TimedEvent {
        TimedEvent {
            at_iteration,
            kind: EventKind::Join(shard),
        }
    }

    /// A leave/failure event at `at_iteration`.
    pub fn leave(at_iteration: u64, committee: CommitteeId) -> TimedEvent {
        TimedEvent {
            at_iteration,
            kind: EventKind::Leave(committee),
        }
    }
}

/// The utility perturbation recorded around one applied event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Iteration at which the event was applied.
    pub at_iteration: u64,
    /// Best current utility immediately before the event.
    pub utility_before: f64,
    /// Best current utility immediately after the solution-space surgery —
    /// the perturbation bounded by Theorem 2.
    pub utility_after: f64,
    /// Whether this was a join (`true`) or leave (`false`).
    pub is_join: bool,
}

/// Outcome of an online run: the final schedule plus per-event
/// perturbations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// The final converged outcome over whatever the epoch looked like
    /// after the last event.
    pub outcome: SeOutcome,
    /// One record per applied event, in application order.
    pub events: Vec<EventRecord>,
}

/// Runs the SE engine over an epoch while applying a scripted sequence of
/// dynamic events — the harness behind paper Figs. 9 and 14.
///
/// Events are applied in order of `at_iteration` (ties in input order).
/// Events scheduled beyond the iteration budget are skipped.
///
/// # Errors
///
/// Propagates engine-construction and event-application errors (unknown
/// committee, duplicate join, or an event that leaves the epoch
/// infeasible).
///
/// # Example
///
/// ```
/// use mvcom_core::dynamics::{run_online, DynamicsPolicy, TimedEvent};
/// use mvcom_core::problem::InstanceBuilder;
/// use mvcom_core::se::SeConfig;
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// # fn main() -> Result<(), mvcom_types::Error> {
/// let shards = (0..10).map(|i| ShardInfo::new(
///     CommitteeId(i), 100,
///     TwoPhaseLatency::from_total(SimTime::from_secs(500.0 + 10.0 * f64::from(i))),
/// )).collect();
/// let instance = InstanceBuilder::new()
///     .alpha(1.5).capacity(800).n_min(2).shards(shards).build()?;
/// let events = vec![TimedEvent::leave(50, CommitteeId(3))];
/// let online = run_online(&instance, SeConfig::fast_test(1), &events,
///                         DynamicsPolicy::Trim)?;
/// assert_eq!(online.events.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn run_online(
    instance: &Instance,
    config: SeConfig,
    events: &[TimedEvent],
    policy: DynamicsPolicy,
) -> Result<OnlineOutcome> {
    let mut engine = SeEngine::new(instance, config)?;
    let mut ordered: Vec<&TimedEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.at_iteration);
    let mut records = Vec::with_capacity(ordered.len());
    let mut queue = ordered.into_iter().peekable();

    while engine.iteration() < config.max_iterations {
        while queue
            .peek()
            .is_some_and(|e| e.at_iteration <= engine.iteration())
        {
            // lint: allow(P1, peek() returned Some for the same queue one line above)
            let event = queue.next().expect("peeked");
            let before = engine.current_best_utility();
            let is_join = match event.kind {
                EventKind::Join(shard) => {
                    engine.handle_join(shard, policy)?;
                    true
                }
                EventKind::Leave(committee) => {
                    engine.handle_leave(committee, policy)?;
                    false
                }
            };
            records.push(EventRecord {
                at_iteration: event.at_iteration,
                utility_before: before,
                utility_after: engine.current_best_utility(),
                is_join,
            });
        }
        // Stop once converged *and* no events remain to perturb the run.
        if queue.peek().is_none() && engine.is_converged() {
            break;
        }
        engine.step();
    }
    Ok(OnlineOutcome {
        outcome: engine.finish(),
        events: records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceBuilder;
    use mvcom_types::{SimTime, TwoPhaseLatency};

    fn shard(id: u32, txs: u64, latency: f64) -> ShardInfo {
        ShardInfo::new(
            CommitteeId(id),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(latency)),
        )
    }

    fn instance(n: usize) -> Instance {
        InstanceBuilder::new()
            .alpha(1.5)
            .capacity((n as u64) * 100)
            .n_min(n / 4)
            .shards(
                (0..n)
                    .map(|i| {
                        shard(
                            i as u32,
                            60 + (i as u64 * 7) % 80,
                            300.0 + (i as f64 * 53.0) % 700.0,
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn leave_then_rejoin_recovers() {
        // The Fig. 9(a) scenario: a committee fails mid-run and rejoins.
        let inst = instance(20);
        let victim = CommitteeId(5);
        let victim_shard = inst.shards()[inst.index_of(victim).unwrap()];
        let events = vec![
            TimedEvent::leave(40, victim),
            TimedEvent::join(120, victim_shard),
        ];
        for policy in [DynamicsPolicy::Trim, DynamicsPolicy::Reinitialize] {
            let online = run_online(&inst, SeConfig::fast_test(2), &events, policy).unwrap();
            assert_eq!(online.events.len(), 2);
            assert!(!online.events[0].is_join);
            assert!(online.events[1].is_join);
            // After the rejoin the epoch is back to 20 shards.
            assert_eq!(online.outcome.best_solution.len(), 20, "{policy:?}");
        }
    }

    #[test]
    fn consecutive_joins_grow_the_epoch() {
        // The Fig. 9(b)/14 scenario: committees keep joining.
        let inst = instance(10);
        let events: Vec<TimedEvent> = (0..5)
            .map(|k| {
                TimedEvent::join(
                    30 + 30 * k,
                    shard(100 + k as u32, 70, 400.0 + 40.0 * k as f64),
                )
            })
            .collect();
        let online = run_online(
            &inst,
            SeConfig::fast_test(3),
            &events,
            DynamicsPolicy::Reinitialize,
        )
        .unwrap();
        assert_eq!(online.events.len(), 5);
        assert_eq!(online.outcome.best_solution.len(), 15);
        assert!(online.events.iter().all(|e| e.is_join));
    }

    #[test]
    fn events_past_budget_are_skipped() {
        let inst = instance(10);
        let events = vec![TimedEvent::leave(1_000_000, CommitteeId(0))];
        let cfg = SeConfig {
            max_iterations: 100,
            convergence_window: 0,
            ..SeConfig::fast_test(4)
        };
        let online = run_online(&inst, cfg, &events, DynamicsPolicy::Trim).unwrap();
        assert!(online.events.is_empty());
        assert_eq!(online.outcome.best_solution.len(), 10);
    }

    #[test]
    fn leave_records_perturbation() {
        let inst = instance(20);
        let events = vec![TimedEvent::leave(60, CommitteeId(2))];
        let online =
            run_online(&inst, SeConfig::fast_test(5), &events, DynamicsPolicy::Trim).unwrap();
        let rec = &online.events[0];
        assert!(rec.utility_before.is_finite());
        assert!(rec.utility_after.is_finite());
        // Theorem 2: the perturbation is bounded by the best utility of the
        // trimmed space — loosely checkable as "after" not being absurd.
        assert!(rec.utility_after <= rec.utility_before.max(rec.utility_after));
    }

    #[test]
    fn invalid_events_propagate_errors() {
        let inst = instance(10);
        let events = vec![TimedEvent::leave(10, CommitteeId(777))];
        assert!(run_online(&inst, SeConfig::fast_test(6), &events, DynamicsPolicy::Trim).is_err());
    }

    #[test]
    fn events_apply_in_iteration_order() {
        let inst = instance(16);
        // Scripted out of order on purpose.
        let events = vec![
            TimedEvent::join(90, shard(200, 50, 500.0)),
            TimedEvent::leave(30, CommitteeId(1)),
        ];
        let online = run_online(
            &inst,
            SeConfig::fast_test(7),
            &events,
            DynamicsPolicy::Reinitialize,
        )
        .unwrap();
        assert_eq!(online.events[0].at_iteration, 30);
        assert_eq!(online.events[1].at_iteration, 90);
    }
}
