//! Configuration of the Stochastic-Exploration engine.

use serde::{Deserialize, Serialize};

use mvcom_types::{Error, Result};

/// Tuning parameters of [`SeEngine`](crate::se::SeEngine).
///
/// The defaults are the paper's §VI-A settings: `β = 2`, `τ = 0`, `Γ = 10`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeConfig {
    /// Γ — the number of independent parallel execution replicas of the
    /// solution family (paper §IV-D / Fig. 8). Each iteration advances every
    /// replica by one timer race.
    pub gamma: usize,
    /// β — the log-sum-exp approximation sharpness. Larger β concentrates
    /// the stationary distribution on better solutions (approximation loss
    /// `(1/β)·log|F|` shrinks) at the cost of slower mixing (Theorem 1).
    pub beta: f64,
    /// τ — the conditional constant guarding `exp(·)` in the transition
    /// rate (paper eq. (7)); `0` in all the paper's experiments.
    pub tau: f64,
    /// Hard iteration budget.
    pub max_iterations: u64,
    /// Stop early when the best-so-far utility has not improved by more
    /// than [`SeConfig::convergence_tol`] for this many iterations
    /// (`0` disables early stopping).
    pub convergence_window: u64,
    /// Minimum improvement that counts as progress.
    pub convergence_tol: f64,
    /// How many random `(ĩ, ï)` pairs Algorithm 3 may reject while looking
    /// for a capacity-feasible swap before the chain sits out one race.
    pub swap_attempts: usize,
    /// How many candidate pairs each chain's local timer race samples per
    /// round. The chain commits the pair whose exponential timer (rate
    /// `exp(½β·ΔU − τ)`) expires first — a sampled jump of the designed
    /// CTMC. Larger values approximate the full transition-rate matrix
    /// more closely at linear cost.
    pub proposal_fanout: usize,
    /// How many random `n`-subsets Algorithm 2 may draw before falling back
    /// to the deterministic smallest-`n`-shards initialization.
    pub init_attempts: usize,
    /// Whether the full selection `f_{|I_j|}` joins the candidate set at
    /// convergence when it satisfies the capacity (Alg. 1 line 25).
    pub include_full_solution: bool,
    /// Upper bound on the chains per replica. Algorithm 2 spawns one
    /// chain per feasible cardinality; at `|I| = 10⁴–10⁵` that range is
    /// `O(|I|)` wide and every chain carries an `O(|I|)` evaluation
    /// cache, so the scale regime strides the range down to at most this
    /// many evenly spaced cardinalities (endpoints always kept).
    /// `usize::MAX` — the default and the paper setting — keeps every
    /// cardinality. Absent from pre-scale checkpoints, so it
    /// deserializes to the default.
    #[serde(default = "default_max_chains")]
    pub max_chains: usize,
    /// Record a trajectory point every this many iterations (≥ 1).
    pub record_every: u64,
    /// Master seed for all of the engine's randomness.
    pub seed: u64,
}

/// Serde default for [`SeConfig::max_chains`] (the paper setting).
fn default_max_chains() -> usize {
    usize::MAX
}

impl SeConfig {
    /// The paper's default parameterization (β=2, τ=0, Γ=10).
    pub fn paper(seed: u64) -> SeConfig {
        SeConfig {
            gamma: 10,
            beta: 2.0,
            tau: 0.0,
            max_iterations: 3_000,
            convergence_window: 500,
            convergence_tol: 1e-9,
            swap_attempts: 16,
            proposal_fanout: 16,
            init_attempts: 64,
            include_full_solution: true,
            max_chains: default_max_chains(),
            record_every: 1,
            seed,
        }
    }

    /// A small-budget configuration for unit tests.
    pub fn fast_test(seed: u64) -> SeConfig {
        SeConfig {
            gamma: 2,
            max_iterations: 300,
            convergence_window: 100,
            ..SeConfig::paper(seed)
        }
    }

    /// Sets Γ, returning the modified configuration.
    #[must_use]
    pub fn with_gamma(mut self, gamma: usize) -> SeConfig {
        self.gamma = gamma;
        self
    }

    /// Sets β, returning the modified configuration.
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> SeConfig {
        self.beta = beta;
        self
    }

    /// Sets the iteration budget, returning the modified configuration.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: u64) -> SeConfig {
        self.max_iterations = max_iterations;
        self
    }

    /// Validates all parameter domains.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if self.gamma == 0 {
            return Err(Error::invalid_config("gamma", "need at least one replica"));
        }
        if !self.beta.is_finite() || self.beta <= 0.0 {
            return Err(Error::invalid_config(
                "beta",
                format!("must be positive and finite, got {}", self.beta),
            ));
        }
        if !self.tau.is_finite() {
            return Err(Error::invalid_config("tau", "must be finite"));
        }
        if self.max_iterations == 0 {
            return Err(Error::invalid_config("max_iterations", "must be positive"));
        }
        if !self.convergence_tol.is_finite() || self.convergence_tol < 0.0 {
            return Err(Error::invalid_config(
                "convergence_tol",
                "must be finite and non-negative",
            ));
        }
        if self.swap_attempts == 0 {
            return Err(Error::invalid_config("swap_attempts", "must be positive"));
        }
        if self.proposal_fanout == 0 {
            return Err(Error::invalid_config("proposal_fanout", "must be positive"));
        }
        if self.init_attempts == 0 {
            return Err(Error::invalid_config("init_attempts", "must be positive"));
        }
        if self.max_chains == 0 {
            return Err(Error::invalid_config(
                "max_chains",
                "need at least one chain per replica",
            ));
        }
        if self.record_every == 0 {
            return Err(Error::invalid_config("record_every", "must be positive"));
        }
        Ok(())
    }
}

impl Default for SeConfig {
    fn default() -> Self {
        SeConfig::paper(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SeConfig::paper(7);
        assert_eq!(c.gamma, 10);
        assert_eq!(c.beta, 2.0);
        assert_eq!(c.tau, 0.0);
        assert_eq!(c.seed, 7);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_style_setters() {
        let c = SeConfig::paper(0)
            .with_gamma(25)
            .with_beta(4.0)
            .with_max_iterations(10);
        assert_eq!(c.gamma, 25);
        assert_eq!(c.beta, 4.0);
        assert_eq!(c.max_iterations, 10);
    }

    #[test]
    fn validation_catches_each_parameter() {
        let base = SeConfig::paper(0);
        let cases: Vec<SeConfig> = vec![
            SeConfig { gamma: 0, ..base },
            SeConfig { beta: 0.0, ..base },
            SeConfig {
                beta: f64::NAN,
                ..base
            },
            SeConfig {
                tau: f64::INFINITY,
                ..base
            },
            SeConfig {
                max_iterations: 0,
                ..base
            },
            SeConfig {
                convergence_tol: -1.0,
                ..base
            },
            SeConfig {
                swap_attempts: 0,
                ..base
            },
            SeConfig {
                proposal_fanout: 0,
                ..base
            },
            SeConfig {
                init_attempts: 0,
                ..base
            },
            SeConfig {
                max_chains: 0,
                ..base
            },
            SeConfig {
                record_every: 0,
                ..base
            },
        ];
        for (i, c) in cases.iter().enumerate() {
            assert!(c.validate().is_err(), "case {i} should be rejected");
        }
    }

    #[test]
    fn serde_round_trip() {
        let c = SeConfig::paper(3);
        let json = serde_json::to_string(&c).unwrap();
        let back: SeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn pre_scale_checkpoints_deserialize_with_default_max_chains() {
        let json = serde_json::to_string(&SeConfig::paper(3)).unwrap();
        let needle = format!("\"max_chains\":{},", usize::MAX);
        let legacy = json.replace(&needle, "");
        assert_ne!(legacy, json, "expected {needle} in {json}");
        let back: SeConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.max_chains, usize::MAX);
    }
}
