//! Serializable snapshots of the SE engine's solver state.
//!
//! The paper's SE threads "can run in either one single machine or
//! multiple distributed machines" (§IV-D); a distributed solver process
//! can therefore be killed mid-run. A [`SeCheckpoint`] captures everything
//! needed to resume — every chain's current solution per replica, the best
//! solution so far and both clocks — as plain data (`serde`-serializable,
//! so it survives a process boundary as JSON). Restoring through
//! [`SeEngine::from_checkpoint`](crate::se::SeEngine::from_checkpoint)
//! rebuilds the chains from their recorded solutions and re-derives fresh
//! deterministic RNG streams keyed by the checkpoint version, so a resumed
//! run is reproducible without serializing RNG internals.
//!
//! Checkpoints are *version-stamped* with the iteration they were taken
//! at; a recovery manager holding several can always prefer the newest and
//! discard stale ones, mirroring the versioned RESET signals of the
//! parallel runner.
//!
//! # Example: kill → JSON → resume
//!
//! ```
//! use mvcom_core::problem::InstanceBuilder;
//! use mvcom_core::se::{SeCheckpoint, SeConfig, SeEngine};
//! use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
//!
//! # fn main() -> Result<(), mvcom_types::Error> {
//! let shards = (0..10).map(|i| ShardInfo::new(
//!     CommitteeId(i),
//!     100 + 10 * u64::from(i),
//!     TwoPhaseLatency::from_total(SimTime::from_secs(500.0 + 10.0 * f64::from(i))),
//! )).collect();
//! let instance = InstanceBuilder::new()
//!     .alpha(2.0).capacity(2_000).n_min(2).shards(shards).build()?;
//! let mut engine = SeEngine::new(&instance, SeConfig::fast_test(3))?;
//! for _ in 0..40 { engine.step(); }
//! let ckpt = engine.checkpoint();
//! assert_eq!(ckpt.version, 40);
//! drop(engine); // the solver process dies here
//!
//! // The snapshot survives a process boundary as JSON…
//! let json = serde_json::to_string(&ckpt).expect("checkpoints serialize");
//! let ckpt: SeCheckpoint = serde_json::from_str(&json).expect("and parse back");
//! // …and a replacement solver resumes where the original stood.
//! let restored = SeEngine::from_checkpoint(&instance, SeConfig::fast_test(3), &ckpt)?;
//! assert_eq!(restored.iteration(), 40);
//! assert_eq!(restored.restored_chains(), ckpt.chain_count());
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use mvcom_types::{Error, Result};

/// One chain's position in the solution space: the selected shard indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainSnapshot {
    /// The chain's cardinality (must equal `selected.len()`).
    pub cardinality: usize,
    /// Indices of the selected shards, in the instance's shard order.
    pub selected: Vec<usize>,
}

/// A full snapshot of a running [`SeEngine`](crate::se::SeEngine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeCheckpoint {
    /// Version stamp: the iteration the snapshot was taken at. Recovery
    /// managers keep the largest version and drop stale snapshots.
    pub version: u64,
    /// The seed of the run that produced the snapshot (restore refuses a
    /// mismatched configuration).
    pub seed: u64,
    /// Iterations executed when the snapshot was taken.
    pub iteration: u64,
    /// Accumulated virtual time.
    pub vtime: f64,
    /// Selected indices of the best feasible solution so far.
    pub best_selected: Vec<usize>,
    /// Utility of that best solution.
    pub best_utility: f64,
    /// Per replica, per chain: the current solution.
    pub replicas: Vec<Vec<ChainSnapshot>>,
}

impl SeCheckpoint {
    /// Total chains recorded across all replicas.
    pub fn chain_count(&self) -> usize {
        self.replicas.iter().map(Vec::len).sum()
    }

    /// Checks internal consistency against an instance of `instance_len`
    /// shards: indices in range and duplicate-free, cardinalities honest.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] describing the corruption.
    pub fn validate(&self, instance_len: usize) -> Result<()> {
        let check = |name: &'static str, selected: &[usize]| -> Result<()> {
            let mut seen = BTreeSet::new();
            for &i in selected {
                if i >= instance_len {
                    return Err(Error::invalid_config(
                        name,
                        format!("shard index {i} out of range for {instance_len} shards"),
                    ));
                }
                if !seen.insert(i) {
                    return Err(Error::invalid_config(
                        name,
                        format!("shard index {i} selected twice"),
                    ));
                }
            }
            Ok(())
        };
        check("best_selected", &self.best_selected)?;
        for chains in &self.replicas {
            for snap in chains {
                check("replicas", &snap.selected)?;
                if snap.cardinality != snap.selected.len() {
                    return Err(Error::invalid_config(
                        "replicas",
                        format!(
                            "chain claims cardinality {} but selects {} shards",
                            snap.cardinality,
                            snap.selected.len()
                        ),
                    ));
                }
            }
        }
        if !self.vtime.is_finite() || self.vtime < 0.0 {
            return Err(Error::invalid_config(
                "vtime",
                format!("must be finite and non-negative, got {}", self.vtime),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint() -> SeCheckpoint {
        SeCheckpoint {
            version: 120,
            seed: 7,
            iteration: 120,
            vtime: 3.5,
            best_selected: vec![0, 2, 5],
            best_utility: 123.4,
            replicas: vec![vec![
                ChainSnapshot {
                    cardinality: 2,
                    selected: vec![1, 3],
                },
                ChainSnapshot {
                    cardinality: 3,
                    selected: vec![0, 2, 5],
                },
            ]],
        }
    }

    #[test]
    fn valid_checkpoint_passes_and_counts_chains() {
        let ckpt = checkpoint();
        assert!(ckpt.validate(6).is_ok());
        assert_eq!(ckpt.chain_count(), 2);
    }

    #[test]
    fn out_of_range_duplicate_and_dishonest_cardinality_are_rejected() {
        let ckpt = checkpoint();
        assert!(ckpt.validate(4).is_err(), "index 5 out of range for 4");
        let mut ckpt = checkpoint();
        ckpt.best_selected = vec![1, 1];
        assert!(ckpt.validate(6).is_err());
        let mut ckpt = checkpoint();
        ckpt.replicas[0][0].cardinality = 9;
        assert!(ckpt.validate(6).is_err());
        let mut ckpt = checkpoint();
        ckpt.vtime = f64::NAN;
        assert!(ckpt.validate(6).is_err());
    }

    #[test]
    fn serde_round_trip_preserves_the_snapshot() {
        let ckpt = checkpoint();
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: SeCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ckpt);
    }
}
