//! The virtual-time Stochastic-Exploration engine (Algorithm 1).

use serde::{Deserialize, Serialize};

use mvcom_obs::{Obs, ObsLevel, Value};
use mvcom_types::{Error, Result, ShardInfo};

use crate::dynamics::DynamicsPolicy;
use crate::problem::Instance;
use crate::se::chain::{Chain, Proposal, SeSampler};
use crate::se::checkpoint::{ChainSnapshot, SeCheckpoint};
use crate::se::config::SeConfig;
use crate::solution::Solution;

/// One sampled point of the convergence trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Iteration (timer races per replica) at which the point was taken.
    pub iteration: u64,
    /// Accumulated virtual time of the fastest replica's timer races.
    pub vtime: f64,
    /// Best utility among the *current* chain states — this is the curve
    /// the paper plots; it can drop when a committee leaves.
    pub current_best: f64,
    /// Best feasible utility observed since the run began.
    pub best_so_far: f64,
}

/// The recorded convergence trajectory of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<TrajectoryPoint>,
}

impl Trajectory {
    /// The sampled points in iteration order.
    pub fn points(&self) -> &[TrajectoryPoint] {
        &self.points
    }

    /// The final recorded point, if any.
    pub fn last(&self) -> Option<&TrajectoryPoint> {
        self.points.last()
    }

    fn push(&mut self, point: TrajectoryPoint) {
        self.points.push(point);
    }
}

/// The result of a completed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeOutcome {
    /// The best feasible solution found (Alg. 1 line 26).
    pub best_solution: Solution,
    /// Its utility.
    pub best_utility: f64,
    /// Iterations actually executed.
    pub iterations: u64,
    /// Whether the convergence window triggered before the budget ran out.
    pub converged: bool,
    /// The recorded utility trajectory.
    pub trajectory: Trajectory,
}

/// One of the Γ independent replicas of the solution family.
#[derive(Debug, Clone)]
struct Replica {
    chains: Vec<Chain>,
    rng: mvcom_simnet::SimRng,
}

/// The Stochastic-Exploration scheduler (paper Algorithm 1).
///
/// See the [module docs](crate::se) for the mapping onto the paper. The
/// engine owns a copy of the instance because dynamic events (committee
/// join/leave) mutate the epoch mid-run.
///
/// # Example
///
/// ```
/// use mvcom_core::problem::InstanceBuilder;
/// use mvcom_core::se::{SeConfig, SeEngine};
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// # fn main() -> Result<(), mvcom_types::Error> {
/// let shards = (0..12).map(|i| ShardInfo::new(
///     CommitteeId(i),
///     500 + 100 * u64::from(i % 4),
///     TwoPhaseLatency::from_total(SimTime::from_secs(600.0 + 25.0 * f64::from(i))),
/// )).collect();
/// let instance = InstanceBuilder::new()
///     .alpha(2.0).capacity(5_000).n_min(3).shards(shards).build()?;
/// let outcome = SeEngine::new(&instance, SeConfig::fast_test(42))?.run();
/// assert!(instance.is_feasible(&outcome.best_solution));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SeEngine {
    instance: Instance,
    config: SeConfig,
    replicas: Vec<Replica>,
    iteration: u64,
    vtime: f64,
    best_solution: Solution,
    best_utility: f64,
    last_improvement: u64,
    trajectory: Trajectory,
    restored_chains: usize,
    obs: Obs,
    /// Worker count for the replica fan-out in [`SeEngine::step`]. An
    /// *execution* knob like [`SeEngine::with_obs`] — deliberately not a
    /// [`SeConfig`] field, so it can never leak into config serialization,
    /// checkpoint identity, or daemon history headers. Output is
    /// byte-identical at any value.
    threads: usize,
    /// Which sampler the chains use for swap-pair draws (DESIGN.md §14).
    /// Also an execution knob: both variants are bit-identical.
    sampler: SeSampler,
}

impl SeEngine {
    /// Builds the engine: validates the configuration, derives the feasible
    /// cardinality range `[max(1, N_min), min(|I|−1, n_cap)]`, and runs
    /// Algorithm 2 to initialize every chain of every replica.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors, and [`Error::Infeasible`] when not
    /// a single feasible solution exists (also checked by the instance
    /// builder, so this is defensive).
    pub fn new(instance: &Instance, config: SeConfig) -> Result<SeEngine> {
        config.validate()?;
        let mut engine = SeEngine {
            instance: instance.clone(),
            config,
            replicas: Vec::new(),
            iteration: 0,
            vtime: 0.0,
            best_solution: Solution::empty(instance.len()),
            best_utility: f64::NEG_INFINITY,
            last_improvement: 0,
            trajectory: Trajectory::default(),
            restored_chains: 0,
            obs: Obs::off(),
            threads: 1,
            sampler: SeSampler::default(),
        };
        engine.build_replicas(None)?;
        engine.seed_best();
        engine.record_point();
        Ok(engine)
    }

    /// Attaches a telemetry handle: emits `se_init` immediately (plus
    /// `se_checkpoint_restore` for an engine rebuilt by
    /// [`SeEngine::from_checkpoint`]) and a `se_chain_point` for every
    /// chain, then streams trajectory, improvement, dynamics and
    /// checkpoint events from subsequent calls. All timestamps are the
    /// engine's virtual time.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> SeEngine {
        self.obs = obs;
        if self.restored_chains > 0 {
            self.obs.emit(
                "se_checkpoint_restore",
                self.vtime,
                &[
                    ("version", Value::U64(self.iteration)),
                    ("iter", Value::U64(self.iteration)),
                    ("chains", Value::from(self.restored_chains)),
                ],
            );
        }
        self.emit_init();
        self.emit_chain_points();
        self
    }

    /// Sets the worker count for the replica fan-out in
    /// [`SeEngine::step`] (clamped to ≥ 1). Replicas are partitioned
    /// across scoped workers in contiguous chunks and their commits are
    /// merged in replica order, so the output is byte-identical to the
    /// serial run at any count — this knob only trades wall clock.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> SeEngine {
        self.threads = threads.max(1);
        self
    }

    /// Selects the swap-pair sampler for every chain (DESIGN.md §14).
    /// [`SeSampler::RankSelect`] (the default) and
    /// [`SeSampler::RejectionScan`] are bit-identical; the frozen scan
    /// exists as a benchmark reference.
    #[must_use]
    pub fn with_sampler(mut self, sampler: SeSampler) -> SeEngine {
        self.sampler = sampler;
        self.apply_sampler();
        self
    }

    /// Pushes the engine's sampler choice down to every chain (chains are
    /// rebuilt on dynamic events, so this re-runs after every
    /// [`SeEngine::build_replicas`]).
    fn apply_sampler(&mut self) {
        for replica in &mut self.replicas {
            for chain in &mut replica.chains {
                chain.set_sampler(self.sampler);
            }
        }
    }

    /// The engine's current view of the epoch (changes on dynamic events).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The active configuration.
    pub fn config(&self) -> &SeConfig {
        &self.config
    }

    /// Iterations executed so far.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Best utility among the *current* chain states across all replicas
    /// (the paper's plotted quantity), or the best static fallback when no
    /// chains exist.
    pub fn current_best_utility(&self) -> f64 {
        let over_chains = self
            .replicas
            .iter()
            .flat_map(|r| r.chains.iter())
            .map(Chain::utility)
            .fold(f64::NEG_INFINITY, f64::max);
        if over_chains.is_finite() {
            over_chains
        } else {
            self.best_utility
        }
    }

    /// Snapshot of `(cardinality, utility)` for every chain of every
    /// replica — used by tests and the ablation benchmarks.
    pub fn chain_utilities(&self) -> Vec<(usize, f64)> {
        self.replicas
            .iter()
            .flat_map(|r| r.chains.iter().map(|c| (c.cardinality(), c.utility())))
            .collect()
    }

    /// Chains rebuilt from a checkpoint by [`SeEngine::from_checkpoint`]
    /// over this engine's lifetime (0 for a fresh engine).
    pub fn restored_chains(&self) -> usize {
        self.restored_chains
    }

    /// Takes a version-stamped, serializable snapshot of the full solver
    /// state: every chain's current solution per replica, the best
    /// solution so far, and both clocks. See [`crate::se::checkpoint`].
    pub fn checkpoint(&self) -> SeCheckpoint {
        let ckpt = SeCheckpoint {
            version: self.iteration,
            seed: self.config.seed,
            iteration: self.iteration,
            vtime: self.vtime,
            best_selected: self.best_solution.iter_selected().collect(),
            best_utility: self.best_utility,
            replicas: self
                .replicas
                .iter()
                .map(|r| {
                    r.chains
                        .iter()
                        .map(|c| ChainSnapshot {
                            cardinality: c.cardinality(),
                            selected: c.solution().iter_selected().collect(),
                        })
                        .collect()
                })
                .collect(),
        };
        self.obs.emit(
            "se_checkpoint_save",
            self.vtime,
            &[
                ("version", Value::U64(ckpt.version)),
                ("iter", Value::U64(ckpt.iteration)),
                ("chains", Value::from(ckpt.chain_count())),
            ],
        );
        ckpt
    }

    /// Rebuilds an engine from a checkpoint taken against the *same*
    /// instance shape: chains resume from their recorded solutions, clocks
    /// resume from the recorded values, and fresh deterministic RNG
    /// streams are derived from `seed ^ version` (so a restored run is
    /// reproducible without serializing RNG internals). Derived state —
    /// each chain's utility and its incremental [`crate::eval::EvalCache`]
    /// — is recomputed from `(instance, solution)` in
    /// [`Chain::from_solution`] rather than serialized, so checkpoints stay
    /// small and restored chains never inherit incremental drift.
    ///
    /// # Errors
    ///
    /// Configuration errors; [`Error::InvalidConfig`] when the checkpoint
    /// is internally corrupt ([`SeCheckpoint::validate`]), does not match
    /// `config.seed`, or indexes shards the instance does not have.
    pub fn from_checkpoint(
        instance: &Instance,
        config: SeConfig,
        ckpt: &SeCheckpoint,
    ) -> Result<SeEngine> {
        config.validate()?;
        ckpt.validate(instance.len())?;
        if ckpt.seed != config.seed {
            return Err(Error::invalid_config(
                "seed",
                format!(
                    "checkpoint was taken under seed {} but the config says {}",
                    ckpt.seed, config.seed
                ),
            ));
        }
        let mut master = mvcom_simnet::rng::master(config.seed ^ ckpt.version);
        let mut replicas = Vec::with_capacity(ckpt.replicas.len());
        let mut restored_chains = 0usize;
        for (g, snapshots) in ckpt.replicas.iter().enumerate() {
            let rng = mvcom_simnet::rng::fork(&mut master, &format!("replica-{g}-restored"));
            let chains: Vec<Chain> = snapshots
                .iter()
                .map(|snap| {
                    let solution = Solution::from_indices(
                        instance.len(),
                        snap.selected.iter().copied(),
                        instance,
                    );
                    Chain::from_solution(instance, solution)
                })
                .collect();
            restored_chains += chains.len();
            replicas.push(Replica { chains, rng });
        }
        let best_solution =
            Solution::from_indices(instance.len(), ckpt.best_selected.iter().copied(), instance);
        let mut engine = SeEngine {
            instance: instance.clone(),
            config,
            replicas,
            iteration: ckpt.iteration,
            vtime: ckpt.vtime,
            best_utility: ckpt.best_utility,
            best_solution,
            last_improvement: ckpt.iteration,
            trajectory: Trajectory::default(),
            restored_chains,
            obs: Obs::off(),
            threads: 1,
            sampler: SeSampler::default(),
        };
        engine.seed_best();
        engine.record_point();
        Ok(engine)
    }

    /// Runs one iteration (one *round* of the concurrently running
    /// solution threads): every chain of every replica races the timers of
    /// `proposal_fanout` sampled swap pairs and commits the winner — a
    /// sampled jump of the designed CTMC — then all timers are RESET for
    /// the next round.
    ///
    /// The paper's solution threads execute in parallel (Fig. 5), so in
    /// real time each thread's local timer expires about once between two
    /// RESET broadcasts; firing every chain once per round is the
    /// virtual-time image of that concurrency.
    ///
    /// Internally the round runs in two phases (DESIGN.md §14): a
    /// (possibly parallel, see [`SeEngine::with_threads`]) *race* phase
    /// where every replica races and commits its chains using only
    /// replica-local state, and a serial *merge* phase that replays the
    /// commits in (replica, chain) order — telemetry, best-tracking, and
    /// the virtual-time fold all happen here, so the observable output is
    /// byte-identical to the single-loop formulation at any thread count.
    pub fn step(&mut self) {
        self.iteration += 1;
        let commits = self.race_replicas();
        let trace = self.obs.enabled(ObsLevel::Trace);
        let mut min_ln_timer = f64::INFINITY;
        let mut improved: Option<(usize, usize)> = None;
        for (r_idx, replica_commits) in commits.iter().enumerate() {
            for commit in replica_commits {
                let proposal = &commit.proposal;
                if trace {
                    self.obs.emit(
                        "se_propose",
                        self.vtime,
                        &[
                            ("replica", Value::from(r_idx)),
                            ("chain", Value::from(commit.chain)),
                            ("iter", Value::U64(self.iteration)),
                            ("out", Value::from(proposal.out)),
                            ("inc", Value::from(proposal.inc)),
                            ("delta", Value::F64(proposal.delta)),
                            ("ln_timer", Value::F64(proposal.ln_timer)),
                        ],
                    );
                    self.obs.emit(
                        "se_commit",
                        self.vtime,
                        &[
                            ("replica", Value::from(r_idx)),
                            ("chain", Value::from(commit.chain)),
                            ("iter", Value::U64(self.iteration)),
                            ("utility", Value::F64(commit.utility)),
                        ],
                    );
                }
                if commit.utility > self.best_utility + self.config.convergence_tol {
                    self.best_utility = commit.utility;
                    improved = Some((r_idx, commit.chain));
                    self.last_improvement = self.iteration;
                }
                min_ln_timer = min_ln_timer.min(proposal.ln_timer);
            }
        }
        if let Some((r_idx, c_idx)) = improved {
            self.best_solution = self.replicas[r_idx].chains[c_idx].solution().clone();
            self.obs.emit(
                "se_improve",
                self.vtime,
                &[
                    ("iter", Value::U64(self.iteration)),
                    ("utility", Value::F64(self.best_utility)),
                ],
            );
            self.obs.incr("se.improvements");
        }
        // `exp` and the clamp are monotone non-decreasing, so taking the
        // min in log space and exponentiating once is bit-identical to the
        // old per-proposal `exp(…).clamp(…)` fold. The finiteness guard
        // must run on the *log* value: a commit-free round leaves
        // `min_ln_timer` at +∞ and the virtual clock untouched, whereas
        // `exp(∞).clamp(0, 1e12)` would be a finite 1e12.
        if min_ln_timer.is_finite() {
            self.vtime += min_ln_timer.exp().clamp(0.0, 1e12);
        }
        if self.iteration.is_multiple_of(self.config.record_every) {
            self.record_point();
        }
        if self.iteration.is_multiple_of(self.chain_sample_every()) {
            self.emit_chain_points();
        }
    }

    /// Phase 1 of [`SeEngine::step`]: every chain of every replica races
    /// its timers and commits the winning proposal, partitioned across
    /// [`SeEngine::with_threads`] workers in contiguous replica chunks
    /// (the seed-per-task, index-order-merge idiom of the experiment
    /// harness). Workers write into disjoint per-replica output slots and
    /// never touch telemetry or engine-level state, so the merge phase
    /// observes identical commit sequences at any thread count.
    fn race_replicas(&mut self) -> Vec<Vec<ChainCommit>> {
        let mut commits: Vec<Vec<ChainCommit>> = self.replicas.iter().map(|_| Vec::new()).collect();
        let instance = &self.instance;
        let config = &self.config;
        let workers = self.threads.min(self.replicas.len()).max(1);
        if workers <= 1 {
            for (replica, out) in self.replicas.iter_mut().zip(commits.iter_mut()) {
                *out = race_replica(replica, instance, config);
            }
            return commits;
        }
        let chunk = self.replicas.len().div_ceil(workers);
        crossbeam::scope(|s| {
            for (reps, outs) in self
                .replicas
                .chunks_mut(chunk)
                .zip(commits.chunks_mut(chunk))
            {
                s.spawn(move |_| {
                    for (replica, out) in reps.iter_mut().zip(outs.iter_mut()) {
                        *out = race_replica(replica, instance, config);
                    }
                });
            }
        })
        // lint: allow(P1, a worker panic is already a bug; propagating it beats deadlocking the merge)
        .expect("SE race worker panicked");
        commits
    }

    /// `true` once the convergence window has elapsed without improvement.
    pub fn is_converged(&self) -> bool {
        self.config.convergence_window > 0
            && self.iteration >= self.last_improvement + self.config.convergence_window
    }

    /// Runs until convergence or the iteration budget, then finalizes per
    /// Alg. 1 lines 22–27 (including the full selection `f_{|I_j|}` when it
    /// fits in `Ĉ`).
    pub fn run(mut self) -> SeOutcome {
        while self.iteration < self.config.max_iterations && !self.is_converged() {
            self.step();
        }
        self.finish()
    }

    /// Finalizes without running further iterations.
    pub fn finish(mut self) -> SeOutcome {
        if self.config.include_full_solution {
            let full = Solution::full(&self.instance);
            if self.instance.is_feasible(&full) {
                let u = self.instance.utility(&full);
                if u > self.best_utility {
                    self.best_utility = u;
                    self.best_solution = full;
                }
            }
        }
        self.record_point();
        self.obs.emit(
            "se_converged",
            self.vtime,
            &[
                ("iter", Value::U64(self.iteration)),
                ("best", Value::F64(self.best_utility)),
                ("converged", Value::Bool(self.is_converged())),
            ],
        );
        self.obs.set_gauge("se.best_utility", self.best_utility);
        SeOutcome {
            converged: self.is_converged(),
            iterations: self.iteration,
            best_solution: self.best_solution,
            best_utility: self.best_utility,
            trajectory: self.trajectory,
        }
    }

    /// Handles a committee *join* (Alg. 1 lines 9–12): the epoch gains one
    /// shard, the deadline and every age term are re-derived, and chains
    /// are re-initialized or warm-started per `policy`.
    ///
    /// # Errors
    ///
    /// Propagates [`Instance::with_joined`] errors (duplicate committee).
    pub fn handle_join(&mut self, shard: ShardInfo, policy: DynamicsPolicy) -> Result<()> {
        let committee = shard.committee();
        let utility_before = self.current_best_utility();
        let new_instance = self.instance.with_joined(shard)?;
        let warm: Option<Vec<Solution>> = match policy {
            DynamicsPolicy::Reinitialize => None,
            DynamicsPolicy::Trim => Some(
                self.replicas
                    .iter()
                    .flat_map(|r| r.chains.iter())
                    .map(|c| {
                        // Same indices survive; one more unselected slot.
                        let mut grown = Solution::empty(new_instance.len());
                        for i in c.solution().iter_selected() {
                            grown.insert(i, &new_instance);
                        }
                        grown
                    })
                    .collect(),
            ),
        };
        self.instance = new_instance;
        self.after_instance_change(warm)?;
        self.emit_dynamic("join", committee, utility_before);
        Ok(())
    }

    /// Handles a committee *leave/failure* (paper §V): the shard is removed
    /// from the epoch, the solution space is trimmed (`F → G`), and chains
    /// continue over the trimmed space (`Trim`) or restart (`Reinitialize`).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownCommittee`] if the committee has no shard here, or
    /// [`Error::Infeasible`] if the survivors cannot satisfy the
    /// constraints.
    pub fn handle_leave(
        &mut self,
        committee: mvcom_types::CommitteeId,
        policy: DynamicsPolicy,
    ) -> Result<()> {
        let utility_before = self.current_best_utility();
        let (new_instance, removed_idx) = self.instance.without_committee(committee)?;
        let warm: Option<Vec<Solution>> = match policy {
            DynamicsPolicy::Reinitialize => None,
            DynamicsPolicy::Trim => Some(
                self.replicas
                    .iter()
                    .flat_map(|r| r.chains.iter())
                    .map(|c| c.solution().project_out(removed_idx, &new_instance))
                    .collect(),
            ),
        };
        self.instance = new_instance;
        self.after_instance_change(warm)?;
        self.emit_dynamic("leave", committee, utility_before);
        Ok(())
    }

    fn emit_dynamic(
        &self,
        event: &'static str,
        committee: mvcom_types::CommitteeId,
        utility_before: f64,
    ) {
        self.obs.emit(
            "se_dynamic",
            self.vtime,
            &[
                ("iter", Value::U64(self.iteration)),
                ("event", Value::from(event)),
                ("committee", Value::from(committee.0)),
                ("utility_before", Value::F64(utility_before)),
                ("utility_after", Value::F64(self.current_best_utility())),
            ],
        );
    }

    fn after_instance_change(&mut self, warm: Option<Vec<Solution>>) -> Result<()> {
        // The recorded best belongs to the previous epoch shape (different
        // shard indices and deadline); restart the tracker.
        self.best_utility = f64::NEG_INFINITY;
        self.best_solution = Solution::empty(self.instance.len());
        self.build_replicas(warm)?;
        for replica in &mut self.replicas {
            for chain in &mut replica.chains {
                chain.refresh_utility(&self.instance);
            }
        }
        self.seed_best();
        self.last_improvement = self.iteration;
        self.record_point();
        Ok(())
    }

    /// The feasible cardinality range for chains.
    fn cardinality_range(&self) -> std::ops::RangeInclusive<usize> {
        let lo = self.instance.n_min().max(1);
        let hi = self
            .instance
            .max_feasible_cardinality()
            .min(self.instance.len().saturating_sub(1));
        lo..=hi
    }

    fn build_replicas(&mut self, warm: Option<Vec<Solution>>) -> Result<SeReplicaStats> {
        let cards = stride_cardinalities(self.cardinality_range(), self.config.max_chains);
        let mut master = mvcom_simnet::rng::master(self.config.seed ^ self.iteration);
        let mut replicas = Vec::with_capacity(self.config.gamma);
        let warm_pool = warm.unwrap_or_default();
        let mut skipped = 0usize;
        for g in 0..self.config.gamma {
            let mut rng = mvcom_simnet::rng::fork(&mut master, &format!("replica-{g}"));
            let mut chains = Vec::new();
            for n in cards.iter().copied() {
                // Prefer a warm solution with this cardinality if one exists.
                let warm_match = warm_pool
                    .iter()
                    .find(|s| s.selected_count() == n && self.instance.within_capacity(s));
                let chain = match warm_match {
                    Some(s) => Chain::from_solution(&self.instance, s.clone()),
                    None => match Chain::init(&self.instance, n, &self.config, &mut rng) {
                        Ok(c) => c,
                        Err(Error::Infeasible { .. }) => {
                            skipped += 1;
                            continue;
                        }
                        Err(e) => return Err(e),
                    },
                };
                chains.push(chain);
            }
            replicas.push(Replica { chains, rng });
        }
        let any_chain = replicas.iter().any(|r| !r.chains.is_empty());
        let full = Solution::full(&self.instance);
        if !any_chain && !self.instance.is_feasible(&full) {
            return Err(Error::infeasible(
                "no feasible cardinality admits a chain and the full selection violates a constraint",
            ));
        }
        self.replicas = replicas;
        // Rebuilt chains start on the default sampler; re-apply the knob.
        self.apply_sampler();
        Ok(SeReplicaStats { skipped })
    }

    /// Seeds the best-so-far tracker from the freshly built chains (and the
    /// full solution when no chains exist).
    fn seed_best(&mut self) {
        for replica in &self.replicas {
            for chain in &replica.chains {
                if chain.utility() > self.best_utility {
                    self.best_utility = chain.utility();
                    self.best_solution = chain.solution().clone();
                }
            }
        }
        if self.best_utility == f64::NEG_INFINITY {
            let full = Solution::full(&self.instance);
            if self.instance.is_feasible(&full) {
                self.best_utility = self.instance.utility(&full);
                self.best_solution = full;
            }
        }
    }

    fn record_point(&mut self) {
        let current = self.current_best_utility();
        self.obs.emit(
            "se_point",
            self.vtime,
            &[
                ("iter", Value::U64(self.iteration)),
                ("current_best", Value::F64(current)),
                ("best_so_far", Value::F64(self.best_utility)),
            ],
        );
        self.trajectory.push(TrajectoryPoint {
            iteration: self.iteration,
            vtime: self.vtime,
            current_best: current,
            best_so_far: self.best_utility,
        });
    }

    fn emit_init(&self) {
        if !self.obs.enabled(ObsLevel::Events) {
            return;
        }
        let chains: usize = self.replicas.iter().map(|r| r.chains.len()).sum();
        let range = self.cardinality_range();
        self.obs.emit(
            "se_init",
            self.vtime,
            &[
                ("iter", Value::U64(self.iteration)),
                ("gamma", Value::from(self.config.gamma)),
                ("chains", Value::from(chains)),
                ("card_lo", Value::from(*range.start())),
                ("card_hi", Value::from(*range.end())),
                ("instance_len", Value::from(self.instance.len())),
            ],
        );
    }

    /// Rounds between two `se_chain_point` samples: 50 samples per budget,
    /// never zero (plus one unconditional sample when obs is attached).
    fn chain_sample_every(&self) -> u64 {
        (self.config.max_iterations / 50).max(1)
    }

    fn emit_chain_points(&self) {
        if !self.obs.enabled(ObsLevel::Events) {
            return;
        }
        for (g, replica) in self.replicas.iter().enumerate() {
            for (c, chain) in replica.chains.iter().enumerate() {
                self.obs.emit(
                    "se_chain_point",
                    self.vtime,
                    &[
                        ("replica", Value::from(g)),
                        ("chain", Value::from(c)),
                        ("card", Value::from(chain.cardinality())),
                        ("iter", Value::U64(self.iteration)),
                        ("utility", Value::F64(chain.utility())),
                    ],
                );
            }
        }
    }
}

/// Bookkeeping from replica construction (how many cardinalities had to be
/// skipped as capacity-infeasible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SeReplicaStats {
    skipped: usize,
}

/// One committed proposal from the race phase of [`SeEngine::step`]:
/// which chain won, the winning proposal, and the chain's utility after
/// the commit was applied. Collected per replica in chain order so the
/// serial merge replays exactly the single-loop sequence.
#[derive(Debug, Clone, Copy)]
struct ChainCommit {
    chain: usize,
    proposal: Proposal,
    utility: f64,
}

/// Races and commits every chain of one replica. Touches only
/// replica-local state (the replica's chains and its own RNG stream) —
/// no telemetry, no engine fields — which is what makes the fan-out in
/// [`SeEngine::step`] safe to run from scoped workers.
fn race_replica(replica: &mut Replica, instance: &Instance, config: &SeConfig) -> Vec<ChainCommit> {
    let mut commits = Vec::new();
    for c_idx in 0..replica.chains.len() {
        let Some(proposal) = replica.chains[c_idx].race(instance, config, &mut replica.rng) else {
            continue;
        };
        replica.chains[c_idx].apply(&proposal, instance);
        commits.push(ChainCommit {
            chain: c_idx,
            proposal,
            utility: replica.chains[c_idx].utility(),
        });
    }
    commits
}

/// The chain cardinalities for one replica: the whole feasible range when
/// it fits within `max_chains`, otherwise at most `max_chains` evenly
/// spaced cardinalities with both endpoints kept (the `N_min` floor and
/// the capacity ceiling anchor the solution family — see
/// [`SeConfig::max_chains`]). At the `usize::MAX` default this is exactly
/// the full range, so pre-scale behavior is unchanged.
fn stride_cardinalities(range: std::ops::RangeInclusive<usize>, max_chains: usize) -> Vec<usize> {
    let (lo, hi) = (*range.start(), *range.end());
    if lo > hi {
        return Vec::new();
    }
    let width = hi - lo + 1;
    if width <= max_chains {
        return range.collect();
    }
    if max_chains == 1 {
        return vec![lo];
    }
    let mut cards: Vec<usize> = (0..max_chains)
        .map(|i| lo + i * (width - 1) / (max_chains - 1))
        .collect();
    // width > max_chains makes the index map strictly increasing, but
    // dedup is cheap insurance against rounding collisions.
    cards.dedup();
    cards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceBuilder;
    use mvcom_types::{CommitteeId, SimTime, TwoPhaseLatency};

    fn shard(id: u32, txs: u64, latency: f64) -> ShardInfo {
        ShardInfo::new(
            CommitteeId(id),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(latency)),
        )
    }

    fn instance(n: usize) -> Instance {
        InstanceBuilder::new()
            .alpha(1.5)
            .capacity((n as u64) * 120)
            .n_min(n / 3)
            .shards(
                (0..n)
                    .map(|i| {
                        shard(
                            i as u32,
                            80 + (i as u64 * 13) % 90,
                            400.0 + ((i as f64 * 71.0) % 500.0),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn run_returns_feasible_solution() {
        let inst = instance(30);
        let outcome = SeEngine::new(&inst, SeConfig::fast_test(1)).unwrap().run();
        assert!(inst.is_feasible(&outcome.best_solution));
        assert!((inst.utility(&outcome.best_solution) - outcome.best_utility).abs() < 1e-6);
        assert!(outcome.iterations > 0);
    }

    #[test]
    fn trajectory_best_so_far_is_monotone() {
        let inst = instance(30);
        let outcome = SeEngine::new(&inst, SeConfig::fast_test(2)).unwrap().run();
        let pts = outcome.trajectory.points();
        assert!(pts.len() > 2);
        for w in pts.windows(2) {
            assert!(w[1].best_so_far >= w[0].best_so_far - 1e-9);
            assert!(w[1].iteration >= w[0].iteration);
            assert!(w[1].vtime >= w[0].vtime);
        }
    }

    #[test]
    fn utility_improves_over_initialization() {
        let inst = instance(40);
        let engine = SeEngine::new(&inst, SeConfig::paper(3).with_max_iterations(1500)).unwrap();
        let initial = engine.current_best_utility();
        let outcome = engine.run();
        assert!(
            outcome.best_utility >= initial,
            "best {} < initial {initial}",
            outcome.best_utility
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = instance(25);
        let a = SeEngine::new(&inst, SeConfig::fast_test(9)).unwrap().run();
        let b = SeEngine::new(&inst, SeConfig::fast_test(9)).unwrap().run();
        assert_eq!(a.best_utility, b.best_utility);
        assert_eq!(a.best_solution, b.best_solution);
        assert_eq!(a.trajectory, b.trajectory);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let inst = instance(25);
        let a = SeEngine::new(&inst, SeConfig::fast_test(10)).unwrap().run();
        let b = SeEngine::new(&inst, SeConfig::fast_test(11)).unwrap().run();
        // Final utilities may tie, but the trajectories must differ.
        assert_ne!(a.trajectory, b.trajectory);
    }

    #[test]
    fn stride_keeps_full_range_within_budget() {
        assert_eq!(stride_cardinalities(3..=7, usize::MAX), vec![3, 4, 5, 6, 7]);
        assert_eq!(stride_cardinalities(3..=7, 5), vec![3, 4, 5, 6, 7]);
        assert_eq!(stride_cardinalities(4..=4, 1), vec![4]);
        let empty = std::ops::RangeInclusive::new(5, 4);
        assert!(stride_cardinalities(empty, 8).is_empty());
    }

    #[test]
    fn stride_bounds_and_keeps_endpoints() {
        for (lo, hi, k) in [(1usize, 100usize, 4usize), (10, 9_999, 7), (2, 11, 3)] {
            let cards = stride_cardinalities(lo..=hi, k);
            assert!(cards.len() <= k, "{lo}..={hi} @ {k}: {cards:?}");
            assert_eq!(cards.first(), Some(&lo));
            assert_eq!(cards.last(), Some(&hi));
            assert!(cards.windows(2).all(|w| w[0] < w[1]), "{cards:?}");
        }
        assert_eq!(stride_cardinalities(5..=50, 1), vec![5]);
    }

    #[test]
    fn max_chains_bounds_chains_per_replica() {
        let inst = instance(40);
        let budget = 3;
        let engine = SeEngine::new(
            &inst,
            SeConfig {
                max_chains: budget,
                ..SeConfig::fast_test(12)
            },
        )
        .unwrap();
        for replica in &engine.replicas {
            assert!(replica.chains.len() <= budget);
        }
        let outcome = engine.run();
        assert!(inst.is_feasible(&outcome.best_solution));
        assert!(outcome.best_utility > 0.0);
    }

    #[test]
    fn generous_max_chains_matches_default_behavior() {
        let inst = instance(25);
        let a = SeEngine::new(&inst, SeConfig::fast_test(9)).unwrap().run();
        let b = SeEngine::new(
            &inst,
            SeConfig {
                max_chains: 1_000,
                ..SeConfig::fast_test(9)
            },
        )
        .unwrap()
        .run();
        assert_eq!(a.best_solution, b.best_solution);
        assert_eq!(a.trajectory, b.trajectory);
    }

    #[test]
    fn convergence_window_triggers() {
        let inst = instance(15);
        let cfg = SeConfig {
            max_iterations: 100_000,
            convergence_window: 50,
            ..SeConfig::fast_test(4)
        };
        let outcome = SeEngine::new(&inst, cfg).unwrap().run();
        assert!(outcome.converged);
        assert!(outcome.iterations < 100_000);
    }

    #[test]
    fn respects_iteration_budget() {
        let inst = instance(15);
        let cfg = SeConfig {
            max_iterations: 37,
            convergence_window: 0,
            ..SeConfig::fast_test(5)
        };
        let outcome = SeEngine::new(&inst, cfg).unwrap().run();
        assert_eq!(outcome.iterations, 37);
        assert!(!outcome.converged);
    }

    #[test]
    fn larger_gamma_does_not_hurt() {
        // Fig. 8 shape: more replicas converge at least as well for a fixed
        // (small) iteration budget.
        let inst = instance(40);
        let budget = 120;
        let u1 = SeEngine::new(
            &inst,
            SeConfig::paper(6).with_gamma(1).with_max_iterations(budget),
        )
        .unwrap()
        .run()
        .best_utility;
        let u10 = SeEngine::new(
            &inst,
            SeConfig::paper(6)
                .with_gamma(10)
                .with_max_iterations(budget),
        )
        .unwrap()
        .run()
        .best_utility;
        assert!(u10 >= u1 - 1e-9, "gamma=10 {u10} < gamma=1 {u1}");
    }

    #[test]
    fn join_extends_instance_and_keeps_feasibility() {
        let inst = instance(20);
        let mut engine = SeEngine::new(&inst, SeConfig::fast_test(7)).unwrap();
        for _ in 0..50 {
            engine.step();
        }
        engine
            .handle_join(shard(100, 90, 950.0), DynamicsPolicy::Trim)
            .unwrap();
        assert_eq!(engine.instance().len(), 21);
        for _ in 0..50 {
            engine.step();
        }
        let outcome = engine.finish();
        assert_eq!(outcome.best_solution.len(), 21);
    }

    #[test]
    fn leave_trims_instance_and_recovers() {
        let inst = instance(20);
        for policy in [DynamicsPolicy::Trim, DynamicsPolicy::Reinitialize] {
            let mut engine = SeEngine::new(&inst, SeConfig::fast_test(8)).unwrap();
            for _ in 0..50 {
                engine.step();
            }
            engine.handle_leave(CommitteeId(3), policy).unwrap();
            assert_eq!(engine.instance().len(), 19);
            assert!(engine.instance().index_of(CommitteeId(3)).is_none());
            for _ in 0..50 {
                engine.step();
            }
            let outcome = engine.finish();
            let final_inst = InstanceBuilder::new()
                .alpha(1.5)
                .capacity(inst.capacity())
                .n_min(inst.n_min())
                .shards(
                    inst.shards()
                        .iter()
                        .filter(|s| s.committee() != CommitteeId(3))
                        .copied()
                        .collect(),
                )
                .build()
                .unwrap();
            assert!(final_inst.is_feasible(&outcome.best_solution), "{policy:?}");
        }
    }

    #[test]
    fn leave_of_unknown_committee_errors() {
        let inst = instance(10);
        let mut engine = SeEngine::new(&inst, SeConfig::fast_test(12)).unwrap();
        assert!(engine
            .handle_leave(CommitteeId(999), DynamicsPolicy::Trim)
            .is_err());
    }

    #[test]
    fn duplicate_join_errors() {
        let inst = instance(10);
        let mut engine = SeEngine::new(&inst, SeConfig::fast_test(13)).unwrap();
        assert!(engine
            .handle_join(shard(0, 50, 100.0), DynamicsPolicy::Trim)
            .is_err());
    }

    #[test]
    fn chain_utilities_cover_cardinality_range() {
        let inst = instance(30);
        let engine = SeEngine::new(&inst, SeConfig::fast_test(14)).unwrap();
        let cards: std::collections::BTreeSet<usize> =
            engine.chain_utilities().iter().map(|&(n, _)| n).collect();
        let lo = inst.n_min().max(1);
        assert!(cards.contains(&lo));
        assert!(cards.len() > 1);
        for &n in &cards {
            assert!(n >= lo);
            assert!(n <= inst.max_feasible_cardinality());
        }
    }

    #[test]
    fn full_solution_considered_when_feasible() {
        // Capacity fits everything; n_min equals len so the chain range is
        // empty and the answer must be the full selection.
        let shards: Vec<ShardInfo> = (0..5).map(|i| shard(i, 10, 100.0 + f64::from(i))).collect();
        let inst = InstanceBuilder::new()
            .alpha(5.0)
            .capacity(1_000)
            .n_min(5)
            .shards(shards)
            .build()
            .unwrap();
        let outcome = SeEngine::new(&inst, SeConfig::fast_test(15)).unwrap().run();
        assert_eq!(outcome.best_solution.selected_count(), 5);
        assert!((outcome.best_utility - inst.utility(&Solution::full(&inst))).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_round_trips_and_resumes_the_run() {
        let inst = instance(25);
        let mut engine = SeEngine::new(&inst, SeConfig::fast_test(31)).unwrap();
        for _ in 0..80 {
            engine.step();
        }
        let before = engine.current_best_utility();
        let ckpt = engine.checkpoint();
        assert_eq!(ckpt.version, 80);
        assert!(ckpt.validate(inst.len()).is_ok());

        // The snapshot survives a process boundary as JSON.
        let json = serde_json::to_string(&ckpt).unwrap();
        let ckpt: crate::se::SeCheckpoint = serde_json::from_str(&json).unwrap();

        // The killed solver's replacement resumes from the snapshot.
        let mut restored =
            SeEngine::from_checkpoint(&inst, SeConfig::fast_test(31), &ckpt).unwrap();
        assert_eq!(restored.iteration(), 80);
        assert_eq!(restored.restored_chains(), ckpt.chain_count());
        assert!(restored.restored_chains() > 0);
        assert!(
            restored.current_best_utility() >= before - 1e-9,
            "restored chains must stand where the originals stood"
        );
        for _ in 0..200 {
            restored.step();
        }
        let outcome = restored.finish();
        assert!(inst.is_feasible(&outcome.best_solution));
        assert!(outcome.best_utility >= before - 1e-9);
    }

    #[test]
    fn from_checkpoint_rejects_mismatch_and_corruption() {
        let inst = instance(12);
        let mut engine = SeEngine::new(&inst, SeConfig::fast_test(32)).unwrap();
        for _ in 0..20 {
            engine.step();
        }
        let ckpt = engine.checkpoint();
        // Wrong seed.
        assert!(SeEngine::from_checkpoint(&inst, SeConfig::fast_test(33), &ckpt).is_err());
        // Corrupt indices (point past the instance).
        let mut bad = ckpt.clone();
        bad.best_selected = vec![inst.len() + 5];
        assert!(SeEngine::from_checkpoint(&inst, SeConfig::fast_test(32), &bad).is_err());
        // A smaller instance cannot host the snapshot.
        let small = instance(6);
        assert!(SeEngine::from_checkpoint(&small, SeConfig::fast_test(32), &ckpt).is_err());
    }

    #[test]
    fn post_failure_restore_reconverges_within_the_theorem_2_bound() {
        // Kill the solver mid-run, restore from its checkpoint, then lose
        // a committee (Trim): Theorem 2 bounds the post-perturbation
        // utility by the best utility of the trimmed space, and the
        // restored engine must re-converge to a utility within that bound.
        let inst = instance(20);
        let mut engine = SeEngine::new(&inst, SeConfig::fast_test(34)).unwrap();
        for _ in 0..150 {
            engine.step();
        }
        let ckpt = engine.checkpoint();
        drop(engine); // the solver process dies here

        let mut restored =
            SeEngine::from_checkpoint(&inst, SeConfig::fast_test(34), &ckpt).unwrap();
        restored
            .handle_leave(CommitteeId(4), DynamicsPolicy::Trim)
            .unwrap();
        for _ in 0..400 {
            restored.step();
        }
        let outcome = restored.finish();

        // The best utility over the trimmed space G, computed by an
        // independent fresh solve of the survivor instance.
        let trimmed = InstanceBuilder::new()
            .alpha(1.5)
            .capacity(inst.capacity())
            .n_min(inst.n_min())
            .shards(
                inst.shards()
                    .iter()
                    .filter(|s| s.committee() != CommitteeId(4))
                    .copied()
                    .collect(),
            )
            .build()
            .unwrap();
        let best_trimmed = SeEngine::new(&trimmed, SeConfig::paper(35).with_max_iterations(3_000))
            .unwrap()
            .run()
            .best_utility;
        let bound = crate::theory::perturbation_bound(best_trimmed);
        assert!(trimmed.is_feasible(&outcome.best_solution));
        assert!(
            outcome.best_utility <= bound + 1e-9,
            "post-failure utility {} exceeds the Theorem 2 bound {bound}",
            outcome.best_utility
        );
        assert!(
            outcome.best_utility >= 0.9 * bound,
            "restored engine failed to re-converge: {} vs bound {bound}",
            outcome.best_utility
        );
    }

    #[test]
    fn finds_optimum_on_tiny_instance() {
        // 6 shards, exhaustively checkable: SE must land on the optimum.
        let shards = vec![
            shard(0, 100, 900.0),
            shard(1, 120, 800.0),
            shard(2, 80, 990.0),
            shard(3, 60, 400.0),
            shard(4, 90, 950.0),
            shard(5, 110, 700.0),
        ];
        let inst = InstanceBuilder::new()
            .alpha(2.0)
            .capacity(300)
            .n_min(1)
            .shards(shards)
            .build()
            .unwrap();
        // Exhaustive optimum.
        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..64 {
            let sol = Solution::from_indices(6, (0..6).filter(|&i| mask >> i & 1 == 1), &inst);
            if inst.is_feasible(&sol) {
                best = best.max(inst.utility(&sol));
            }
        }
        let cfg = SeConfig {
            gamma: 4,
            max_iterations: 2_000,
            convergence_window: 400,
            ..SeConfig::paper(16)
        };
        let outcome = SeEngine::new(&inst, cfg).unwrap().run();
        assert!(
            (outcome.best_utility - best).abs() < 1e-6,
            "SE {} vs optimum {best}",
            outcome.best_utility
        );
    }
}
