//! Real-thread execution of the Γ replicas (paper §IV-A/§IV-D).
//!
//! The paper stresses that the SE algorithm "consists of multiple
//! independent threads that can run in either one single machine or
//! multiple distributed machines". [`SeEngine`](crate::se::SeEngine)
//! realizes the algorithm in deterministic virtual time; this module runs
//! the same replicas on real OS threads via `crossbeam::scope`, sharing
//! only what the paper says the threads share — "a very limited state
//! information such as the RESET signals and the current system utility".
//!
//! The thread interleaving makes results *non-deterministic across runs*
//! (unlike the virtual-time engine); use this runner to demonstrate the
//! distributed-execution property or to exploit multicore wall-clock
//! speedups, and the virtual-time engine for reproducible experiments.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mvcom_types::{Error, Result};

use crate::problem::Instance;
use crate::se::chain::Chain;
use crate::se::config::SeConfig;
use crate::solution::Solution;

/// Shared cross-thread state: the best feasible solution seen anywhere.
#[derive(Debug)]
struct SharedBest {
    slot: Mutex<Option<(f64, Solution)>>,
    /// Monotone counter of improvements — doubles as the "current system
    /// utility" broadcast of Fig. 5.
    improvements: AtomicU64,
}

impl SharedBest {
    fn new() -> SharedBest {
        SharedBest {
            slot: Mutex::new(None),
            improvements: AtomicU64::new(0),
        }
    }

    fn offer(&self, utility: f64, solution: &Solution) {
        let mut slot = self.slot.lock();
        if slot.as_ref().is_none_or(|(u, _)| utility > *u) {
            *slot = Some((utility, solution.clone()));
            self.improvements.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn take(self) -> Option<(f64, Solution)> {
        self.slot.into_inner()
    }
}

/// Multi-threaded SE runner.
///
/// # Example
///
/// ```
/// use mvcom_core::problem::InstanceBuilder;
/// use mvcom_core::se::{ParallelRunner, SeConfig};
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// # fn main() -> Result<(), mvcom_types::Error> {
/// let shards = (0..16).map(|i| ShardInfo::new(
///     CommitteeId(i), 100,
///     TwoPhaseLatency::from_total(SimTime::from_secs(500.0 + 5.0 * f64::from(i))),
/// )).collect();
/// let instance = InstanceBuilder::new()
///     .alpha(1.5).capacity(1_200).n_min(4).shards(shards).build()?;
/// let (utility, solution) = ParallelRunner::new(SeConfig::fast_test(0))
///     .run(&instance)?;
/// assert!(instance.is_feasible(&solution));
/// assert!(utility.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParallelRunner {
    config: SeConfig,
}

impl ParallelRunner {
    /// Creates a runner; `config.gamma` becomes the OS thread count.
    pub fn new(config: SeConfig) -> ParallelRunner {
        ParallelRunner { config }
    }

    /// Runs Γ replica threads to completion and returns the best feasible
    /// `(utility, solution)` found by any thread.
    ///
    /// # Errors
    ///
    /// Configuration errors, or [`Error::Infeasible`] when no chain can be
    /// initialized and the full selection is infeasible.
    pub fn run(&self, instance: &Instance) -> Result<(f64, Solution)> {
        self.config.validate()?;
        let shared = SharedBest::new();
        let stop = AtomicBool::new(false);
        let config = self.config;

        crossbeam::scope(|scope| {
            for g in 0..config.gamma {
                let shared = &shared;
                let stop = &stop;
                scope.spawn(move |_| {
                    run_replica(instance, &config, g, shared, stop);
                });
            }
        })
        .map_err(|_| Error::simulation("a replica thread panicked"))?;

        // Line 25: the full selection joins the candidate set when feasible.
        if config.include_full_solution {
            let full = Solution::full(instance);
            if instance.is_feasible(&full) {
                shared.offer(instance.utility(&full), &full);
            }
        }
        shared
            .take()
            .ok_or_else(|| Error::infeasible("no replica produced a feasible solution"))
    }
}

/// One replica: the full chain family raced locally, publishing
/// improvements to the shared best tracker.
fn run_replica(
    instance: &Instance,
    config: &SeConfig,
    replica_idx: usize,
    shared: &SharedBest,
    stop: &AtomicBool,
) {
    let mut master = mvcom_simnet::rng::master(config.seed);
    let mut rng = mvcom_simnet::rng::fork(&mut master, &format!("parallel-replica-{replica_idx}"));

    let lo = instance.n_min().max(1);
    let hi = instance
        .max_feasible_cardinality()
        .min(instance.len().saturating_sub(1));
    let mut chains: Vec<Chain> = (lo..=hi)
        .filter_map(|n| Chain::init(instance, n, config, &mut rng).ok())
        .collect();
    if chains.is_empty() {
        return;
    }
    for chain in &chains {
        shared.offer(chain.utility(), chain.solution());
    }

    let mut since_improvement = 0u64;
    for _ in 0..config.max_iterations {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // One round: every chain's local timer race fires once (State
        // Transit), then all timers are RESET for the next round.
        let improved_before = shared.improvements.load(Ordering::Relaxed);
        let mut any_fired = false;
        for chain in chains.iter_mut() {
            let Some(proposal) = chain.race(instance, config, &mut rng) else {
                continue;
            };
            chain.apply(&proposal, instance);
            any_fired = true;
            shared.offer(chain.utility(), chain.solution());
        }
        if !any_fired {
            break;
        }
        let improved_after = shared.improvements.load(Ordering::Relaxed);
        if improved_after > improved_before {
            since_improvement = 0;
        } else {
            since_improvement += 1;
        }
        if config.convergence_window > 0 && since_improvement >= config.convergence_window {
            stop.store(true, Ordering::Relaxed);
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceBuilder;
    use crate::se::SeEngine;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};

    fn instance(n: usize) -> Instance {
        InstanceBuilder::new()
            .alpha(1.5)
            .capacity((n as u64) * 110)
            .n_min(n / 3)
            .shards(
                (0..n)
                    .map(|i| {
                        ShardInfo::new(
                            CommitteeId(i as u32),
                            70 + (i as u64 * 11) % 90,
                            TwoPhaseLatency::from_total(SimTime::from_secs(
                                300.0 + (i as f64 * 67.0) % 600.0,
                            )),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_run_produces_feasible_solution() {
        let inst = instance(24);
        let (utility, solution) = ParallelRunner::new(SeConfig::fast_test(1).with_gamma(4))
            .run(&inst)
            .unwrap();
        assert!(inst.is_feasible(&solution));
        assert!((inst.utility(&solution) - utility).abs() < 1e-6);
    }

    #[test]
    fn parallel_quality_is_comparable_to_virtual_time() {
        let inst = instance(30);
        let cfg = SeConfig::paper(2).with_gamma(4).with_max_iterations(800);
        let (parallel_u, _) = ParallelRunner::new(cfg).run(&inst).unwrap();
        let virtual_u = SeEngine::new(&inst, cfg).unwrap().run().best_utility;
        // Thread scheduling is nondeterministic; require the parallel run
        // to land within 10% of the virtual-time engine.
        assert!(
            parallel_u >= virtual_u * 0.9,
            "parallel {parallel_u} vs virtual {virtual_u}"
        );
    }

    #[test]
    fn single_thread_gamma_works() {
        let inst = instance(12);
        let (utility, solution) = ParallelRunner::new(SeConfig::fast_test(3).with_gamma(1))
            .run(&inst)
            .unwrap();
        assert!(inst.is_feasible(&solution));
        assert!(utility.is_finite());
    }
}
