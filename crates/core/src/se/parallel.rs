//! Real-thread execution of the Γ replicas (paper §IV-A/§IV-D).
//!
//! The paper stresses that the SE algorithm "consists of multiple
//! independent threads that can run in either one single machine or
//! multiple distributed machines". [`SeEngine`](crate::se::SeEngine)
//! realizes the algorithm in deterministic virtual time; this module runs
//! the same replicas on real OS threads via `crossbeam::scope`, sharing
//! only what the paper says the threads share — "a very limited state
//! information such as the RESET signals and the current system utility".
//!
//! The thread interleaving makes results *non-deterministic across runs*
//! (unlike the virtual-time engine); use this runner to demonstrate the
//! distributed-execution property or to exploit multicore wall-clock
//! speedups, and the virtual-time engine for reproducible experiments.
//!
//! [`ParallelRunner::run_lockstep`] is the third mode: a deterministic
//! round-robin emulation of the same replicas over the same `ResetBus`,
//! used whenever a reproducible event stream is required (telemetry,
//! replay tests). It trades the wall-clock speedup for byte-identical
//! output.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use mvcom_obs::{Obs, ObsLevel, Value};
use mvcom_types::{Error, Result};

use crate::problem::Instance;
use crate::se::chain::Chain;
use crate::se::config::SeConfig;
use crate::solution::Solution;

/// Shared cross-thread state: the best feasible solution seen anywhere.
#[derive(Debug)]
struct SharedBest {
    slot: Mutex<Option<(f64, Solution)>>,
    /// Monotone counter of improvements — doubles as the "current system
    /// utility" broadcast of Fig. 5.
    improvements: AtomicU64,
}

impl SharedBest {
    fn new() -> SharedBest {
        SharedBest {
            slot: Mutex::new(None),
            improvements: AtomicU64::new(0),
        }
    }

    /// Publishes a candidate; returns `true` when it improved the global
    /// best (the publishing replica then broadcasts a RESET).
    fn offer(&self, utility: f64, solution: &Solution) -> bool {
        let mut slot = self.slot.lock();
        if slot.as_ref().is_none_or(|(u, _)| utility > *u) {
            *slot = Some((utility, solution.clone()));
            // lint: allow(C3, telemetry-only counter mutated under the slot lock; it orders after the publish it counts)
            self.improvements.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn take(self) -> Option<(f64, Solution)> {
        self.slot.into_inner()
    }
}

/// Counters describing RESET traffic on the `ResetBus` during one
/// parallel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResetStats {
    /// RESET signals successfully broadcast (version advanced).
    pub broadcast: u64,
    /// RESET deliveries applied by a replica (version change observed).
    pub applied: u64,
    /// Broadcast attempts dropped as lost/stale/duplicate: the sender's
    /// observed version was already superseded when it tried to publish.
    pub ignored_stale: u64,
}

/// The version-stamped RESET broadcast channel of Fig. 5.
///
/// Every signal carries a version: a broadcast only succeeds when the
/// sender's observed version is still current (compare-and-swap), so a
/// signal raced by a concurrent broadcast is *stale* and dropped instead
/// of double-resetting the receivers. Replicas apply a RESET at most once
/// per version, making lost or duplicated deliveries harmless — exactly
/// the at-most-once semantics a crashed-and-recovered solver process
/// needs when it replays its signal log.
#[derive(Debug, Default)]
struct ResetBus {
    version: AtomicU64,
    broadcast: AtomicU64,
    applied: AtomicU64,
    ignored_stale: AtomicU64,
}

impl ResetBus {
    /// Broadcasts a RESET stamped against `observed`; returns `false` (and
    /// counts the signal stale) when another broadcast won the race.
    fn broadcast_from(&self, observed: u64) -> bool {
        match self.version.compare_exchange(
            observed,
            observed + 1,
            // lint: allow(C3, AcqRel on the winning CAS publishes the reset and is the sole synchronization point of the bus — `mvcom-lint model` proves the protocol at these orderings)
            Ordering::AcqRel,
            // lint: allow(C3, a failed CAS only learns the newer version; Acquire pairs with the winner's release half)
            Ordering::Acquire,
        ) {
            Ok(_) => {
                // lint: allow(C3, telemetry-only counter; the version CAS above already ordered the broadcast)
                self.broadcast.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                // lint: allow(C3, telemetry-only counter for dropped stale signals; no data is published on this path)
                self.ignored_stale.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Polls for a new version; updates `last_seen` and returns `true` when
    /// a RESET should be applied.
    fn poll(&self, last_seen: &mut u64) -> bool {
        // lint: allow(C3, Acquire pairs with the broadcaster's AcqRel CAS; a reset is applied at most once per version so a late read only delays delivery)
        let current = self.version.load(Ordering::Acquire);
        if current != *last_seen {
            *last_seen = current;
            // lint: allow(C3, telemetry-only counter; the Acquire load above already ordered the application)
            self.applied.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn stats(&self) -> ResetStats {
        ResetStats {
            broadcast: self.broadcast.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            ignored_stale: self.ignored_stale.load(Ordering::Relaxed),
        }
    }
}

/// Multi-threaded SE runner.
///
/// # Example
///
/// ```
/// use mvcom_core::problem::InstanceBuilder;
/// use mvcom_core::se::{ParallelRunner, SeConfig};
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// # fn main() -> Result<(), mvcom_types::Error> {
/// let shards = (0..16).map(|i| ShardInfo::new(
///     CommitteeId(i), 100,
///     TwoPhaseLatency::from_total(SimTime::from_secs(500.0 + 5.0 * f64::from(i))),
/// )).collect();
/// let instance = InstanceBuilder::new()
///     .alpha(1.5).capacity(1_200).n_min(4).shards(shards).build()?;
/// let (utility, solution) = ParallelRunner::new(SeConfig::fast_test(0))
///     .run(&instance)?;
/// assert!(instance.is_feasible(&solution));
/// assert!(utility.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParallelRunner {
    config: SeConfig,
}

impl ParallelRunner {
    /// Creates a runner; `config.gamma` becomes the OS thread count.
    pub fn new(config: SeConfig) -> ParallelRunner {
        ParallelRunner { config }
    }

    /// Runs Γ replica threads to completion and returns the best feasible
    /// `(utility, solution)` found by any thread.
    ///
    /// # Errors
    ///
    /// Configuration errors, or [`Error::Infeasible`] when no chain can be
    /// initialized and the full selection is infeasible.
    pub fn run(&self, instance: &Instance) -> Result<(f64, Solution)> {
        self.run_with_stats(instance)
            .map(|(utility, solution, _)| (utility, solution))
    }

    /// Like [`ParallelRunner::run`], additionally returning the RESET
    /// traffic counters of the run's `ResetBus`.
    ///
    /// # Errors
    ///
    /// See [`ParallelRunner::run`].
    pub fn run_with_stats(&self, instance: &Instance) -> Result<(f64, Solution, ResetStats)> {
        self.config.validate()?;
        let shared = SharedBest::new();
        let resets = ResetBus::default();
        let stop = AtomicBool::new(false);
        let config = self.config;

        crossbeam::scope(|scope| {
            for g in 0..config.gamma {
                let shared = &shared;
                let resets = &resets;
                let stop = &stop;
                scope.spawn(move |_| {
                    run_replica(instance, &config, g, shared, resets, stop);
                });
            }
        })
        .map_err(|_| Error::simulation("a replica thread panicked"))?;

        // Line 25: the full selection joins the candidate set when feasible.
        if config.include_full_solution {
            let full = Solution::full(instance);
            if instance.is_feasible(&full) {
                shared.offer(instance.utility(&full), &full);
            }
        }
        let stats = resets.stats();
        shared
            .take()
            .map(|(utility, solution)| (utility, solution, stats))
            .ok_or_else(|| Error::infeasible("no replica produced a feasible solution"))
    }

    /// Deterministic single-threaded emulation of the Γ replica threads.
    ///
    /// Replicas advance round-robin, one *round* (every chain fires once)
    /// per replica per iteration — the virtual-time image of the
    /// free-running threads of [`ParallelRunner::run`], sharing the same
    /// `ResetBus` version-CAS semantics and the same shared-best
    /// publication discipline. Because the interleaving is fixed and all
    /// randomness is seeded, two runs with the same `(instance, config)`
    /// produce bit-identical results *and* a byte-identical telemetry
    /// stream on `obs` — this is the runner behind
    /// `mvcom solve --solver par-se --obs-out`.
    ///
    /// Telemetry (all stamped with the round index as the logical clock):
    /// `se_init`, per-replica `span_open`/`span_close`, sampled
    /// `se_chain_point`s (every chain at round 0), `se_improve` with the
    /// publishing replica, `reset_publish`/`reset_apply`/`reset_stale`
    /// with bus version stamps, `se_converged`, and the
    /// `se.resets_*`/`se.improvements` counters.
    ///
    /// # Errors
    ///
    /// Configuration errors, or [`Error::Infeasible`] when no chain can be
    /// initialized and the full selection is infeasible.
    pub fn run_lockstep(
        &self,
        instance: &Instance,
        obs: &Obs,
    ) -> Result<(f64, Solution, ResetStats)> {
        self.config.validate()?;
        let config = &self.config;
        let shared = SharedBest::new();
        let resets = ResetBus::default();
        let trace = obs.enabled(ObsLevel::Trace);

        let lo = instance.n_min().max(1);
        let hi = instance
            .max_feasible_cardinality()
            .min(instance.len().saturating_sub(1));
        let mut replicas: Vec<LockstepReplica> = (0..config.gamma)
            .map(|g| {
                let mut master = mvcom_simnet::rng::master(config.seed);
                let mut rng =
                    mvcom_simnet::rng::fork(&mut master, &format!("parallel-replica-{g}"));
                let chains: Vec<Chain> = (lo..=hi)
                    .filter_map(|n| Chain::init(instance, n, config, &mut rng).ok())
                    .collect();
                LockstepReplica {
                    active: !chains.is_empty(),
                    chains,
                    rng,
                    last_seen: 0,
                    since_improvement: 0,
                    span: None,
                }
            })
            .collect();

        let total_chains: usize = replicas.iter().map(|r| r.chains.len()).sum();
        obs.emit(
            "se_init",
            0.0,
            &[
                ("iter", Value::U64(0)),
                ("gamma", Value::from(config.gamma)),
                ("chains", Value::from(total_chains)),
                ("card_lo", Value::from(lo)),
                ("card_hi", Value::from(hi.max(lo))),
                ("instance_len", Value::from(instance.len())),
            ],
        );

        // Round 0: seed the shared best from every chain's initial state,
        // open the per-replica spans, and sample every chain once so each
        // appears in any events-level file.
        for (g, replica) in replicas.iter_mut().enumerate() {
            if !replica.active {
                continue;
            }
            replica.span = Some(obs.span("se_replica", 0.0, &[("replica", Value::from(g))]));
            for chain in &replica.chains {
                if shared.offer(chain.utility(), chain.solution()) {
                    obs.emit(
                        "se_improve",
                        0.0,
                        &[
                            ("iter", Value::U64(0)),
                            ("utility", Value::F64(chain.utility())),
                            ("replica", Value::from(g)),
                        ],
                    );
                    obs.incr("se.improvements");
                    if resets.poll(&mut replica.last_seen) {
                        emit_reset(obs, "reset_apply", replica.last_seen, g, 0);
                    }
                    let observed = replica.last_seen;
                    if resets.broadcast_from(observed) {
                        emit_reset(obs, "reset_publish", observed + 1, g, 0);
                    } else {
                        emit_reset(obs, "reset_stale", observed, g, 0);
                    }
                }
            }
            emit_chain_points(obs, g, &replica.chains, 0);
        }

        let sample_every = (config.max_iterations / 50).max(1);
        let mut stopped = false;
        let mut final_round = 0u64;
        for round in 1..=config.max_iterations {
            if stopped || replicas.iter().all(|r| !r.active) {
                break;
            }
            final_round = round;
            let t = round as f64;
            for (g, replica) in replicas.iter_mut().enumerate() {
                if !replica.active {
                    continue;
                }
                if stopped {
                    // A RESET-converged peer stopped the run earlier this
                    // round; this replica observes the flag at its next
                    // turn, exactly like the threaded runner's stop check.
                    replica.finish(t);
                    continue;
                }
                let mut any_fired = false;
                for (c, chain) in replica.chains.iter_mut().enumerate() {
                    let Some(proposal) = chain.race(instance, config, &mut replica.rng) else {
                        continue;
                    };
                    if trace {
                        obs.emit(
                            "se_propose",
                            t,
                            &[
                                ("replica", Value::from(g)),
                                ("chain", Value::from(c)),
                                ("iter", Value::U64(round)),
                                ("out", Value::from(proposal.out)),
                                ("inc", Value::from(proposal.inc)),
                                ("delta", Value::F64(proposal.delta)),
                                ("ln_timer", Value::F64(proposal.ln_timer)),
                            ],
                        );
                    }
                    chain.apply(&proposal, instance);
                    any_fired = true;
                    if trace {
                        obs.emit(
                            "se_commit",
                            t,
                            &[
                                ("replica", Value::from(g)),
                                ("chain", Value::from(c)),
                                ("iter", Value::U64(round)),
                                ("utility", Value::F64(chain.utility())),
                            ],
                        );
                    }
                    if shared.offer(chain.utility(), chain.solution()) {
                        obs.emit(
                            "se_improve",
                            t,
                            &[
                                ("iter", Value::U64(round)),
                                ("utility", Value::F64(chain.utility())),
                                ("replica", Value::from(g)),
                            ],
                        );
                        obs.incr("se.improvements");
                        if resets.poll(&mut replica.last_seen) {
                            emit_reset(obs, "reset_apply", replica.last_seen, g, round);
                        }
                        let observed = replica.last_seen;
                        if resets.broadcast_from(observed) {
                            emit_reset(obs, "reset_publish", observed + 1, g, round);
                        } else {
                            emit_reset(obs, "reset_stale", observed, g, round);
                        }
                    }
                }
                if !any_fired {
                    replica.finish(t);
                    continue;
                }
                if resets.poll(&mut replica.last_seen) {
                    emit_reset(obs, "reset_apply", replica.last_seen, g, round);
                    replica.since_improvement = 0;
                } else {
                    replica.since_improvement += 1;
                }
                if config.convergence_window > 0
                    && replica.since_improvement >= config.convergence_window
                {
                    stopped = true;
                    replica.finish(t);
                }
            }
            if round.is_multiple_of(sample_every) {
                for (g, replica) in replicas.iter().enumerate() {
                    if replica.active {
                        emit_chain_points(obs, g, &replica.chains, round);
                    }
                }
            }
        }
        let t_end = final_round as f64;
        for replica in &mut replicas {
            if replica.active {
                replica.finish(t_end);
            }
        }

        if config.include_full_solution {
            let full = Solution::full(instance);
            if instance.is_feasible(&full) {
                shared.offer(instance.utility(&full), &full);
            }
        }
        let stats = resets.stats();
        obs.add("se.resets_broadcast", stats.broadcast);
        obs.add("se.resets_applied", stats.applied);
        obs.add("se.resets_stale", stats.ignored_stale);
        let (utility, solution) = shared
            .take()
            .ok_or_else(|| Error::infeasible("no replica produced a feasible solution"))?;
        obs.emit(
            "se_converged",
            t_end,
            &[
                ("iter", Value::U64(final_round)),
                ("best", Value::F64(utility)),
                ("converged", Value::Bool(stopped)),
            ],
        );
        obs.set_gauge("se.best_utility", utility);
        Ok((utility, solution, stats))
    }
}

/// Per-replica state of the lockstep emulation.
struct LockstepReplica {
    chains: Vec<Chain>,
    rng: mvcom_simnet::SimRng,
    last_seen: u64,
    since_improvement: u64,
    active: bool,
    span: Option<mvcom_obs::Span>,
}

impl LockstepReplica {
    /// Retires the replica at logical time `t`, closing its span.
    fn finish(&mut self, t: f64) {
        self.active = false;
        if let Some(span) = self.span.take() {
            span.close(t);
        }
    }
}

fn emit_reset(obs: &Obs, kind: &'static str, version: u64, replica: usize, round: u64) {
    obs.emit(
        kind,
        round as f64,
        &[
            ("version", Value::U64(version)),
            ("replica", Value::from(replica)),
            ("iter", Value::U64(round)),
        ],
    );
}

fn emit_chain_points(obs: &Obs, replica: usize, chains: &[Chain], round: u64) {
    if !obs.enabled(ObsLevel::Events) {
        return;
    }
    for (c, chain) in chains.iter().enumerate() {
        obs.emit(
            "se_chain_point",
            round as f64,
            &[
                ("replica", Value::from(replica)),
                ("chain", Value::from(c)),
                ("card", Value::from(chain.cardinality())),
                ("iter", Value::U64(round)),
                ("utility", Value::F64(chain.utility())),
            ],
        );
    }
}

/// One replica: the full chain family raced locally, publishing
/// improvements to the shared best tracker and RESET signals to the bus.
fn run_replica(
    instance: &Instance,
    config: &SeConfig,
    replica_idx: usize,
    shared: &SharedBest,
    resets: &ResetBus,
    stop: &AtomicBool,
) {
    let mut master = mvcom_simnet::rng::master(config.seed);
    let mut rng = mvcom_simnet::rng::fork(&mut master, &format!("parallel-replica-{replica_idx}"));

    let lo = instance.n_min().max(1);
    let hi = instance
        .max_feasible_cardinality()
        .min(instance.len().saturating_sub(1));
    let mut chains: Vec<Chain> = (lo..=hi)
        .filter_map(|n| Chain::init(instance, n, config, &mut rng).ok())
        .collect();
    if chains.is_empty() {
        return;
    }
    let mut last_seen = 0u64;
    for chain in &chains {
        if shared.offer(chain.utility(), chain.solution()) {
            resets.poll(&mut last_seen);
            resets.broadcast_from(last_seen);
        }
    }

    let mut since_improvement = 0u64;
    for _ in 0..config.max_iterations {
        // lint: allow(C3, the stop flag is a shutdown hint — a replica that misses it runs extra rounds whose results lose to the published best, never changing the output)
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // One round: every chain's local timer race fires once (State
        // Transit), then all timers are RESET for the next round.
        let mut any_fired = false;
        for chain in chains.iter_mut() {
            let Some(proposal) = chain.race(instance, config, &mut rng) else {
                continue;
            };
            chain.apply(&proposal, instance);
            any_fired = true;
            if shared.offer(chain.utility(), chain.solution()) {
                // A global improvement: broadcast a RESET stamped against
                // the freshest version this replica has seen. Losing the
                // CAS race means another replica's RESET already covered
                // this window — the stale signal is dropped, not re-applied.
                resets.poll(&mut last_seen);
                resets.broadcast_from(last_seen);
            }
        }
        if !any_fired {
            break;
        }
        // A RESET (from any replica, including this one) restarts the
        // local convergence clock, exactly once per version.
        if resets.poll(&mut last_seen) {
            since_improvement = 0;
        } else {
            since_improvement += 1;
        }
        if config.convergence_window > 0 && since_improvement >= config.convergence_window {
            // lint: allow(C3, shutdown hint only — see the paired load at the top of the loop)
            stop.store(true, Ordering::Relaxed);
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceBuilder;
    use crate::se::SeEngine;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};

    fn instance(n: usize) -> Instance {
        InstanceBuilder::new()
            .alpha(1.5)
            .capacity((n as u64) * 110)
            .n_min(n / 3)
            .shards(
                (0..n)
                    .map(|i| {
                        ShardInfo::new(
                            CommitteeId(i as u32),
                            70 + (i as u64 * 11) % 90,
                            TwoPhaseLatency::from_total(SimTime::from_secs(
                                300.0 + (i as f64 * 67.0) % 600.0,
                            )),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_run_produces_feasible_solution() {
        let inst = instance(24);
        let (utility, solution) = ParallelRunner::new(SeConfig::fast_test(1).with_gamma(4))
            .run(&inst)
            .unwrap();
        assert!(inst.is_feasible(&solution));
        assert!((inst.utility(&solution) - utility).abs() < 1e-6);
    }

    #[test]
    fn parallel_quality_is_comparable_to_virtual_time() {
        let inst = instance(30);
        let cfg = SeConfig::paper(2).with_gamma(4).with_max_iterations(800);
        let (parallel_u, _) = ParallelRunner::new(cfg).run(&inst).unwrap();
        let virtual_u = SeEngine::new(&inst, cfg).unwrap().run().best_utility;
        // Thread scheduling is nondeterministic; require the parallel run
        // to land within 10% of the virtual-time engine.
        assert!(
            parallel_u >= virtual_u * 0.9,
            "parallel {parallel_u} vs virtual {virtual_u}"
        );
    }

    #[test]
    fn reset_traffic_is_accounted_for() {
        let inst = instance(24);
        let (utility, solution, resets) = ParallelRunner::new(SeConfig::fast_test(6).with_gamma(4))
            .run_with_stats(&inst)
            .unwrap();
        assert!(inst.is_feasible(&solution));
        assert!(utility.is_finite());
        // The initial seeding alone improves the shared best at least
        // once, so at least one RESET is broadcast and applied.
        assert!(resets.broadcast > 0, "{resets:?}");
        assert!(resets.applied >= resets.broadcast, "{resets:?}");
        // Every attempt either advanced the version or was dropped stale;
        // no signal is double-counted.
        assert!(resets.applied <= resets.broadcast * 4, "{resets:?}");
    }

    #[test]
    fn lockstep_is_deterministic_and_emits_reset_events() {
        let inst = instance(24);
        let cfg = SeConfig::fast_test(5).with_gamma(3);
        let run = || {
            let (obs, buffer) = Obs::memory(ObsLevel::Events);
            let out = ParallelRunner::new(cfg).run_lockstep(&inst, &obs).unwrap();
            obs.flush();
            assert_eq!(obs.invalid_dropped(), 0);
            (out, buffer.contents())
        };
        let ((u_a, sol_a, stats_a), jsonl_a) = run();
        let ((u_b, sol_b, stats_b), jsonl_b) = run();
        assert_eq!(u_a, u_b);
        assert_eq!(sol_a, sol_b);
        assert_eq!(stats_a, stats_b);
        assert_eq!(
            jsonl_a, jsonl_b,
            "lockstep telemetry must be byte-identical"
        );
        assert!(inst.is_feasible(&sol_a));
        for kind in [
            "se_init",
            "se_chain_point",
            "se_improve",
            "reset_publish",
            "reset_apply",
            "se_converged",
            "span_open",
            "span_close",
        ] {
            assert!(
                jsonl_a.contains(&format!("\"kind\":\"{kind}\"")),
                "missing {kind} in lockstep stream"
            );
        }
    }

    #[test]
    fn lockstep_without_obs_matches_lockstep_with_obs() {
        let inst = instance(18);
        let cfg = SeConfig::fast_test(8).with_gamma(2);
        let silent = ParallelRunner::new(cfg)
            .run_lockstep(&inst, &Obs::off())
            .unwrap();
        let (obs, _buffer) = Obs::memory(ObsLevel::Trace);
        let traced = ParallelRunner::new(cfg).run_lockstep(&inst, &obs).unwrap();
        // Telemetry must never perturb the computation.
        assert_eq!(silent.0, traced.0);
        assert_eq!(silent.1, traced.1);
        assert_eq!(silent.2, traced.2);
    }

    #[test]
    fn single_thread_gamma_works() {
        let inst = instance(12);
        let (utility, solution) = ParallelRunner::new(SeConfig::fast_test(3).with_gamma(1))
            .run(&inst)
            .unwrap();
        assert!(inst.is_feasible(&solution));
        assert!(utility.is_finite());
    }
}
