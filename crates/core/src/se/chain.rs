//! One candidate solution `f_n` and its timer mechanics (Algorithms 2 & 3).

use rand::seq::SliceRandom;
use rand::Rng;

use mvcom_types::{Error, Result};

use crate::eval::EvalCache;
use crate::problem::Instance;
use crate::se::config::SeConfig;
use crate::solution::Solution;

/// Strategy for drawing the random swap endpoints in [`Chain::propose`].
///
/// Both strategies consume the *same* RNG draw sequence and return the
/// same index for the same RNG state, bit for bit:
/// [`SeSampler::RankSelect`] only replaces the `O(|I|)`
/// `iter_*().nth()` fallback of the 64-draw rejection loop with an
/// `O(log |I|)` Fenwick select over the chain's [`EvalCache`], so every
/// seeded trajectory, figure CSV, and events file is byte-identical
/// across samplers. At 10⁴–10⁵ committees the fallback fires on ≈94% of
/// proposals (density `n/|I|` ≈ 0.1%), which made `RejectionScan`
/// `O(|I|)` per proposal; it is kept as the frozen reference that the
/// scale benchmark differentials the fast path against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeSampler {
    /// The legacy sampler: 64 rejection draws, then a full bitset scan
    /// ([`Solution::random_selected`]/[`Solution::random_unselected`]).
    RejectionScan,
    /// 64 rejection draws, then a Fenwick select-kth-one/zero
    /// ([`EvalCache::random_selected`]/[`EvalCache::random_unselected`]).
    #[default]
    RankSelect,
}

/// The Algorithm 3 output: the chosen swap pair, its utility change, and
/// the armed timer in log-space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proposal {
    /// `ĩ` — the admitted shard to drop (`x_ĩ: 1 → 0`).
    pub out: usize,
    /// `ï` — the excluded shard to admit (`x_ï: 0 → 1`).
    pub inc: usize,
    /// `U_f' − U_f` for this swap.
    pub delta: f64,
    /// `ln T_n` of the sampled exponential timer. Compared across chains in
    /// log-space so that `exp(±½β·ΔU)` cannot overflow for large utilities.
    pub ln_timer: f64,
}

/// One Markov chain: a candidate solution with fixed cardinality `n`.
///
/// Besides the solution and its cached utility, the chain owns an
/// [`EvalCache`] mirroring the solution, so every [`Chain::propose`] call
/// prices its swap in `O(log n)` without cloning the solution — the hot
/// path of Algorithm 1. The cache is rebuilt (never serialized) whenever
/// the chain is constructed from scratch, restored from a checkpoint, or
/// the instance itself changes.
#[derive(Debug, Clone)]
pub struct Chain {
    solution: Solution,
    cardinality: usize,
    utility: f64,
    cache: EvalCache,
    sampler: SeSampler,
    /// `ln(|I| − n)` — the proposal-pool term of the Algorithm 3 timer.
    /// The chain's cardinality `n` is fixed, so this is a per-chain
    /// constant hoisted out of the per-proposal hot loop; it is exactly
    /// the `((len − n) as f64).ln()` the loop used to recompute, so the
    /// timer expression is unchanged bit for bit. Recomputed whenever the
    /// chain is (re)built against an instance (`0` when the pool is
    /// empty; [`Chain::propose`] bails out before using it then).
    ln_pool: f64,
}

impl Chain {
    /// Algorithm 2: builds the initial solution `f_n` with exactly
    /// `cardinality` admitted shards satisfying the capacity constraint.
    ///
    /// Tries `config.init_attempts` uniformly random `n`-subsets; if none
    /// fits in `Ĉ`, falls back to the `n` smallest shards (which fit
    /// whenever any `n`-subset does).
    ///
    /// # Errors
    ///
    /// [`Error::Infeasible`] when no `n`-subset can satisfy the capacity —
    /// callers should skip this cardinality.
    pub fn init<R: Rng + ?Sized>(
        instance: &Instance,
        cardinality: usize,
        config: &SeConfig,
        rng: &mut R,
    ) -> Result<Chain> {
        let len = instance.len();
        if cardinality == 0 || cardinality > len {
            return Err(Error::infeasible(format!(
                "cardinality {cardinality} out of range for {len} shards"
            )));
        }
        let mut indices: Vec<usize> = (0..len).collect();
        for _ in 0..config.init_attempts {
            indices.shuffle(rng);
            let solution =
                Solution::from_indices(len, indices[..cardinality].iter().copied(), instance);
            if instance.within_capacity(&solution) {
                return Ok(Chain::from_solution(instance, solution));
            }
        }
        // Deterministic fallback: the n smallest shards.
        let mut by_size: Vec<usize> = (0..len).collect();
        by_size.sort_by_key(|&i| instance.shards()[i].tx_count());
        let solution =
            Solution::from_indices(len, by_size[..cardinality].iter().copied(), instance);
        if instance.within_capacity(&solution) {
            Ok(Chain::from_solution(instance, solution))
        } else {
            Err(Error::infeasible(format!(
                "no {cardinality}-subset fits within capacity {}",
                instance.capacity()
            )))
        }
    }

    /// Wraps an existing solution as a chain (used by warm starts after
    /// dynamic events and by checkpoint restores). The utility is
    /// recomputed from scratch and the eval cache rebuilt, so restored
    /// chains never inherit incremental drift.
    pub fn from_solution(instance: &Instance, solution: Solution) -> Chain {
        let utility = instance.utility(&solution);
        let cache = EvalCache::new(instance, &solution);
        Chain {
            cardinality: solution.selected_count(),
            ln_pool: Self::ln_pool(instance.len(), solution.selected_count()),
            solution,
            utility,
            cache,
            sampler: SeSampler::default(),
        }
    }

    /// The hoisted `ln(|I| − n)` timer constant (`0` for an empty pool —
    /// never read, because `propose` returns `None` when `n ≥ |I|`).
    fn ln_pool(len: usize, n: usize) -> f64 {
        if n < len {
            ((len - n) as f64).ln()
        } else {
            0.0
        }
    }

    /// Selects the swap-endpoint sampling strategy (see [`SeSampler`]).
    /// Both strategies produce bit-identical output; this exists so the
    /// scale benchmark can measure the frozen `RejectionScan` reference
    /// against the `RankSelect` fast path on the same host.
    pub fn set_sampler(&mut self, sampler: SeSampler) {
        self.sampler = sampler;
    }

    /// The active swap-endpoint sampling strategy.
    pub fn sampler(&self) -> SeSampler {
        self.sampler
    }

    /// The chain's current solution.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// The fixed admitted-shard count `n` of this chain.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// The cached utility `U_{f_n}` of the current solution.
    pub fn utility(&self) -> f64 {
        self.utility
    }

    /// Algorithm 3 (`Set-timer`): draws a random capacity-feasible swap
    /// pair and arms an exponential timer with mean
    /// `exp(τ − ½β(U_f' − U_f)) / (|I_j| − n)`.
    ///
    /// Returns `None` when the chain cannot act this race: the solution is
    /// full/empty, or `config.swap_attempts` random pairs all violated the
    /// capacity constraint.
    pub fn propose<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        config: &SeConfig,
        rng: &mut R,
    ) -> Option<Proposal> {
        let len = instance.len();
        let n = self.solution.selected_count();
        if n == 0 || n >= len {
            return None;
        }
        for _ in 0..config.swap_attempts {
            let (out, inc) = match self.sampler {
                SeSampler::RejectionScan => (
                    self.solution.random_selected(rng)?,
                    self.solution.random_unselected(rng)?,
                ),
                SeSampler::RankSelect => (
                    self.cache.random_selected(&self.solution, rng)?,
                    self.cache.random_unselected(&self.solution, rng)?,
                ),
            };
            let new_total = self.solution.tx_total() - instance.shards()[out].tx_count()
                + instance.shards()[inc].tx_count();
            if new_total > instance.capacity() {
                continue;
            }
            // O(log n), allocation-free — replaces the naive
            // clone-and-recompute `Instance::swap_delta` on the hot path.
            let delta = self.cache.swap_delta(instance, &self.solution, out, inc);
            // ln T = ln Exp(1) + τ − ½β·Δ − ln(|I| − n): log-space keeps
            // |βΔ| in the thousands finite. `ln(|I| − n)` is the hoisted
            // per-chain constant `self.ln_pool`.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let exp1 = -u.ln();
            let ln_timer = exp1.ln() + config.tau - 0.5 * config.beta * delta - self.ln_pool;
            return Some(Proposal {
                out,
                inc,
                delta,
                ln_timer,
            });
        }
        None
    }

    /// One round of the chain's *local* timer race: samples
    /// `config.proposal_fanout` candidate pairs via [`Chain::propose`] and
    /// returns the one whose exponential timer expires first.
    ///
    /// Racing `k` sampled neighbors, each with timer rate
    /// `exp(½β·ΔU − τ)`, is a sampled jump of the designed CTMC: the
    /// winning neighbor is distributed ∝ its transition rate among the
    /// sample. Returns `None` when no feasible pair could be sampled.
    pub fn race<R: Rng + ?Sized>(
        &self,
        instance: &Instance,
        config: &SeConfig,
        rng: &mut R,
    ) -> Option<Proposal> {
        let mut winner: Option<Proposal> = None;
        for _ in 0..config.proposal_fanout {
            if let Some(p) = self.propose(instance, config, rng) {
                if winner.as_ref().is_none_or(|w| p.ln_timer < w.ln_timer) {
                    winner = Some(p);
                }
            }
        }
        winner
    }

    /// Commits a fired proposal: performs the swap and updates the cached
    /// utility by `Δ` (State Transit, Alg. 1 lines 14–16).
    pub fn apply(&mut self, proposal: &Proposal, instance: &Instance) {
        self.solution.swap(proposal.out, proposal.inc, instance);
        self.cache.swap(proposal.out, proposal.inc);
        self.utility += proposal.delta;
        debug_assert!(
            (self.utility - instance.utility(&self.solution)).abs()
                < 1e-6 * (1.0 + self.utility.abs()),
            "incremental utility drifted from recomputation"
        );
    }

    /// Recomputes the cached utility from scratch and rebuilds the eval
    /// cache — required after the instance itself changed (join/leave
    /// alters the deadline, the latency ranks, and with them every age
    /// term).
    pub fn refresh_utility(&mut self, instance: &Instance) {
        self.utility = instance.utility(&self.solution);
        self.cache = EvalCache::new(instance, &self.solution);
        self.ln_pool = Self::ln_pool(instance.len(), self.solution.selected_count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceBuilder;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn instance(n: usize, capacity: u64) -> Instance {
        InstanceBuilder::new()
            .alpha(1.5)
            .capacity(capacity)
            .n_min(1)
            .shards(
                (0..n)
                    .map(|i| {
                        ShardInfo::new(
                            CommitteeId(i as u32),
                            100 + (i as u64 % 7) * 10,
                            TwoPhaseLatency::from_total(SimTime::from_secs(
                                500.0 + (i as f64 * 37.0) % 400.0,
                            )),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn init_produces_requested_cardinality_within_capacity() {
        let inst = instance(20, 1_500);
        let cfg = SeConfig::fast_test(0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in 1..=inst.max_feasible_cardinality() {
            let chain = Chain::init(&inst, n, &cfg, &mut rng).unwrap();
            assert_eq!(chain.solution().selected_count(), n);
            assert!(inst.within_capacity(chain.solution()));
            assert!((chain.utility() - inst.utility(chain.solution())).abs() < 1e-9);
        }
    }

    #[test]
    fn init_rejects_impossible_cardinality() {
        let inst = instance(10, 250); // max feasible = 2 shards of ~100
        let cfg = SeConfig::fast_test(0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(Chain::init(&inst, 0, &cfg, &mut rng).is_err());
        assert!(Chain::init(&inst, 11, &cfg, &mut rng).is_err());
        let too_many = inst.max_feasible_cardinality() + 1;
        assert!(Chain::init(&inst, too_many, &cfg, &mut rng).is_err());
    }

    #[test]
    fn init_fallback_finds_tight_fits() {
        // Capacity admits exactly the 3 smallest shards; random subsets of
        // size 3 rarely fit, the deterministic fallback must.
        let shards = vec![
            ShardInfo::new(
                CommitteeId(0),
                10,
                TwoPhaseLatency::from_total(SimTime::from_secs(1.0)),
            ),
            ShardInfo::new(
                CommitteeId(1),
                10,
                TwoPhaseLatency::from_total(SimTime::from_secs(2.0)),
            ),
            ShardInfo::new(
                CommitteeId(2),
                10,
                TwoPhaseLatency::from_total(SimTime::from_secs(3.0)),
            ),
            ShardInfo::new(
                CommitteeId(3),
                500,
                TwoPhaseLatency::from_total(SimTime::from_secs(4.0)),
            ),
            ShardInfo::new(
                CommitteeId(4),
                500,
                TwoPhaseLatency::from_total(SimTime::from_secs(5.0)),
            ),
        ];
        let inst = InstanceBuilder::new()
            .capacity(30)
            .shards(shards)
            .build()
            .unwrap();
        let cfg = SeConfig {
            init_attempts: 1,
            ..SeConfig::fast_test(0)
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let chain = Chain::init(&inst, 3, &cfg, &mut rng).unwrap();
        let picked: Vec<usize> = chain.solution().iter_selected().collect();
        assert_eq!(picked, vec![0, 1, 2]);
    }

    #[test]
    fn propose_respects_capacity() {
        let inst = instance(20, 1_200);
        let cfg = SeConfig::fast_test(0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let chain = Chain::init(&inst, 5, &cfg, &mut rng).unwrap();
        for _ in 0..100 {
            if let Some(p) = chain.propose(&inst, &cfg, &mut rng) {
                assert!(chain.solution().contains(p.out));
                assert!(!chain.solution().contains(p.inc));
                let new_total = chain.solution().tx_total() - inst.shards()[p.out].tx_count()
                    + inst.shards()[p.inc].tx_count();
                assert!(new_total <= inst.capacity());
                assert!(p.ln_timer.is_finite());
            }
        }
    }

    #[test]
    fn proposal_delta_matches_instance() {
        let inst = instance(15, 10_000);
        let cfg = SeConfig::fast_test(0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let chain = Chain::init(&inst, 6, &cfg, &mut rng).unwrap();
        let p = chain.propose(&inst, &cfg, &mut rng).unwrap();
        assert!((p.delta - inst.swap_delta(chain.solution(), p.out, p.inc)).abs() < 1e-9);
    }

    #[test]
    fn apply_updates_state_and_utility() {
        let inst = instance(15, 10_000);
        let cfg = SeConfig::fast_test(0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut chain = Chain::init(&inst, 6, &cfg, &mut rng).unwrap();
        let before = chain.utility();
        let p = chain.propose(&inst, &cfg, &mut rng).unwrap();
        chain.apply(&p, &inst);
        assert_eq!(chain.solution().selected_count(), 6);
        assert!((chain.utility() - (before + p.delta)).abs() < 1e-9);
        assert!((chain.utility() - inst.utility(chain.solution())).abs() < 1e-6);
    }

    #[test]
    fn better_swaps_get_stochastically_smaller_timers() {
        // Sample many proposals; among them, correlate delta with timer:
        // the mean ln-timer of improving proposals must be far below that of
        // worsening ones (exp(−½βΔ) scaling).
        let inst = instance(30, 100_000);
        let cfg = SeConfig::fast_test(0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let chain = Chain::init(&inst, 10, &cfg, &mut rng).unwrap();
        let mut improving = Vec::new();
        let mut worsening = Vec::new();
        for _ in 0..500 {
            if let Some(p) = chain.propose(&inst, &cfg, &mut rng) {
                if p.delta > 10.0 {
                    improving.push(p.ln_timer);
                } else if p.delta < -10.0 {
                    worsening.push(p.ln_timer);
                }
            }
        }
        assert!(!improving.is_empty() && !worsening.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&improving) < mean(&worsening) - 5.0,
            "improving {} vs worsening {}",
            mean(&improving),
            mean(&worsening)
        );
    }

    #[test]
    fn propose_returns_none_when_no_feasible_swap() {
        // Solution holds the only small shard; every swap would blow the
        // capacity.
        let shards = vec![
            ShardInfo::new(
                CommitteeId(0),
                10,
                TwoPhaseLatency::from_total(SimTime::from_secs(1.0)),
            ),
            ShardInfo::new(
                CommitteeId(1),
                900,
                TwoPhaseLatency::from_total(SimTime::from_secs(2.0)),
            ),
            ShardInfo::new(
                CommitteeId(2),
                900,
                TwoPhaseLatency::from_total(SimTime::from_secs(3.0)),
            ),
        ];
        let inst = InstanceBuilder::new()
            .capacity(100)
            .shards(shards)
            .build()
            .unwrap();
        let solution = Solution::from_indices(3, [0], &inst);
        let chain = Chain::from_solution(&inst, solution);
        let cfg = SeConfig::fast_test(0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        assert_eq!(chain.propose(&inst, &cfg, &mut rng), None);
    }

    #[test]
    fn refresh_utility_tracks_instance_changes() {
        let inst = instance(10, 10_000);
        let mut chain = Chain::from_solution(&inst, Solution::from_indices(10, [0, 1, 2], &inst));
        let grown = inst
            .with_joined(ShardInfo::new(
                CommitteeId(99),
                100,
                TwoPhaseLatency::from_total(SimTime::from_secs(5_000.0)),
            ))
            .unwrap();
        // The new straggler pushes the DDL out; ages of selected shards grow
        // and utility must drop once recomputed over the grown instance.
        let mut moved = Chain::from_solution(&grown, Solution::from_indices(11, [0, 1, 2], &grown));
        moved.refresh_utility(&grown);
        chain.refresh_utility(&inst);
        assert!(moved.utility() < chain.utility());
    }
}
