//! Incremental utility evaluation for the SE sampler's hot loop.
//!
//! Algorithm 1 proposes one swap per timer expiry, so the per-move utility
//! delta is the hot path of the whole scheduler. Under
//! [`DdlPolicy::MaxArrival`] the objective is separable and deltas are
//! `O(1)` from [`Instance::marginal_utility`]; under
//! [`DdlPolicy::MaxSelected`] the induced deadline `t = max_{x_i=1} l_i`
//! couples every age term, and the naive delta clones the whole solution
//! and recomputes `U(f)` from scratch — `O(n)` allocation-heavy work per
//! *proposed* (not just committed) move.
//!
//! [`EvalCache`] removes that cost. It keys the epoch's shards by their
//! latency rank once (`O(n log n)` at construction) and maintains a Fenwick
//! tree of selected-shard counts over those ranks. Order statistics of the
//! selected latencies — the induced deadline, and the deadline *excluding
//! one shard* (what a remove/swap needs) — are then `O(log n)` queries, and
//! combined with the running aggregates cached inside [`Solution`]
//! (`selected_count`, `tx_total`, `lat_total`) every delta closes to:
//!
//! ```text
//! U(f)        = α·Σ s_i − (k·t − Σ l_i)        (all ages t − l_i ≥ 0
//!                                               because t is the max)
//! Δ_swap(o,i) = α(s_i − s_o) + (l_i − l_o) − k·(t' − t)
//!               where t' = max(l_i, max_{sel∖o} l)
//! ```
//!
//! with no allocation and no pass over the selection. The per-shard
//! inputs (`l_i`, `s_i`, and the MaxArrival marginals) are held as dense
//! struct-of-arrays columns copied bit-for-bit out of the instance at
//! construction, so at 10⁴–10⁵ committees the delta loop walks 8-byte
//! strides instead of cache-missing across interleaved `ShardInfo`
//! records. A second Fenwick tree over *shard indices* powers
//! `O(log n)` order statistics in index order — select-kth-one and
//! select-kth-zero — which replace the `O(n)` `iter_*().nth()` fallback
//! of the SE sampler's rejection loop
//! ([`EvalCache::random_selected`]/[`EvalCache::random_unselected`]).
//! Per-op complexity:
//!
//! | operation                       | naive            | cached      |
//! |---------------------------------|------------------|-------------|
//! | `utility`                       | `O(n)`           | `O(1)`      |
//! | `selected_ddl`                  | `O(n)`           | `O(1)`      |
//! | `swap/insert/remove_delta`      | `O(n)` + 2 allocs| `O(log n)`  |
//! | commit (`insert`/`remove`/`swap`)| `O(1)`          | `O(log n)`  |
//! | `random_selected/unselected` fallback | `O(n)`     | `O(log n)`  |
//! | build / rebuild                 | —                | `O(n log n)`|
//!
//! The cache is *not* serialized: a checkpointed solver records only the
//! selected indices ([`crate::se::SeCheckpoint`]) and every restore path
//! rebuilds the cache from `(instance, solution)`, so snapshots stay small,
//! version-stable, and immune to drift in the cached statistics.
//!
//! # Consistency contract
//!
//! An `EvalCache` mirrors exactly one [`Solution`] against one
//! [`Instance`]. The owner must apply every mutation to both (see
//! [`crate::se::chain::Chain::apply`]); the delta queries `assert!` the
//! preconditions — in release builds too — and cheap sync invariants, so a
//! desynchronized cache panics instead of silently returning garbage.

use rand::Rng;

use crate::problem::{DdlPolicy, Instance};
use crate::solution::Solution;

/// Incremental evaluator: latency order statistics of the selected shards,
/// maintained as a Fenwick tree over latency ranks.
///
/// # Example
///
/// ```
/// use mvcom_core::eval::EvalCache;
/// use mvcom_core::problem::{DdlPolicy, InstanceBuilder};
/// use mvcom_core::solution::Solution;
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// let instance = InstanceBuilder::new()
///     .alpha(1.5)
///     .capacity(10_000)
///     .ddl_policy(DdlPolicy::MaxSelected)
///     .shards((0..4).map(|i| ShardInfo::new(
///         CommitteeId(i),
///         500,
///         TwoPhaseLatency::from_total(SimTime::from_secs(100.0 * (1.0 + f64::from(i)))),
///     )).collect())
///     .build()
///     .unwrap();
/// let mut solution = Solution::from_indices(4, [0, 3], &instance);
/// let mut cache = EvalCache::new(&instance, &solution);
/// assert_eq!(cache.selected_ddl(), 400.0);
/// // O(log n), allocation-free — and it agrees with the naive recompute.
/// let delta = cache.swap_delta(&instance, &solution, 3, 1);
/// assert!((delta - instance.swap_delta(&solution, 3, 1)).abs() < 1e-9);
/// solution.swap(3, 1, &instance);
/// cache.swap(3, 1);
/// assert_eq!(cache.selected_ddl(), 200.0);
/// ```
#[derive(Debug, Clone)]
pub struct EvalCache {
    /// Shard index → rank in latency-sorted order (ties broken by index).
    rank: Vec<u32>,
    /// Rank → latency in seconds (ascending).
    lat_by_rank: Vec<f64>,
    /// Struct-of-arrays projections of the instance's shard records, by
    /// shard index. The AoS `ShardInfo` layout interleaves the committee
    /// id and both latency phases with the two fields the delta loops
    /// touch, so at 10⁴–10⁵ committees every delta paid a cache miss per
    /// shard lookup; these dense columns keep the hot loop on 8-byte
    /// strides. Values are copied bit-for-bit from the instance (`lat` is
    /// `two_phase_latency().as_secs()`, `tx` is `tx_count() as f64`,
    /// `marginal` is `Instance::marginal_utility(i)`), so every delta
    /// below computes the *same float expression* as before, bit for bit.
    lat: Vec<f64>,
    tx: Vec<f64>,
    marginal: Vec<f64>,
    /// Fenwick tree (1-based) over ranks; counts selected shards.
    tree: Vec<u32>,
    /// Fenwick tree (1-based) over *shard indices*; counts selected
    /// shards in index order, so the `k`-th selected (or unselected)
    /// shard *by index* is an `O(log n)` binary-lifting descent — the
    /// exact order statistic `iter_selected().nth(k)` scans for.
    idx_tree: Vec<u32>,
    /// Mirror of the selected count, for O(1) sync checks.
    selected: usize,
    /// Memoized max selected latency (`0` when empty): `O(1)` reads of the
    /// induced deadline; refreshed in `O(log n)` when a removal evicts it.
    ddl: f64,
}

impl EvalCache {
    /// Builds the cache for `solution` over `instance` — `O(n log n)`.
    ///
    /// # Panics
    ///
    /// Panics if the solution's length does not match the instance.
    pub fn new(instance: &Instance, solution: &Solution) -> EvalCache {
        assert_eq!(
            solution.len(),
            instance.len(),
            "solution is over a different shard set than the instance"
        );
        let n = instance.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            let la = instance.shards()[a as usize].two_phase_latency();
            let lb = instance.shards()[b as usize].two_phase_latency();
            la.cmp(&lb).then(a.cmp(&b))
        });
        let mut rank = vec![0u32; n];
        for (r, &i) in order.iter().enumerate() {
            rank[i as usize] = r as u32;
        }
        let lat_by_rank = order
            .iter()
            .map(|&i| instance.shards()[i as usize].two_phase_latency().as_secs())
            .collect();
        let lat: Vec<f64> = instance
            .shards()
            .iter()
            .map(|s| s.two_phase_latency().as_secs())
            .collect();
        let tx: Vec<f64> = instance
            .shards()
            .iter()
            .map(|s| s.tx_count() as f64)
            .collect();
        let marginal: Vec<f64> = (0..n).map(|i| instance.marginal_utility(i)).collect();
        let mut cache = EvalCache {
            rank,
            lat_by_rank,
            lat,
            tx,
            marginal,
            tree: vec![0u32; n + 1],
            idx_tree: vec![0u32; n + 1],
            selected: 0,
            ddl: 0.0,
        };
        // O(n) Fenwick construction: leaf counts, then one propagation pass.
        for i in solution.iter_selected() {
            cache.tree[cache.rank[i] as usize + 1] = 1;
            cache.idx_tree[i + 1] = 1;
            cache.selected += 1;
        }
        for pos in 1..=n {
            let parent = pos + (pos & pos.wrapping_neg());
            if parent <= n {
                cache.tree[parent] += cache.tree[pos];
                cache.idx_tree[parent] += cache.idx_tree[pos];
            }
        }
        if cache.selected > 0 {
            cache.ddl = cache.lat_by_rank[cache.kth(cache.selected as u32)];
        }
        cache
    }

    /// Number of shard slots.
    pub fn len(&self) -> usize {
        self.lat_by_rank.len()
    }

    /// `true` iff the epoch has no shards.
    pub fn is_empty(&self) -> bool {
        self.lat_by_rank.is_empty()
    }

    /// Number of selected shards mirrored by this cache.
    pub fn selected_count(&self) -> usize {
        self.selected
    }

    /// Whether the cache's Fenwick tree marks shard `i` selected.
    pub fn contains(&self, i: usize) -> bool {
        let pos = self.rank[i] as usize + 1;
        self.prefix(pos) - self.prefix(pos - 1) == 1
    }

    /// The deadline induced by the mirrored selection under
    /// [`DdlPolicy::MaxSelected`]: the maximum selected latency, `0` for
    /// the empty selection. `O(1)` — memoized across mutations.
    pub fn selected_ddl(&self) -> f64 {
        self.ddl
    }

    /// The maximum selected latency with shard `i` excluded (`0` when `i`
    /// is the only selected shard). `O(log n)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not selected.
    fn max_excluding(&self, i: usize) -> f64 {
        assert!(self.contains(i), "shard {i} not selected in the eval cache");
        let top = self.kth(self.selected as u32);
        if top != self.rank[i] as usize {
            return self.lat_by_rank[top];
        }
        if self.selected == 1 {
            return 0.0;
        }
        self.lat_by_rank[self.kth(self.selected as u32 - 1)]
    }

    /// The objective value `U(f)` of the mirrored selection — `O(1)`
    /// under either deadline policy, using the closed form
    /// `α·Σs − (k·t − Σl)` (valid because `t ≥ l_i` for every term in the
    /// sum, so no age clamps at zero).
    pub fn utility(&self, instance: &Instance, solution: &Solution) -> f64 {
        self.assert_sync(solution);
        if solution.is_empty() {
            return 0.0;
        }
        let t = match instance.ddl_policy() {
            DdlPolicy::MaxArrival => instance.ddl().as_secs(),
            DdlPolicy::MaxSelected => self.selected_ddl(),
        };
        let k = solution.selected_count() as f64;
        instance.alpha() * solution.tx_total() as f64 - (k * t - solution.lat_total())
    }

    /// The exact utility change from swapping selected shard `out` for
    /// unselected shard `inc`. `O(1)` under MaxArrival, `O(log n)` under
    /// MaxSelected; never allocates.
    ///
    /// # Panics
    ///
    /// Panics — in release builds too — when `out` is not selected, `inc`
    /// is selected, or the cache is out of sync with `solution`.
    pub fn swap_delta(
        &self,
        instance: &Instance,
        solution: &Solution,
        out: usize,
        inc: usize,
    ) -> f64 {
        self.assert_sync(solution);
        assert!(
            solution.contains(out) && !solution.contains(inc),
            "swap_delta precondition: out={out} must be selected, inc={inc} unselected"
        );
        match instance.ddl_policy() {
            DdlPolicy::MaxArrival => self.marginal[inc] - self.marginal[out],
            DdlPolicy::MaxSelected => {
                let (l_out, l_inc) = (self.lat[out], self.lat[inc]);
                let t = self.selected_ddl();
                let t_new = self.max_excluding(out).max(l_inc);
                let k = self.selected as f64;
                instance.alpha() * (self.tx[inc] - self.tx[out]) + (l_inc - l_out) - k * (t_new - t)
            }
        }
    }

    /// The exact utility change from selecting the unselected shard `i`.
    /// `O(1)` under MaxArrival, `O(log n)` under MaxSelected.
    ///
    /// # Panics
    ///
    /// Panics — in release builds too — when `i` is already selected or the
    /// cache is out of sync with `solution`.
    pub fn insert_delta(&self, instance: &Instance, solution: &Solution, i: usize) -> f64 {
        self.assert_sync(solution);
        assert!(
            !solution.contains(i),
            "insert_delta precondition: shard {i} is already selected"
        );
        match instance.ddl_policy() {
            DdlPolicy::MaxArrival => self.marginal[i],
            DdlPolicy::MaxSelected => {
                let l_i = self.lat[i];
                let t = self.selected_ddl();
                let t_new = t.max(l_i);
                let k = self.selected as f64;
                // U' − U = α·s_i + l_i − (k+1)·t' + k·t.
                instance.alpha() * self.tx[i] + l_i - (k + 1.0) * t_new + k * t
            }
        }
    }

    /// The exact utility change from deselecting the selected shard `i`.
    /// `O(1)` under MaxArrival, `O(log n)` under MaxSelected.
    ///
    /// # Panics
    ///
    /// Panics — in release builds too — when `i` is not selected or the
    /// cache is out of sync with `solution`.
    pub fn remove_delta(&self, instance: &Instance, solution: &Solution, i: usize) -> f64 {
        self.assert_sync(solution);
        assert!(
            solution.contains(i),
            "remove_delta precondition: shard {i} is not selected"
        );
        match instance.ddl_policy() {
            DdlPolicy::MaxArrival => -self.marginal[i],
            DdlPolicy::MaxSelected => {
                let l_i = self.lat[i];
                let t = self.selected_ddl();
                let t_new = self.max_excluding(i);
                let k = self.selected as f64;
                // U' − U = −α·s_i − l_i − (k−1)·t' + k·t.
                -instance.alpha() * self.tx[i] - l_i - (k - 1.0) * t_new + k * t
            }
        }
    }

    /// Marks shard `i` selected — the cache-side half of
    /// [`Solution::insert`]. `O(log n)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or already marked selected.
    pub fn insert(&mut self, i: usize) {
        assert!(
            !self.contains(i),
            "shard {i} already selected in the eval cache"
        );
        Self::bump(&mut self.tree, self.rank[i] as usize + 1, 1);
        Self::bump(&mut self.idx_tree, i + 1, 1);
        self.selected += 1;
        self.ddl = self.ddl.max(self.lat_by_rank[self.rank[i] as usize]);
    }

    /// Marks shard `i` unselected — the cache-side half of
    /// [`Solution::remove`]. `O(log n)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or not marked selected.
    pub fn remove(&mut self, i: usize) {
        assert!(self.contains(i), "shard {i} not selected in the eval cache");
        Self::bump(&mut self.tree, self.rank[i] as usize + 1, -1);
        Self::bump(&mut self.idx_tree, i + 1, -1);
        self.selected -= 1;
        if self.selected == 0 {
            self.ddl = 0.0;
        } else if self.lat_by_rank[self.rank[i] as usize] >= self.ddl {
            // The evicted shard may have pinned the deadline; re-query the
            // max selected rank (O(log n)).
            self.ddl = self.lat_by_rank[self.kth(self.selected as u32)];
        }
    }

    /// Applies the Markov-chain swap transition to the cache. `O(log n)`.
    pub fn swap(&mut self, out: usize, inc: usize) {
        self.remove(out);
        self.insert(inc);
    }

    /// O(1) desync tripwire: the mirrored count must match the solution's.
    /// (Full membership equality is checked per-index by the `assert!`
    /// preconditions of the delta functions.)
    fn assert_sync(&self, solution: &Solution) {
        assert_eq!(
            self.selected,
            solution.selected_count(),
            "eval cache out of sync with its solution (was a mutation applied to only one?)"
        );
    }

    /// Count of selected shards at Fenwick positions `1..=pos`.
    fn prefix(&self, mut pos: usize) -> u32 {
        let mut sum = 0;
        while pos > 0 {
            sum += self.tree[pos];
            pos &= pos - 1;
        }
        sum
    }

    fn bump(tree: &mut [u32], mut pos: usize, delta: i32) {
        let n = tree.len() - 1;
        while pos <= n {
            tree[pos] = (tree[pos] as i64 + delta as i64) as u32;
            pos += pos & pos.wrapping_neg();
        }
    }

    /// The 0-based rank of the `k`-th smallest selected latency
    /// (1-indexed `k`), via Fenwick binary lifting. `O(log n)`.
    fn kth(&self, k: u32) -> usize {
        debug_assert!(k >= 1 && k as usize <= self.selected);
        let n = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut rem = k;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] < rem {
                pos = next;
                rem -= self.tree[next];
            }
            step >>= 1;
        }
        // `pos` positions have cumulative count < k ⇒ the k-th selected
        // shard sits at 1-based position pos+1, i.e. 0-based rank `pos`.
        pos
    }

    /// The shard index of the `k`-th selected shard in increasing index
    /// order (0-indexed `k`) — `solution.iter_selected().nth(k)` as an
    /// `O(log n)` Fenwick binary-lifting descent over the index tree.
    ///
    /// # Panics
    ///
    /// Panics (debug) when `k >= selected_count()`.
    pub fn select_kth_selected(&self, k: usize) -> usize {
        debug_assert!(k < self.selected);
        let n = self.idx_tree.len() - 1;
        let mut pos = 0usize;
        let mut rem = k as u32 + 1;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= n && self.idx_tree[next] < rem {
                pos = next;
                rem -= self.idx_tree[next];
            }
            step >>= 1;
        }
        pos
    }

    /// The shard index of the `k`-th *unselected* shard in increasing
    /// index order (0-indexed `k`) — `solution.iter_unselected().nth(k)`
    /// in `O(log n)`. A node at lifting step `s` covers exactly `s`
    /// positions, so its zero count is `s − ones`.
    ///
    /// # Panics
    ///
    /// Panics (debug) when `k >= len() − selected_count()`.
    pub fn select_kth_unselected(&self, k: usize) -> usize {
        debug_assert!(k < self.len() - self.selected);
        let n = self.idx_tree.len() - 1;
        let mut pos = 0usize;
        let mut rem = k as u32 + 1;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= n {
                // `pos`'s set bits all exceed `step`, so lowbit(next) is
                // exactly `step` and the node covers `step` positions.
                let zeros = step as u32 - self.idx_tree[next];
                if zeros < rem {
                    pos = next;
                    rem -= zeros;
                }
            }
            step >>= 1;
        }
        pos
    }

    /// A uniformly random selected index, or `None` if empty — a drop-in
    /// fast path for [`Solution::random_selected`]. The RNG draw sequence
    /// is *identical* (64 rejection draws over `0..len`, then one
    /// fallback draw over `0..selected`) and the fallback resolves the
    /// same order statistic, so for any RNG state this returns the same
    /// index as the `Solution` method bit for bit — only the fallback's
    /// `O(|I|)` bitset scan becomes an `O(log |I|)` Fenwick select. At
    /// the sparse densities of a 10⁴–10⁵-committee sweep (n ≪ |I|) the
    /// rejection loop fails ≈`(1−n/|I|)⁶⁴` of the time, so this fallback
    /// *is* the hot path.
    pub fn random_selected<R: Rng + ?Sized>(
        &self,
        solution: &Solution,
        rng: &mut R,
    ) -> Option<usize> {
        self.assert_sync(solution);
        if self.selected == 0 {
            return None;
        }
        let len = self.len();
        for _ in 0..64 {
            let i = rng.gen_range(0..len);
            if solution.contains(i) {
                return Some(i);
            }
        }
        let target = rng.gen_range(0..self.selected);
        Some(self.select_kth_selected(target))
    }

    /// A uniformly random unselected index, or `None` if full — the fast
    /// path for [`Solution::random_unselected`], with the same bit-exact
    /// RNG-sequence contract as [`EvalCache::random_selected`].
    pub fn random_unselected<R: Rng + ?Sized>(
        &self,
        solution: &Solution,
        rng: &mut R,
    ) -> Option<usize> {
        self.assert_sync(solution);
        let len = self.len();
        let unselected = len - self.selected;
        if unselected == 0 {
            return None;
        }
        for _ in 0..64 {
            let i = rng.gen_range(0..len);
            if !solution.contains(i) {
                return Some(i);
            }
        }
        let target = rng.gen_range(0..unselected);
        Some(self.select_kth_unselected(target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceBuilder;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn shard(id: u32, txs: u64, latency: f64) -> ShardInfo {
        ShardInfo::new(
            CommitteeId(id),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(latency)),
        )
    }

    fn instance(n: usize, policy: DdlPolicy) -> Instance {
        InstanceBuilder::new()
            .alpha(2.5)
            .capacity(u64::MAX / 2)
            .ddl_policy(policy)
            .shards(
                (0..n)
                    .map(|i| {
                        shard(
                            i as u32,
                            50 + (i as u64 * 37) % 500,
                            10.0 + ((i as f64 * 131.7) % 900.0),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn selected_ddl_tracks_max_latency() {
        let inst = instance(40, DdlPolicy::MaxSelected);
        let mut sol = Solution::empty(40);
        let mut cache = EvalCache::new(&inst, &sol);
        assert_eq!(cache.selected_ddl(), 0.0);
        for i in [5usize, 17, 3, 30] {
            sol.insert(i, &inst);
            cache.insert(i);
            assert_eq!(cache.selected_ddl(), inst.selected_ddl(&sol));
        }
        for i in [17usize, 5, 30, 3] {
            sol.remove(i, &inst);
            cache.remove(i);
            assert_eq!(cache.selected_ddl(), inst.selected_ddl(&sol));
        }
    }

    #[test]
    fn utility_matches_naive_under_both_policies() {
        for policy in [DdlPolicy::MaxArrival, DdlPolicy::MaxSelected] {
            let inst = instance(60, policy);
            let sol = Solution::from_indices(60, (0..60).step_by(3), &inst);
            let cache = EvalCache::new(&inst, &sol);
            let naive = inst.utility(&sol);
            let fast = cache.utility(&inst, &sol);
            assert!(
                (naive - fast).abs() < 1e-9 * (1.0 + naive.abs()),
                "{policy:?}: naive {naive} vs cached {fast}"
            );
        }
    }

    #[test]
    fn deltas_match_naive_over_random_walks() {
        for policy in [DdlPolicy::MaxArrival, DdlPolicy::MaxSelected] {
            let inst = instance(50, policy);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut sol = Solution::from_indices(50, 0..20, &inst);
            let mut cache = EvalCache::new(&inst, &sol);
            for step in 0..600 {
                let tol = |x: f64| 1e-9 * (1.0 + x.abs());
                match rng.gen_range(0..3) {
                    0 => {
                        let (Some(out), Some(inc)) = (
                            sol.random_selected(&mut rng),
                            sol.random_unselected(&mut rng),
                        ) else {
                            continue;
                        };
                        let naive = inst.swap_delta(&sol, out, inc);
                        let fast = cache.swap_delta(&inst, &sol, out, inc);
                        assert!(
                            (naive - fast).abs() < tol(naive),
                            "{policy:?} step {step}: swap naive {naive} vs cached {fast}"
                        );
                        sol.swap(out, inc, &inst);
                        cache.swap(out, inc);
                    }
                    1 => {
                        let Some(inc) = sol.random_unselected(&mut rng) else {
                            continue;
                        };
                        let naive = inst.insert_delta(&sol, inc);
                        let fast = cache.insert_delta(&inst, &sol, inc);
                        assert!(
                            (naive - fast).abs() < tol(naive),
                            "{policy:?} step {step}: insert naive {naive} vs cached {fast}"
                        );
                        sol.insert(inc, &inst);
                        cache.insert(inc);
                    }
                    _ => {
                        if sol.selected_count() <= 1 {
                            continue;
                        }
                        let Some(out) = sol.random_selected(&mut rng) else {
                            continue;
                        };
                        let naive = inst.remove_delta(&sol, out);
                        let fast = cache.remove_delta(&inst, &sol, out);
                        assert!(
                            (naive - fast).abs() < tol(naive),
                            "{policy:?} step {step}: remove naive {naive} vs cached {fast}"
                        );
                        sol.remove(out, &inst);
                        cache.remove(out);
                    }
                }
                // The cached utility never drifts from the ground truth.
                let naive_u = inst.utility(&sol);
                assert!(
                    (cache.utility(&inst, &sol) - naive_u).abs() < 1e-9 * (1.0 + naive_u.abs())
                );
            }
        }
    }

    #[test]
    fn handles_duplicate_latencies() {
        // Several shards share the maximum latency: removing one of them
        // must keep the deadline pinned by the survivors.
        let inst = InstanceBuilder::new()
            .alpha(1.0)
            .capacity(10_000)
            .ddl_policy(DdlPolicy::MaxSelected)
            .shards(vec![
                shard(0, 100, 500.0),
                shard(1, 200, 900.0),
                shard(2, 300, 900.0),
                shard(3, 400, 900.0),
                shard(4, 500, 100.0),
            ])
            .build()
            .unwrap();
        let mut sol = Solution::from_indices(5, [1, 2, 3], &inst);
        let mut cache = EvalCache::new(&inst, &sol);
        assert_eq!(cache.selected_ddl(), 900.0);
        let naive = inst.remove_delta(&sol, 2);
        let fast = cache.remove_delta(&inst, &sol, 2);
        assert!((naive - fast).abs() < 1e-9);
        sol.remove(2, &inst);
        cache.remove(2);
        assert_eq!(cache.selected_ddl(), 900.0);
        // Dropping to a single straggler then swapping it out moves the
        // deadline to the incoming shard's latency.
        sol.remove(1, &inst);
        cache.remove(1);
        let naive = inst.swap_delta(&sol, 3, 4);
        let fast = cache.swap_delta(&inst, &sol, 3, 4);
        assert!((naive - fast).abs() < 1e-9);
        sol.swap(3, 4, &inst);
        cache.swap(3, 4);
        assert_eq!(cache.selected_ddl(), 100.0);
    }

    #[test]
    fn delta_preconditions_panic_in_all_profiles() {
        // `assert!` (not `debug_assert!`): a release build must panic on a
        // violated precondition rather than return a garbage delta.
        let inst = instance(10, DdlPolicy::MaxSelected);
        let sol = Solution::from_indices(10, [0, 1], &inst);
        let cache = EvalCache::new(&inst, &sol);
        for violation in [
            Box::new(|| {
                EvalCache::new(&instance(10, DdlPolicy::MaxSelected), &Solution::empty(10))
                    .remove(3)
            }) as Box<dyn Fn()>,
            Box::new(|| {
                let _ = cache.swap_delta(&inst, &sol, 5, 7); // out not selected
            }),
            Box::new(|| {
                let _ = cache.swap_delta(&inst, &sol, 0, 1); // inc selected
            }),
            Box::new(|| {
                let _ = cache.insert_delta(&inst, &sol, 0); // already selected
            }),
            Box::new(|| {
                let _ = cache.remove_delta(&inst, &sol, 9); // not selected
            }),
            Box::new(|| {
                // Desynchronized cache: count mismatch trips the wire.
                let fewer = Solution::from_indices(10, [0], &inst);
                let _ = cache.remove_delta(&inst, &fewer, 0);
            }),
        ] {
            assert!(
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(violation)).is_err(),
                "precondition violation did not panic"
            );
        }
    }

    #[test]
    fn soa_columns_are_bitwise_copies_of_the_instance() {
        // The struct-of-arrays projection must not change a single bit of
        // any delta: the scale sweep's small-|I| outputs are pinned
        // byte-identical to the AoS implementation. MaxArrival deltas are
        // exactly the memoized marginals; for MaxSelected we check the
        // full expression recomputed straight off the shard records.
        let inst = instance(64, DdlPolicy::MaxArrival);
        let sol = Solution::from_indices(64, (0..64).step_by(2), &inst);
        let cache = EvalCache::new(&inst, &sol);
        for i in (1..64).step_by(2) {
            assert_eq!(cache.insert_delta(&inst, &sol, i), inst.marginal_utility(i));
        }
        assert_eq!(
            cache.swap_delta(&inst, &sol, 4, 9),
            inst.marginal_utility(9) - inst.marginal_utility(4)
        );

        let inst = instance(64, DdlPolicy::MaxSelected);
        let sol = Solution::from_indices(64, (0..64).step_by(2), &inst);
        let cache = EvalCache::new(&inst, &sol);
        let lat = |i: usize| inst.shards()[i].two_phase_latency().as_secs();
        let tx = |i: usize| inst.shards()[i].tx_count() as f64;
        let (out, inc) = (6, 11);
        let t = cache.selected_ddl();
        let t_new = cache.max_excluding(out).max(lat(inc));
        let k = sol.selected_count() as f64;
        let aos = inst.alpha() * (tx(inc) - tx(out)) + (lat(inc) - lat(out)) - k * (t_new - t);
        assert_eq!(cache.swap_delta(&inst, &sol, out, inc), aos);
    }

    #[test]
    fn clone_is_independent() {
        let inst = instance(20, DdlPolicy::MaxSelected);
        let sol = Solution::from_indices(20, [1, 4], &inst);
        let cache = EvalCache::new(&inst, &sol);
        let mut copy = cache.clone();
        copy.insert(9);
        assert_eq!(cache.selected_count(), 2);
        assert_eq!(copy.selected_count(), 3);
    }
}
