//! The selection vector `x ∈ {0,1}^|I|`.
//!
//! [`Solution`] is a compact bitset over the shard indices of one
//! [`Instance`], with cached aggregates
//! (selected count, selected TX total) so the SE sampler's inner loop is
//! allocation-free and `O(1)` per mutation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::problem::Instance;

/// A candidate selection of shards (a state `f ∈ F` of the Markov chain).
///
/// # Example
///
/// ```
/// use mvcom_core::problem::InstanceBuilder;
/// use mvcom_core::solution::Solution;
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// let instance = InstanceBuilder::new()
///     .capacity(100)
///     .shards((0..4).map(|i| ShardInfo::new(
///         CommitteeId(i),
///         10,
///         TwoPhaseLatency::from_total(SimTime::from_secs(1.0 + f64::from(i))),
///     )).collect())
///     .build()
///     .unwrap();
/// let mut sol = Solution::empty(instance.len());
/// sol.insert(2, &instance);
/// assert!(sol.contains(2));
/// assert_eq!(sol.selected_count(), 1);
/// assert_eq!(sol.tx_total(), 10);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    words: Vec<u64>,
    len: usize,
    selected: usize,
    tx_total: u64,
    /// Running `Σ x_i·l_i` in seconds — the latency aggregate the
    /// incremental evaluator ([`crate::eval::EvalCache`]) combines with the
    /// induced deadline to evaluate `U(f)` without iterating the selection.
    /// Tracked as an f64 running sum; insert/remove pairs cancel exactly in
    /// practice, and consumers treat it as correct to ~1e-9 relative.
    #[serde(default)]
    lat_total: f64,
}

/// Equality is equality of the *selection*: the cached aggregates are a
/// function of `(words, instance)` and `lat_total` is a float running sum,
/// so comparing the bitset alone keeps `Eq` lawful.
impl PartialEq for Solution {
    fn eq(&self, other: &Solution) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl Eq for Solution {}

impl Solution {
    /// The empty selection over `len` shards.
    pub fn empty(len: usize) -> Solution {
        Solution {
            words: vec![0; len.div_ceil(64)],
            len,
            selected: 0,
            tx_total: 0,
            lat_total: 0.0,
        }
    }

    /// A selection with exactly the given indices set.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or repeated.
    pub fn from_indices<I>(len: usize, indices: I, instance: &Instance) -> Solution
    where
        I: IntoIterator<Item = usize>,
    {
        let mut sol = Solution::empty(len);
        for i in indices {
            sol.insert(i, instance);
        }
        sol
    }

    /// The full selection (every shard admitted) — the `f_{|I_j|}` state of
    /// Alg. 1 line 25.
    pub fn full(instance: &Instance) -> Solution {
        Solution::from_indices(instance.len(), 0..instance.len(), instance)
    }

    /// Number of shard slots (`|I_j|`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no shard is selected.
    pub fn is_empty(&self) -> bool {
        self.selected == 0
    }

    /// Number of selected shards, `Σ x_i`.
    pub fn selected_count(&self) -> usize {
        self.selected
    }

    /// Total transactions of the selected shards, `Σ x_i·s_i`.
    pub fn tx_total(&self) -> u64 {
        self.tx_total
    }

    /// Total two-phase latency of the selected shards in seconds,
    /// `Σ x_i·l_i` — maintained incrementally so `U(f)` under either
    /// deadline policy reduces to `α·Σs − (k·t − Σl)` without a scan.
    pub fn lat_total(&self) -> f64 {
        self.lat_total
    }

    /// Whether shard `i` is selected.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "shard index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Selects shard `i`, updating the cached aggregates from `instance`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or already selected.
    pub fn insert(&mut self, i: usize, instance: &Instance) {
        assert!(!self.contains(i), "shard {i} already selected");
        self.words[i / 64] |= 1 << (i % 64);
        self.selected += 1;
        self.tx_total += instance.shards()[i].tx_count();
        self.lat_total += instance.shards()[i].two_phase_latency().as_secs();
    }

    /// Deselects shard `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or not selected.
    pub fn remove(&mut self, i: usize, instance: &Instance) {
        assert!(self.contains(i), "shard {i} not selected");
        self.words[i / 64] &= !(1 << (i % 64));
        self.selected -= 1;
        self.tx_total -= instance.shards()[i].tx_count();
        self.lat_total -= instance.shards()[i].two_phase_latency().as_secs();
        if self.selected == 0 {
            // An empty selection has latency sum exactly zero; resetting
            // here keeps float cancellation error from surviving a drain.
            self.lat_total = 0.0;
        }
    }

    /// Performs the Markov-chain transition of paper Fig. 4: deselect `out`
    /// and select `inc` in one step, keeping the cardinality constant.
    pub fn swap(&mut self, out: usize, inc: usize, instance: &Instance) {
        self.remove(out, instance);
        self.insert(inc, instance);
    }

    /// Iterates over the selected indices in increasing order.
    pub fn iter_selected(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(w, &word)| {
            BitIter { word }
                .map(move |b| w * 64 + b)
                .filter(|&i| i < self.len)
        })
    }

    /// Iterates over the unselected indices in increasing order.
    pub fn iter_unselected(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.contains(i))
    }

    /// A uniformly random selected index, or `None` if empty.
    ///
    /// Uses rejection sampling (expected `len/selected` draws — `O(1)` for
    /// the densities the SE sampler works at) with an exact `O(n)`
    /// fallback for pathological densities, so the distribution stays
    /// exactly uniform.
    pub fn random_selected<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        if self.selected == 0 {
            return None;
        }
        for _ in 0..64 {
            let i = rng.gen_range(0..self.len);
            if self.contains(i) {
                return Some(i);
            }
        }
        let target = rng.gen_range(0..self.selected);
        self.iter_selected().nth(target)
    }

    /// A uniformly random unselected index, or `None` if full.
    ///
    /// Same sampling strategy as [`Solution::random_selected`].
    pub fn random_unselected<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let unselected = self.len - self.selected;
        if unselected == 0 {
            return None;
        }
        for _ in 0..64 {
            let i = rng.gen_range(0..self.len);
            if !self.contains(i) {
                return Some(i);
            }
        }
        let target = rng.gen_range(0..unselected);
        self.iter_unselected().nth(target)
    }

    /// The symmetric-difference size `|f ∪ f'| − |f ∩ f'|` between two
    /// solutions — adjacent Markov-chain states have distance exactly 2
    /// (paper §IV-C condition (a)).
    pub fn distance(&self, other: &Solution) -> usize {
        assert_eq!(self.len, other.len, "solutions over different shard sets");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Re-derives a solution over a trimmed instance: keeps every selected
    /// shard except `removed_idx`, shifting higher indices down by one.
    /// Used by the §V failure-handling path.
    pub fn project_out(&self, removed_idx: usize, trimmed: &Instance) -> Solution {
        let mut out = Solution::empty(self.len - 1);
        for i in self.iter_selected() {
            if i == removed_idx {
                continue;
            }
            let j = if i > removed_idx { i - 1 } else { i };
            out.insert(j, trimmed);
        }
        out
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::InstanceBuilder;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn instance(n: usize) -> Instance {
        InstanceBuilder::new()
            .capacity(1_000_000)
            .shards(
                (0..n)
                    .map(|i| {
                        ShardInfo::new(
                            CommitteeId(i as u32),
                            (i as u64 + 1) * 10,
                            TwoPhaseLatency::from_total(SimTime::from_secs(1.0 + i as f64)),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn empty_solution() {
        let sol = Solution::empty(100);
        assert_eq!(sol.len(), 100);
        assert!(sol.is_empty());
        assert_eq!(sol.selected_count(), 0);
        assert_eq!(sol.tx_total(), 0);
        assert_eq!(sol.iter_selected().count(), 0);
        assert_eq!(sol.iter_unselected().count(), 100);
    }

    #[test]
    fn insert_remove_track_aggregates() {
        let inst = instance(10);
        let mut sol = Solution::empty(10);
        sol.insert(3, &inst); // txs 40
        sol.insert(7, &inst); // txs 80
        assert_eq!(sol.selected_count(), 2);
        assert_eq!(sol.tx_total(), 120);
        assert!(sol.contains(3) && sol.contains(7));
        sol.remove(3, &inst);
        assert_eq!(sol.selected_count(), 1);
        assert_eq!(sol.tx_total(), 80);
        assert!(!sol.contains(3));
    }

    #[test]
    #[should_panic(expected = "already selected")]
    fn double_insert_panics() {
        let inst = instance(4);
        let mut sol = Solution::empty(4);
        sol.insert(1, &inst);
        sol.insert(1, &inst);
    }

    #[test]
    #[should_panic(expected = "not selected")]
    fn remove_unselected_panics() {
        let inst = instance(4);
        let mut sol = Solution::empty(4);
        sol.remove(1, &inst);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let sol = Solution::empty(4);
        let _ = sol.contains(4);
    }

    #[test]
    fn swap_keeps_cardinality() {
        let inst = instance(6);
        let mut sol = Solution::from_indices(6, [0, 1], &inst);
        sol.swap(1, 5, &inst);
        assert_eq!(sol.selected_count(), 2);
        assert!(sol.contains(5) && !sol.contains(1));
        // txs: 10 + 60 = 70.
        assert_eq!(sol.tx_total(), 70);
    }

    #[test]
    fn iteration_crosses_word_boundaries() {
        let inst = instance(130);
        let picks = [0usize, 63, 64, 100, 129];
        let sol = Solution::from_indices(130, picks, &inst);
        let got: Vec<usize> = sol.iter_selected().collect();
        assert_eq!(got, picks);
        assert_eq!(sol.iter_unselected().count(), 125);
    }

    #[test]
    fn full_selection() {
        let inst = instance(5);
        let sol = Solution::full(&inst);
        assert_eq!(sol.selected_count(), 5);
        assert_eq!(sol.tx_total(), 10 + 20 + 30 + 40 + 50);
    }

    #[test]
    fn random_picks_are_members() {
        let inst = instance(50);
        let sol = Solution::from_indices(50, (0..50).step_by(3), &inst);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let s = sol.random_selected(&mut rng).unwrap();
            assert!(sol.contains(s));
            let u = sol.random_unselected(&mut rng).unwrap();
            assert!(!sol.contains(u));
        }
    }

    #[test]
    fn random_picks_cover_uniformly() {
        let inst = instance(8);
        let sol = Solution::from_indices(8, [1, 4, 6], &inst);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        for _ in 0..3000 {
            counts[sol.random_selected(&mut rng).unwrap()] += 1;
        }
        for i in [1, 4, 6] {
            assert!(counts[i] > 800, "index {i} drawn {}", counts[i]);
        }
    }

    /// The |I|=8 coverage test above never leaves the rejection loop
    /// (density 3/8 ⇒ the 64 draws miss with probability ≈(5/8)⁶⁴). This
    /// one pins the *fallback* branch — the exact-order-statistic path
    /// that used to be `O(|I|)` and is the hot path at sparse densities:
    /// at 3/4096 the rejection loop fails ≈95% of the time, so ~950 of
    /// 1000 draws below exercise the fallback.
    #[test]
    fn random_picks_cover_uniformly_through_the_fallback() {
        let n = 4096;
        let inst = instance(n);
        let picks = [7usize, 2048, 4095];
        let sol = Solution::from_indices(n, picks, &inst);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut counts = [0u32; 4096];
        for _ in 0..1000 {
            counts[sol.random_selected(&mut rng).unwrap()] += 1;
        }
        for i in picks {
            assert!(counts[i] > 230, "index {i} drawn {}", counts[i]);
        }
        assert_eq!(counts.iter().sum::<u32>(), 1000);
        // The mirror regime: all but a handful selected, so the
        // unselected fallback fires on nearly every draw.
        let unpicked = [9usize, 1024, 4000];
        let sol = Solution::from_indices(n, (0..n).filter(|i| !unpicked.contains(i)), &inst);
        let mut counts = [0u32; 4096];
        for _ in 0..1000 {
            counts[sol.random_unselected(&mut rng).unwrap()] += 1;
        }
        for i in unpicked {
            assert!(counts[i] > 230, "index {i} drawn {}", counts[i]);
        }
        assert_eq!(counts.iter().sum::<u32>(), 1000);
    }

    #[test]
    fn random_on_empty_and_full_return_none() {
        let inst = instance(3);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(Solution::empty(3).random_selected(&mut rng), None);
        assert_eq!(Solution::full(&inst).random_unselected(&mut rng), None);
    }

    #[test]
    fn distance_is_symmetric_difference() {
        let inst = instance(10);
        let a = Solution::from_indices(10, [0, 1, 2], &inst);
        let b = Solution::from_indices(10, [0, 2, 5], &inst);
        assert_eq!(a.distance(&b), 2);
        assert_eq!(a.distance(&a), 0);
    }

    /// Satellite invariant check: after any random insert/remove/swap
    /// sequence, every cached aggregate (`selected_count`, `tx_total`,
    /// `lat_total`) and the eval-cache order statistics must match a
    /// from-scratch recount over the bitset.
    #[test]
    fn cached_aggregates_match_recount_after_random_ops() {
        let n = 130;
        let inst = instance(n);
        for seed in 0..8u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut sol = Solution::empty(n);
            let mut cache = crate::eval::EvalCache::new(&inst, &sol);
            for _ in 0..400 {
                match rng.gen_range(0..3) {
                    0 => {
                        if let Some(i) = sol.random_unselected(&mut rng) {
                            sol.insert(i, &inst);
                            cache.insert(i);
                        }
                    }
                    1 => {
                        if let Some(i) = sol.random_selected(&mut rng) {
                            sol.remove(i, &inst);
                            cache.remove(i);
                        }
                    }
                    _ => {
                        let (out, inc) = (
                            sol.random_selected(&mut rng),
                            sol.random_unselected(&mut rng),
                        );
                        if let (Some(out), Some(inc)) = (out, inc) {
                            sol.swap(out, inc, &inst);
                            cache.swap(out, inc);
                        }
                    }
                }
                // From-scratch recounts over the raw bitset.
                let count = sol.iter_selected().count();
                let txs: u64 = sol
                    .iter_selected()
                    .map(|i| inst.shards()[i].tx_count())
                    .sum();
                let lats: f64 = sol
                    .iter_selected()
                    .map(|i| inst.shards()[i].two_phase_latency().as_secs())
                    .sum();
                let max_lat = sol
                    .iter_selected()
                    .map(|i| inst.shards()[i].two_phase_latency().as_secs())
                    .fold(0.0, f64::max);
                assert_eq!(sol.selected_count(), count);
                assert_eq!(sol.tx_total(), txs);
                assert!(
                    (sol.lat_total() - lats).abs() < 1e-9 * (1.0 + lats.abs()),
                    "lat_total {} vs recount {lats}",
                    sol.lat_total()
                );
                assert_eq!(cache.selected_count(), count);
                assert_eq!(cache.selected_ddl(), max_lat);
            }
        }
    }

    #[test]
    fn project_out_shifts_indices() {
        let inst = instance(6);
        let sol = Solution::from_indices(6, [0, 2, 5], &inst);
        // Remove index 2 from the instance; selected {0, 5} become {0, 4}.
        let trimmed = InstanceBuilder::new()
            .capacity(1_000_000)
            .shards(
                inst.shards()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != 2)
                    .map(|(_, s)| *s)
                    .collect(),
            )
            .build()
            .unwrap();
        let projected = sol.project_out(2, &trimmed);
        let got: Vec<usize> = projected.iter_selected().collect();
        assert_eq!(got, vec![0, 4]);
        assert_eq!(projected.len(), 5);
        // TX totals correspond to the surviving shards (10 + 60).
        assert_eq!(projected.tx_total(), 70);
    }
}
