//! Scale-regime benchmark (ROADMAP open item 2): times the 10⁴–10⁵
//! committee pipeline end to end and writes a machine-readable
//! `BENCH_scale.json` (workspace root by default; override with
//! `MVCOM_BENCH_OUT`). Set `MVCOM_BENCH_QUICK=1` for a reduced smoke run.
//!
//! Four sections:
//!
//! 1. `streaming_build` — chunked trace→instance construction at each
//!    sweep size (the `ShardStream` path that avoids O(|I|)
//!    intermediates).
//! 2. `dp` — the sparse/quantized DP against the dense table at a size
//!    the dense table can still afford (differential: identical
//!    utilities), plus sparse-only timings at the sweep sizes where the
//!    dense O(|I|·buckets) table is off the menu.
//! 3. `sweep` — the fig11-shaped workload (SE with a strided chain
//!    budget, sparse DP, greedy) per size. **Gated**: every point must
//!    finish within its per-size wall-clock budget (chosen with ≥ 2×
//!    headroom over the fast-path numbers on the 1-core CI host).
//! 4. `se_fast_path` — the `SeSampler::RankSelect` fast path against the
//!    frozen `RejectionScan` reference at the gate size, same instance
//!    and seed. **Differential**: the two runs must produce identical
//!    trajectories and solutions (the fast path only replaces the
//!    sampler's `O(|I|)` fallback with a Fenwick select, bit-identically).
//!    **Gated** ≥ 4× single-thread speedup on `se_secs` in full mode;
//!    the `--threads 4` replica fan-out is reported alongside and gated
//!    ≥ 2× only when the host exposes ≥ 4 cores.
//! 5. `epoch_threads` — `ElasticoSim::run_epoch` at `--threads 1` vs 4
//!    on a many-committee epoch, with a differential check that the two
//!    reports are identical. **Gated** ≥ 2× when the host exposes ≥ 4
//!    cores; annotated (not failed) on smaller hosts, where the fan-out
//!    is core-bound by construction.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use std::path::PathBuf;
use std::time::Instant;

use mvcom_baselines::dp::DpConfig;
use mvcom_baselines::{DpSolver, GreedySolver, Solver, SparseDpSolver};
use mvcom_bench::harness::streamed_instance;
use mvcom_core::se::{SeConfig, SeEngine, SeSampler};
use mvcom_elastico::epoch::{ElasticoConfig, ElasticoSim};

/// Per-size wall-clock budgets for the sweep (release build, full mode):
/// every point is gated, with the budgets set at ≥ 2× the fast-path
/// totals measured on the 1-core CI host (≈2.2s / 3.6s / 5.2s at
/// 10k/50k/100k) — and all far below the legacy sampler's 7.1s / 32.4s /
/// 64.9s, so a budget pass is itself evidence the fast path is active.
fn wall_clock_budget_secs(committees: usize) -> f64 {
    match committees {
        0..=10_000 => 5.0,
        10_001..=20_000 => 10.0,
        20_001..=50_000 => 20.0,
        _ => 40.0,
    }
}

/// Single-thread `se_secs` speedup the fast path must reach over the
/// frozen `RejectionScan` reference at the gate size (full mode).
const SE_FAST_PATH_GATE: f64 = 4.0;

/// Sparse-DP bucket budget at scale (matches `experiments::fig_scale`).
const SCALE_BUCKETS: usize = 4_096;

#[derive(serde::Serialize)]
struct BuildTiming {
    committees: usize,
    secs: f64,
    committees_per_sec: f64,
}

#[derive(serde::Serialize)]
struct DpComparison {
    /// Size of the differential point (dense table still affordable).
    committees: usize,
    buckets: usize,
    dense_secs: f64,
    sparse_secs: f64,
    speedup: f64,
    utilities_agree: bool,
}

#[derive(serde::Serialize)]
struct SparseDpTiming {
    committees: usize,
    buckets: usize,
    secs: f64,
}

#[derive(serde::Serialize)]
struct SweepPoint {
    committees: usize,
    se_iterations: u64,
    build_secs: f64,
    se_secs: f64,
    sparse_dp_secs: f64,
    greedy_secs: f64,
    total_secs: f64,
    /// Per-size wall-clock ceiling this point must finish within.
    budget_secs: f64,
    /// Every sweep point is wall-clock gated against its budget.
    gated: bool,
}

#[derive(serde::Serialize)]
struct SeFastPath {
    committees: usize,
    se_iterations: u64,
    /// The frozen `SeSampler::RejectionScan` reference (HEAD behavior:
    /// 64 rejection draws, then an `O(|I|)` `iter_*().nth()` scan).
    legacy_secs: f64,
    /// `SeSampler::RankSelect` (Fenwick select fallback), single thread.
    fast_secs: f64,
    speedup: f64,
    speedup_gate: f64,
    /// Whether the ≥ `speedup_gate` check applies (full mode only).
    gated: bool,
    /// The two samplers produced identical trajectories and solutions —
    /// the measurement doubles as the bit-identity differential.
    outputs_identical: bool,
    /// The same fast-path run under the `--threads 4` replica fan-out.
    fast_threads4_secs: f64,
    thread_speedup: f64,
    cores_available: usize,
    /// Spells out how `thread_speedup` relates to the detected core
    /// count, so a ~1× reading on a 1-core CI host is self-explanatory.
    thread_speedup_note: String,
}

#[derive(serde::Serialize)]
struct EpochThreads {
    committees: usize,
    threads: usize,
    serial_secs: f64,
    threaded_secs: f64,
    thread_speedup: f64,
    cores_available: usize,
    reports_identical: bool,
    /// Spells out how `thread_speedup` relates to the detected core
    /// count, so a ~1× reading on a 1-core CI host is self-explanatory.
    thread_speedup_note: String,
}

#[derive(serde::Serialize)]
struct Acceptance {
    criterion: String,
    sweep_within_budgets: bool,
    se_fast_path_speedup: f64,
    se_fast_path_gate: f64,
    se_fast_path_gated: bool,
    thread_speedup: f64,
    thread_speedup_gated: bool,
    pass: bool,
}

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    mode: String,
    streaming_build: Vec<BuildTiming>,
    dp: DpComparison,
    sparse_dp: Vec<SparseDpTiming>,
    sweep: Vec<SweepPoint>,
    se_fast_path: SeFastPath,
    epoch_threads: EpochThreads,
    acceptance: Acceptance,
}

/// Best-of-3 wall clock of `f` (no warm-up discard: every section here
/// runs seconds, not nanoseconds, so the first pass is already warm).
fn timed<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.unwrap())
}

/// One wall-clock sample of `f` — for the heavyweight sweep points where
/// best-of-3 would triple a minutes-long run.
fn timed_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64(), value)
}

fn measure_builds(sizes: &[usize]) -> Vec<BuildTiming> {
    sizes
        .iter()
        .map(|&n| {
            let (secs, instance) =
                timed(|| streamed_instance(n, 1_000 * n as u64, 1.5, 31_000).unwrap());
            assert_eq!(instance.len(), n);
            BuildTiming {
                committees: n,
                secs,
                committees_per_sec: n as f64 / secs.max(1e-9),
            }
        })
        .collect()
}

fn measure_dp_differential(n: usize) -> DpComparison {
    let instance = streamed_instance(n, 1_000 * n as u64, 1.5, 31_100).unwrap();
    let config = DpConfig::paper();
    let (dense_secs, dense) = timed(|| DpSolver::new(config).solve(&instance).unwrap());
    let (sparse_secs, sparse) = timed(|| SparseDpSolver::new(config).solve(&instance).unwrap());
    DpComparison {
        committees: n,
        buckets: config.max_buckets,
        dense_secs,
        sparse_secs,
        speedup: dense_secs / sparse_secs.max(1e-9),
        utilities_agree: (dense.best_utility - sparse.best_utility).abs() < 1e-6,
    }
}

fn measure_sparse_dp(sizes: &[usize]) -> Vec<SparseDpTiming> {
    sizes
        .iter()
        .map(|&n| {
            let instance = streamed_instance(n, 1_000 * n as u64, 1.5, 31_200).unwrap();
            let config = DpConfig {
                max_buckets: SCALE_BUCKETS,
            };
            let (secs, _) = timed(|| SparseDpSolver::new(config).solve(&instance).unwrap());
            SparseDpTiming {
                committees: n,
                buckets: SCALE_BUCKETS,
                secs,
            }
        })
        .collect()
}

/// The sweep's SE configuration at one size (shared with the fast-path
/// section so the differential times exactly the sweep workload).
fn sweep_se_config(iters: u64) -> SeConfig {
    SeConfig {
        gamma: 10,
        max_iterations: iters,
        convergence_window: 0,
        record_every: 1,
        max_chains: 4,
        ..SeConfig::paper(31_400)
    }
}

fn measure_sweep_point(n: usize, iters: u64) -> SweepPoint {
    let (build_secs, instance) =
        timed_once(|| streamed_instance(n, 1_000 * n as u64, 1.5, 31_300).unwrap());
    let (se_secs, se) = timed_once(|| {
        SeEngine::new(&instance, sweep_se_config(iters))
            .unwrap()
            .run()
    });
    assert!(instance.is_feasible(&se.best_solution));
    let (sparse_dp_secs, _) = timed_once(|| {
        SparseDpSolver::new(DpConfig {
            max_buckets: SCALE_BUCKETS,
        })
        .solve(&instance)
        .unwrap()
    });
    let (greedy_secs, _) = timed_once(|| GreedySolver::new().solve(&instance).unwrap());
    SweepPoint {
        committees: n,
        se_iterations: iters,
        build_secs,
        se_secs,
        sparse_dp_secs,
        greedy_secs,
        total_secs: build_secs + se_secs + sparse_dp_secs + greedy_secs,
        budget_secs: wall_clock_budget_secs(n),
        gated: true,
    }
}

/// The tentpole measurement: `RejectionScan` (frozen HEAD sampler) vs
/// `RankSelect` on the gate-size sweep workload, single thread, plus the
/// `--threads 4` replica fan-out. Doubles as the bit-identity
/// differential — all three runs must agree exactly.
fn measure_se_fast_path(n: usize, iters: u64, gated: bool) -> SeFastPath {
    let instance = streamed_instance(n, 1_000 * n as u64, 1.5, 31_300).unwrap();
    let config = sweep_se_config(iters);
    let (legacy_secs, legacy) = timed_once(|| {
        SeEngine::new(&instance, config)
            .unwrap()
            .with_sampler(SeSampler::RejectionScan)
            .run()
    });
    let (fast_secs, fast) = timed_once(|| {
        SeEngine::new(&instance, config)
            .unwrap()
            .with_sampler(SeSampler::RankSelect)
            .run()
    });
    let (fast_threads4_secs, fanned) = timed_once(|| {
        SeEngine::new(&instance, config)
            .unwrap()
            .with_threads(4)
            .run()
    });
    let outputs_identical = legacy.best_solution == fast.best_solution
        && legacy.best_utility == fast.best_utility
        && legacy.trajectory == fast.trajectory
        && fanned.best_solution == fast.best_solution
        && fanned.best_utility == fast.best_utility
        && fanned.trajectory == fast.trajectory;
    let cores_available = std::thread::available_parallelism().map_or(1, |p| p.get());
    let thread_speedup = fast_secs / fast_threads4_secs.max(1e-9);
    let thread_speedup_note = if cores_available < 4 {
        format!(
            "{thread_speedup:.2}x from --threads 4 on a {cores_available}-core host: \
             the replica fan-out is core-bound, so the >=2x gate is waived here \
             (not a regression)"
        )
    } else {
        format!("{thread_speedup:.2}x from --threads 4 on a {cores_available}-core host")
    };
    SeFastPath {
        committees: n,
        se_iterations: iters,
        legacy_secs,
        fast_secs,
        speedup: legacy_secs / fast_secs.max(1e-9),
        speedup_gate: SE_FAST_PATH_GATE,
        gated,
        outputs_identical,
        fast_threads4_secs,
        thread_speedup,
        cores_available,
        thread_speedup_note,
    }
}

fn measure_epoch_threads(n_nodes: u32, threads: usize) -> EpochThreads {
    let config = ElasticoConfig::with_nodes(n_nodes, 16);
    let seed = 31_500;
    // Differential first: the parallel fan-out must reproduce the serial
    // epoch exactly (the elastico test suite asserts byte-identical event
    // streams too; the report check here keeps the bench self-contained).
    let serial_report = ElasticoSim::new(config.clone(), seed)
        .unwrap()
        .run_epoch()
        .unwrap();
    let threaded_report = ElasticoSim::new(config.clone(), seed)
        .unwrap()
        .with_threads(threads)
        .run_epoch()
        .unwrap();
    let reports_identical = serial_report == threaded_report;
    let committees = serial_report.formed.len();
    let (serial_secs, _) = timed(|| {
        ElasticoSim::new(config.clone(), seed)
            .unwrap()
            .run_epoch()
            .unwrap()
            .shards
            .len()
    });
    let (threaded_secs, _) = timed(|| {
        ElasticoSim::new(config.clone(), seed)
            .unwrap()
            .with_threads(threads)
            .run_epoch()
            .unwrap()
            .shards
            .len()
    });
    let cores_available = std::thread::available_parallelism().map_or(1, |p| p.get());
    let thread_speedup = serial_secs / threaded_secs.max(1e-9);
    let thread_speedup_note = if cores_available < 4 {
        format!(
            "{thread_speedup:.2}x from --threads {threads} on a {cores_available}-core host: \
             the fan-out is core-bound, so the >=2x gate is waived here (not a regression)"
        )
    } else {
        format!("{thread_speedup:.2}x from --threads {threads} on a {cores_available}-core host")
    };
    EpochThreads {
        committees,
        threads,
        serial_secs,
        threaded_secs,
        thread_speedup,
        cores_available,
        reports_identical,
        thread_speedup_note,
    }
}

fn main() {
    let quick = std::env::var("MVCOM_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (sizes, gate_size, iters): (Vec<usize>, usize, u64) = if quick {
        (vec![5_000, 20_000], 20_000, 300)
    } else {
        (vec![10_000, 50_000, 100_000], 50_000, 3_000)
    };

    let streaming_build = measure_builds(&sizes);
    for b in &streaming_build {
        eprintln!(
            "  scale/build |I|={}: {:.3}s ({:.0} committees/s)",
            b.committees, b.secs, b.committees_per_sec
        );
    }

    let dp = measure_dp_differential(2_000);
    assert!(
        dp.utilities_agree,
        "sparse and dense DP disagree at |I|={}",
        dp.committees
    );
    eprintln!(
        "  scale/dp |I|={} ({} buckets): dense {:.3}s, sparse {:.3}s ({:.1}x), agree={}",
        dp.committees, dp.buckets, dp.dense_secs, dp.sparse_secs, dp.speedup, dp.utilities_agree
    );
    let sparse_dp = measure_sparse_dp(&sizes);
    for t in &sparse_dp {
        eprintln!(
            "  scale/sparse_dp |I|={} ({} buckets): {:.3}s",
            t.committees, t.buckets, t.secs
        );
    }

    let sweep: Vec<SweepPoint> = sizes
        .iter()
        .map(|&n| {
            let point = measure_sweep_point(n, iters);
            eprintln!(
                "  scale/sweep |I|={}: build {:.2}s + SE {:.2}s ({} iters) + SDP {:.2}s + \
                 greedy {:.2}s = {:.2}s [budget {:.0}s]",
                point.committees,
                point.build_secs,
                point.se_secs,
                point.se_iterations,
                point.sparse_dp_secs,
                point.greedy_secs,
                point.total_secs,
                point.budget_secs,
            );
            point
        })
        .collect();
    let sweep_within_budgets = sweep.iter().all(|p| p.total_secs <= p.budget_secs);

    let se_fast_path = measure_se_fast_path(gate_size, iters, !quick);
    assert!(
        se_fast_path.outputs_identical,
        "SE output diverged across samplers/threads at |I|={gate_size} — the fast path \
         must be bit-identical to the RejectionScan reference"
    );
    eprintln!(
        "  scale/se_fast_path |I|={}: legacy {:.2}s, fast {:.2}s ({:.1}x, gate {:.0}x{}), \
         --threads 4 {:.2}s ({})",
        se_fast_path.committees,
        se_fast_path.legacy_secs,
        se_fast_path.fast_secs,
        se_fast_path.speedup,
        se_fast_path.speedup_gate,
        if se_fast_path.gated { "" } else { ", ungated" },
        se_fast_path.fast_threads4_secs,
        se_fast_path.thread_speedup_note,
    );

    let epoch_threads = measure_epoch_threads(if quick { 512 } else { 1_024 }, 4);
    assert!(
        epoch_threads.reports_identical,
        "run_epoch diverged between --threads 1 and --threads {}",
        epoch_threads.threads
    );
    eprintln!(
        "  scale/epoch_threads {} committees: serial {:.3}s, --threads {} {:.3}s ({})",
        epoch_threads.committees,
        epoch_threads.serial_secs,
        epoch_threads.threads,
        epoch_threads.threaded_secs,
        epoch_threads.thread_speedup_note
    );

    let thread_speedup_gated = epoch_threads.cores_available >= 4;
    let fast_path_ok = !se_fast_path.gated || se_fast_path.speedup >= SE_FAST_PATH_GATE;
    let threads_ok = !thread_speedup_gated || epoch_threads.thread_speedup >= 2.0;
    let report = Report {
        bench: "scale".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        streaming_build,
        dp,
        sparse_dp,
        sweep,
        acceptance: Acceptance {
            criterion: format!(
                "every fig11-shaped sweep point (streamed build + SE with a 4-chain \
                 budget x {iters} iters + sparse DP + greedy) completes within its \
                 per-size wall-clock budget; the RankSelect SE fast path reaches \
                 >={SE_FAST_PATH_GATE}x over the frozen RejectionScan reference at \
                 |I|={gate_size} on a single thread (full mode) while producing \
                 bit-identical output; run_epoch --threads 4 reproduces the serial \
                 epoch exactly and reaches >=2x when >=4 cores are detected \
                 (annotated, not gated, on smaller hosts)"
            ),
            sweep_within_budgets,
            se_fast_path_speedup: se_fast_path.speedup,
            se_fast_path_gate: SE_FAST_PATH_GATE,
            se_fast_path_gated: se_fast_path.gated,
            thread_speedup: epoch_threads.thread_speedup,
            thread_speedup_gated,
            pass: sweep_within_budgets && fast_path_ok && threads_ok,
        },
        se_fast_path,
        epoch_threads,
    };

    let out = std::env::var("MVCOM_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_scale.json")
        },
        PathBuf::from,
    );
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, text).expect("writing bench report");
    eprintln!(
        "  scale report: {} (acceptance {}: budgets {}, fast path {:.1}x/{:.0}x{}, \
         threads {:.2}x{})",
        out.display(),
        if report.acceptance.pass {
            "PASS"
        } else {
            "FAIL"
        },
        if sweep_within_budgets { "met" } else { "BLOWN" },
        report.acceptance.se_fast_path_speedup,
        SE_FAST_PATH_GATE,
        if report.acceptance.se_fast_path_gated {
            " [gated]"
        } else {
            " [ungated]"
        },
        report.acceptance.thread_speedup,
        if thread_speedup_gated {
            " [gated]"
        } else {
            " [ungated]"
        },
    );
    assert!(
        report.acceptance.pass,
        "acceptance: budgets met: {sweep_within_budgets}, fast path {:.2}x \
         (gate {SE_FAST_PATH_GATE}x, gated: {}), thread speedup {:.2}x (gated: \
         {thread_speedup_gated})",
        report.acceptance.se_fast_path_speedup,
        report.acceptance.se_fast_path_gated,
        report.acceptance.thread_speedup
    );
}
