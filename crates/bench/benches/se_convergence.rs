//! Benchmarks of the SE engine: per-iteration cost and full convergence
//! runs, including the Γ ablation and the MaxSelected-deadline ablation
//! called out in DESIGN.md.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use mvcom_bench::harness::paper_instance;
use mvcom_core::problem::{DdlPolicy, InstanceBuilder};
use mvcom_core::se::{SeConfig, SeEngine};

fn bench_se(c: &mut Criterion) {
    let mut group = c.benchmark_group("se");
    group.sample_size(10);

    // Per-iteration cost at growing |I|.
    for &n in &[50usize, 200, 500] {
        let instance = paper_instance(n, 1_000 * n as u64, 1.5, 7).unwrap();
        group.bench_with_input(BenchmarkId::new("100_iterations", n), &n, |b, _| {
            let config = SeConfig {
                gamma: 10,
                max_iterations: 100,
                convergence_window: 0,
                record_every: 100,
                ..SeConfig::paper(1)
            };
            b.iter(|| {
                let engine = SeEngine::new(&instance, config).unwrap();
                black_box(engine.run().best_utility)
            });
        });
    }

    // Γ ablation: same iteration budget, different replica counts.
    let instance = paper_instance(100, 100_000, 1.5, 8).unwrap();
    for &gamma in &[1usize, 10, 25] {
        group.bench_with_input(BenchmarkId::new("gamma", gamma), &gamma, |b, &gamma| {
            let config = SeConfig {
                gamma,
                max_iterations: 200,
                convergence_window: 0,
                record_every: 200,
                ..SeConfig::paper(2)
            };
            b.iter(|| {
                let engine = SeEngine::new(&instance, config).unwrap();
                black_box(engine.run().best_utility)
            });
        });
    }

    // DDL-policy ablation: the separable MaxArrival objective vs the
    // non-separable MaxSelected extension (O(1) vs O(n) swap deltas).
    for policy in [DdlPolicy::MaxArrival, DdlPolicy::MaxSelected] {
        let base = paper_instance(50, 50_000, 1.5, 9).unwrap();
        let instance = InstanceBuilder::new()
            .alpha(1.5)
            .capacity(50_000)
            .n_min(25)
            .ddl_policy(policy)
            .shards(base.shards().to_vec())
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("ddl_policy", format!("{policy:?}")),
            &policy,
            |b, _| {
                let config = SeConfig {
                    gamma: 4,
                    max_iterations: 100,
                    convergence_window: 0,
                    record_every: 100,
                    ..SeConfig::paper(3)
                };
                b.iter(|| {
                    let engine = SeEngine::new(&instance, config).unwrap();
                    black_box(engine.run().best_utility)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_se);
criterion_main!(benches);
