//! Benchmarks of the SE engine: per-iteration cost and full convergence
//! runs, including the Γ ablation and the MaxSelected-deadline ablation
//! called out in DESIGN.md.
//!
//! Besides the criterion-style console output, this bench writes a machine-
//! readable `BENCH_se_convergence.json` report (workspace root by default;
//! override with `MVCOM_BENCH_OUT`) so CI can archive a perf trail. Set
//! `MVCOM_BENCH_QUICK=1` for a reduced-size smoke run.
//!
//! The report's acceptance doubles as a differential check on the SE fast
//! path (DESIGN.md §14): at the largest measured size, a seeded
//! `SeSampler::RejectionScan` run and a `SeSampler::RankSelect` run must
//! produce identical solutions, utilities, and trajectories.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use std::path::PathBuf;
use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};

use mvcom_bench::harness::paper_instance;
use mvcom_core::problem::{DdlPolicy, InstanceBuilder};
use mvcom_core::se::{SeConfig, SeEngine, SeSampler};

fn bench_se(c: &mut Criterion) {
    let mut group = c.benchmark_group("se");
    group.sample_size(10);

    // Per-iteration cost at growing |I|.
    for &n in &[50usize, 200, 500] {
        let instance = paper_instance(n, 1_000 * n as u64, 1.5, 7).unwrap();
        group.bench_with_input(BenchmarkId::new("100_iterations", n), &n, |b, _| {
            let config = SeConfig {
                gamma: 10,
                max_iterations: 100,
                convergence_window: 0,
                record_every: 100,
                ..SeConfig::paper(1)
            };
            b.iter(|| {
                let engine = SeEngine::new(&instance, config).unwrap();
                black_box(engine.run().best_utility)
            });
        });
    }

    // Γ ablation: same iteration budget, different replica counts.
    let instance = paper_instance(100, 100_000, 1.5, 8).unwrap();
    for &gamma in &[1usize, 10, 25] {
        group.bench_with_input(BenchmarkId::new("gamma", gamma), &gamma, |b, &gamma| {
            let config = SeConfig {
                gamma,
                max_iterations: 200,
                convergence_window: 0,
                record_every: 200,
                ..SeConfig::paper(2)
            };
            b.iter(|| {
                let engine = SeEngine::new(&instance, config).unwrap();
                black_box(engine.run().best_utility)
            });
        });
    }

    // DDL-policy ablation: the separable MaxArrival objective vs the
    // non-separable MaxSelected extension (O(1) vs O(n) swap deltas).
    for policy in [DdlPolicy::MaxArrival, DdlPolicy::MaxSelected] {
        let base = paper_instance(50, 50_000, 1.5, 9).unwrap();
        let instance = InstanceBuilder::new()
            .alpha(1.5)
            .capacity(50_000)
            .n_min(25)
            .ddl_policy(policy)
            .shards(base.shards().to_vec())
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("ddl_policy", format!("{policy:?}")),
            &policy,
            |b, _| {
                let config = SeConfig {
                    gamma: 4,
                    max_iterations: 100,
                    convergence_window: 0,
                    record_every: 100,
                    ..SeConfig::paper(3)
                };
                b.iter(|| {
                    let engine = SeEngine::new(&instance, config).unwrap();
                    black_box(engine.run().best_utility)
                });
            },
        );
    }
    group.finish();
}

#[derive(serde::Serialize)]
struct IterationCost {
    committees: usize,
    se_iterations: u64,
    secs: f64,
    best_utility: f64,
}

#[derive(serde::Serialize)]
struct GammaPoint {
    gamma: usize,
    secs: f64,
    best_utility: f64,
}

#[derive(serde::Serialize)]
struct DdlPoint {
    policy: String,
    secs: f64,
    best_utility: f64,
}

#[derive(serde::Serialize)]
struct Acceptance {
    criterion: String,
    /// RejectionScan vs RankSelect at the largest measured size: same
    /// solution, utility, and trajectory (the fast-path differential).
    samplers_identical: bool,
    utilities_finite: bool,
    pass: bool,
}

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    mode: String,
    iteration_cost: Vec<IterationCost>,
    gamma_ablation: Vec<GammaPoint>,
    ddl_ablation: Vec<DdlPoint>,
    acceptance: Acceptance,
}

/// Wall clock of one `f()` call (each section here runs a full seeded SE
/// convergence pass — seconds, not nanoseconds, so best-of-1 suffices).
fn timed_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64(), value)
}

fn report_config(iters: u64, gamma: usize, seed: u64) -> SeConfig {
    SeConfig {
        gamma,
        max_iterations: iters,
        convergence_window: 0,
        record_every: iters,
        ..SeConfig::paper(seed)
    }
}

fn write_report() {
    let quick = std::env::var("MVCOM_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (sizes, iters): (Vec<usize>, u64) = if quick {
        (vec![50, 200], 50)
    } else {
        (vec![50, 200, 500], 100)
    };

    let iteration_cost: Vec<IterationCost> = sizes
        .iter()
        .map(|&n| {
            let instance = paper_instance(n, 1_000 * n as u64, 1.5, 7).unwrap();
            let (secs, best_utility) = timed_once(|| {
                SeEngine::new(&instance, report_config(iters, 10, 1))
                    .unwrap()
                    .run()
                    .best_utility
            });
            eprintln!(
                "  se_convergence/report |I|={n}: {secs:.3}s for {iters} iters, U={best_utility:.1}"
            );
            IterationCost {
                committees: n,
                se_iterations: iters,
                secs,
                best_utility,
            }
        })
        .collect();

    let gamma_instance = paper_instance(100, 100_000, 1.5, 8).unwrap();
    let gamma_ablation: Vec<GammaPoint> = [1usize, 10, 25]
        .iter()
        .map(|&gamma| {
            let (secs, best_utility) = timed_once(|| {
                SeEngine::new(&gamma_instance, report_config(2 * iters, gamma, 2))
                    .unwrap()
                    .run()
                    .best_utility
            });
            eprintln!("  se_convergence/gamma {gamma}: {secs:.3}s, U={best_utility:.1}");
            GammaPoint {
                gamma,
                secs,
                best_utility,
            }
        })
        .collect();

    let ddl_ablation: Vec<DdlPoint> = [DdlPolicy::MaxArrival, DdlPolicy::MaxSelected]
        .iter()
        .map(|&policy| {
            let base = paper_instance(50, 50_000, 1.5, 9).unwrap();
            let instance = InstanceBuilder::new()
                .alpha(1.5)
                .capacity(50_000)
                .n_min(25)
                .ddl_policy(policy)
                .shards(base.shards().to_vec())
                .build()
                .unwrap();
            let (secs, best_utility) = timed_once(|| {
                SeEngine::new(&instance, report_config(iters, 4, 3))
                    .unwrap()
                    .run()
                    .best_utility
            });
            eprintln!("  se_convergence/ddl {policy:?}: {secs:.3}s, U={best_utility:.1}");
            DdlPoint {
                policy: format!("{policy:?}"),
                secs,
                best_utility,
            }
        })
        .collect();

    // Fast-path differential at the largest measured size: both samplers
    // on the same seed must agree bit-for-bit (DESIGN.md §14).
    let n = *sizes.last().unwrap();
    let instance = paper_instance(n, 1_000 * n as u64, 1.5, 7).unwrap();
    let slow = SeEngine::new(&instance, report_config(iters, 10, 1))
        .unwrap()
        .with_sampler(SeSampler::RejectionScan)
        .run();
    let fast = SeEngine::new(&instance, report_config(iters, 10, 1))
        .unwrap()
        .with_sampler(SeSampler::RankSelect)
        .run();
    let samplers_identical = slow.best_solution == fast.best_solution
        && slow.best_utility == fast.best_utility
        && slow.trajectory == fast.trajectory;

    let utilities_finite = iteration_cost
        .iter()
        .map(|p| p.best_utility)
        .chain(gamma_ablation.iter().map(|p| p.best_utility))
        .chain(ddl_ablation.iter().map(|p| p.best_utility))
        .all(f64::is_finite);
    let pass = samplers_identical && utilities_finite;

    let report = Report {
        bench: "se_convergence".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        iteration_cost,
        gamma_ablation,
        ddl_ablation,
        acceptance: Acceptance {
            criterion: format!(
                "RejectionScan and RankSelect produce identical output at |I|={n} \
                 (seeded, {iters} iters); every recorded utility is finite"
            ),
            samplers_identical,
            utilities_finite,
            pass,
        },
    };

    let out = std::env::var("MVCOM_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_se_convergence.json")
        },
        PathBuf::from,
    );
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, text).expect("writing bench report");
    eprintln!(
        "  se_convergence report: {} (acceptance {}: samplers identical: {samplers_identical}, \
         utilities finite: {utilities_finite})",
        out.display(),
        if pass { "PASS" } else { "FAIL" },
    );
    assert!(
        pass,
        "acceptance: samplers identical: {samplers_identical}, utilities finite: \
         {utilities_finite}"
    );
}

criterion_group!(benches, bench_se);

fn main() {
    benches();
    write_report();
}
