//! Sustained-ingest benchmark for the `mvcom-daemon` service loop:
//! steady-state throughput (txs/sec, reports/sec), exact-percentile
//! epoch-close latency over ≥ 60 epochs, and an in-process re-check of
//! the kill/resume byte-identity guarantee. Writes `BENCH_daemon.json`
//! (workspace root by default; override with `MVCOM_BENCH_OUT`). Set
//! `MVCOM_BENCH_QUICK=1` for a reduced smoke run.
//!
//! This is the only place the daemon is measured against the wall
//! clock — the daemon itself is fully logical-clocked (lint D1), so
//! `Instant` lives here, in the bench harness.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use std::path::{Path, PathBuf};
use std::time::Instant;

use mvcom_daemon::{AlertConfig, AlertEngine, Daemon, DaemonConfig, SeededSource};
use mvcom_obs::Obs;

/// Wall-clock ceiling for the full sustained run (release build).
const WALL_CLOCK_GATE_SECS: f64 = 120.0;

/// Epochs discarded before throughput is considered steady-state.
const WARMUP_EPOCHS: usize = 8;

#[derive(serde::Serialize)]
struct BenchConfig {
    seed: u64,
    population: u32,
    batch_size: u32,
    reports_per_epoch: u32,
    se_iterations: u64,
    defense: bool,
    adv_fraction: f64,
    epochs: u64,
}

#[derive(serde::Serialize)]
struct Sustained {
    epochs: usize,
    warmup_epochs: usize,
    steady_epochs: usize,
    steady_reports: u64,
    steady_offered_txs: u64,
    steady_admitted_txs: u64,
    total_secs: f64,
    steady_secs: f64,
    txs_per_sec: f64,
    reports_per_sec: f64,
}

#[derive(serde::Serialize)]
struct CloseLatency {
    /// Exact percentiles over per-epoch `step_epoch` wall times
    /// (ingest + schedule + defend + persist), milliseconds.
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

#[derive(serde::Serialize)]
struct Recovery {
    reference_bytes: u64,
    killed_at_bytes: u64,
    resumed_epochs: u64,
    recovery_identical: bool,
}

#[derive(serde::Serialize)]
struct Acceptance {
    criterion: String,
    epochs: usize,
    min_epochs: usize,
    total_secs: f64,
    wall_clock_gate_secs: f64,
    p99_epoch_close_ms: f64,
    recovery_identical: bool,
    pass: bool,
}

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    mode: String,
    config: BenchConfig,
    sustained: Sustained,
    epoch_close_latency: CloseLatency,
    recovery: Recovery,
    acceptance: Acceptance,
}

fn daemon_config(quick: bool) -> (DaemonConfig, u64) {
    let epochs: u64 = if quick { 12 } else { 72 };
    let config = DaemonConfig {
        seed: 42,
        population: 96,
        batch_size: 8,
        reports_per_epoch: 48,
        batch_interval_s: 0.5,
        se_iterations: if quick { 150 } else { 600 },
        defense: true,
        adv_fraction: 0.2,
        adv_strategy: "misreport".to_string(),
        max_epochs: epochs,
        ..DaemonConfig::default()
    };
    (config, epochs)
}

fn open(config: &DaemonConfig, history: &Path, resume: bool) -> Daemon {
    let source = SeededSource::new(config.seed, config.population).unwrap();
    Daemon::open(
        config.clone(),
        Box::new(source),
        history,
        resume,
        Obs::off(),
        AlertEngine::new(AlertConfig::default()),
    )
    .unwrap()
}

/// Exact percentile (nearest-rank) over an unsorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drives the sustained run one `step_epoch` at a time, timing each.
fn sustained_run(config: &DaemonConfig, dir: &Path) -> (Sustained, CloseLatency, f64, Vec<u8>) {
    let history = dir.join("sustained.log");
    let mut daemon = open(config, &history, false);
    let mut step_secs: Vec<f64> = Vec::new();
    let mut summaries = Vec::new();
    let total_start = Instant::now();
    loop {
        let start = Instant::now();
        match daemon.step_epoch().unwrap() {
            Some(summary) => {
                step_secs.push(start.elapsed().as_secs_f64());
                summaries.push(summary);
            }
            None => break,
        }
        if summaries.len() as u64 >= config.max_epochs {
            break;
        }
    }
    let total_secs = total_start.elapsed().as_secs_f64();
    drop(daemon);
    let bytes = std::fs::read(&history).unwrap();

    let warmup = WARMUP_EPOCHS.min(summaries.len() / 2);
    let steady = &summaries[warmup..];
    let steady_secs: f64 = step_secs[warmup..].iter().sum();
    let steady_reports: u64 = steady.iter().map(|s| s.reports).sum();
    let steady_offered: u64 = steady.iter().map(|s| s.offered_txs).sum();
    let steady_admitted: u64 = steady.iter().map(|s| s.admitted_txs).sum();
    let sustained = Sustained {
        epochs: summaries.len(),
        warmup_epochs: warmup,
        steady_epochs: steady.len(),
        steady_reports,
        steady_offered_txs: steady_offered,
        steady_admitted_txs: steady_admitted,
        total_secs,
        steady_secs,
        txs_per_sec: steady_offered as f64 / steady_secs.max(1e-9),
        reports_per_sec: steady_reports as f64 / steady_secs.max(1e-9),
    };
    let mut sorted = step_secs.clone();
    sorted.sort_by(f64::total_cmp);
    let latency = CloseLatency {
        p50_ms: percentile(&sorted, 0.50) * 1e3,
        p90_ms: percentile(&sorted, 0.90) * 1e3,
        p99_ms: percentile(&sorted, 0.99) * 1e3,
        max_ms: sorted.last().copied().unwrap_or(0.0) * 1e3,
    };
    (sustained, latency, total_secs, bytes)
}

/// Re-checks the crash-recovery guarantee in-process: truncate the
/// reference history mid-way into its final record (the `kill -9`
/// artifact), resume, and byte-compare.
fn check_recovery(config: &DaemonConfig, dir: &Path, reference: &[u8]) -> Recovery {
    // Find the start of the last frame.
    let mut at = 0usize;
    let mut last_start = 0usize;
    while at + 8 <= reference.len() {
        last_start = at;
        let len = u32::from_le_bytes(reference[at..at + 4].try_into().unwrap()) as usize;
        at += 8 + len;
    }
    let killed_at = last_start + (reference.len() - last_start) / 2;
    let history = dir.join("killed.log");
    std::fs::write(&history, &reference[..killed_at]).unwrap();
    let mut daemon = open(config, &history, true);
    let resumed_epochs = daemon.run(|_| {}).unwrap();
    drop(daemon);
    let resumed = std::fs::read(&history).unwrap();
    Recovery {
        reference_bytes: reference.len() as u64,
        killed_at_bytes: killed_at as u64,
        resumed_epochs,
        recovery_identical: resumed == reference,
    }
}

fn main() {
    let quick = std::env::var("MVCOM_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (config, epochs) = daemon_config(quick);
    let dir = std::env::temp_dir().join(format!("mvcom-bench-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let (sustained, latency, total_secs, reference) = sustained_run(&config, &dir);
    eprintln!(
        "  daemon/sustained: {} epochs ({} steady) in {:.2}s — {:.0} txs/s, {:.0} reports/s",
        sustained.epochs,
        sustained.steady_epochs,
        total_secs,
        sustained.txs_per_sec,
        sustained.reports_per_sec
    );
    eprintln!(
        "  daemon/close_latency: p50 {:.2}ms, p90 {:.2}ms, p99 {:.2}ms, max {:.2}ms",
        latency.p50_ms, latency.p90_ms, latency.p99_ms, latency.max_ms
    );

    let recovery = check_recovery(&config, &dir, &reference);
    assert!(
        recovery.recovery_identical,
        "resumed history diverged from the uninterrupted reference"
    );
    eprintln!(
        "  daemon/recovery: killed at byte {}/{} — resumed {} epoch(s), identical={}",
        recovery.killed_at_bytes,
        recovery.reference_bytes,
        recovery.resumed_epochs,
        recovery.recovery_identical
    );

    let min_epochs = if quick { 12 } else { 60 };
    let run_epochs = sustained.epochs;
    let epochs_ok = run_epochs >= min_epochs;
    let gate_ok = total_secs <= WALL_CLOCK_GATE_SECS;
    let p99 = latency.p99_ms;
    let report = Report {
        bench: "daemon".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        config: BenchConfig {
            seed: config.seed,
            population: config.population,
            batch_size: config.batch_size,
            reports_per_epoch: config.reports_per_epoch,
            se_iterations: config.se_iterations,
            defense: config.defense,
            adv_fraction: config.adv_fraction,
            epochs,
        },
        sustained,
        epoch_close_latency: latency,
        recovery,
        acceptance: Acceptance {
            criterion: format!(
                "sustained ingest over >= {min_epochs} epochs (defense + misreport adversary) \
                 completes within {WALL_CLOCK_GATE_SECS}s wall clock, reporting steady-state \
                 txs/sec and exact-percentile p99 epoch-close latency; a mid-record kill \
                 resumes to a byte-identical history"
            ),
            epochs: run_epochs,
            min_epochs,
            total_secs,
            wall_clock_gate_secs: WALL_CLOCK_GATE_SECS,
            p99_epoch_close_ms: p99,
            recovery_identical: true,
            pass: epochs_ok && gate_ok,
        },
    };

    let out = std::env::var("MVCOM_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_daemon.json")
        },
        PathBuf::from,
    );
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, text).expect("writing bench report");
    eprintln!(
        "  daemon report: {} (acceptance {}: {:.1}s/{:.0}s, p99 {:.2}ms)",
        out.display(),
        if report.acceptance.pass {
            "PASS"
        } else {
            "FAIL"
        },
        total_secs,
        WALL_CLOCK_GATE_SECS,
        p99
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert!(report.acceptance.pass, "daemon bench acceptance failed");
}
