//! Naive vs incremental delta evaluation under `DdlPolicy::MaxSelected`,
//! at n ∈ {100, 500, 1000} — the repo's first tracked perf baseline.
//!
//! Besides the criterion-style console output, this bench writes a machine-
//! readable `BENCH_delta_eval.json` report (workspace root by default;
//! override with `MVCOM_BENCH_OUT`) so CI can archive a perf trail. Set
//! `MVCOM_BENCH_QUICK=1` for a reduced-iteration smoke run.
//!
//! The acceptance bar from ISSUE 2: the cached `EvalCache::swap_delta` must
//! be ≥ 10× faster than the naive clone-and-recompute
//! `Instance::swap_delta` at n = 1000.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use std::path::PathBuf;
use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};

use mvcom_bench::harness::paper_instance;
use mvcom_core::eval::EvalCache;
use mvcom_core::problem::{DdlPolicy, Instance, InstanceBuilder};
use mvcom_core::Solution;

/// A MaxSelected variant of the paper's scheduling instance: same shards,
/// non-separable induced deadline (the policy where deltas are expensive).
fn max_selected_instance(n: usize) -> Instance {
    let base = paper_instance(n, 1_000 * n as u64, 1.5, 99).unwrap();
    InstanceBuilder::new()
        .alpha(base.alpha())
        .capacity(base.capacity())
        .n_min(base.n_min())
        .ddl_policy(DdlPolicy::MaxSelected)
        .shards(base.shards().to_vec())
        .build()
        .unwrap()
}

/// Pre-draws valid (out, inc) swap pairs so the timed loops measure delta
/// pricing only. The solution is not mutated, so pairs stay valid.
fn swap_pairs(solution: &Solution, count: usize) -> Vec<(usize, usize)> {
    let selected: Vec<usize> = solution.iter_selected().collect();
    let unselected: Vec<usize> = solution.iter_unselected().collect();
    (0..count)
        .map(|k| {
            (
                selected[(k * 7) % selected.len()],
                unselected[(k * 11) % unselected.len()],
            )
        })
        .collect()
}

#[derive(serde::Serialize)]
struct Measured {
    n: usize,
    naive_ns_per_op: f64,
    cached_ns_per_op: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct Acceptance {
    criterion: String,
    measured_speedup: f64,
    pass: bool,
}

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    mode: String,
    policy: String,
    operation: String,
    results: Vec<Measured>,
    acceptance: Acceptance,
}

/// Times `ops` calls of `f`, returns mean ns/op over the best-of-3 pass
/// (one untimed warm-up first).
fn time_ns_per_op<F: FnMut() -> f64>(ops: usize, mut f: F) -> f64 {
    let mut acc = 0.0;
    for _ in 0..ops.min(64) {
        acc += f(); // warm-up
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..ops {
            acc += f();
        }
        let elapsed = start.elapsed().as_nanos() as f64 / ops as f64;
        best = best.min(elapsed);
    }
    black_box(acc);
    best
}

fn measure(n: usize, ops: usize) -> Measured {
    let instance = max_selected_instance(n);
    let solution = Solution::from_indices(n, (0..n).step_by(2), &instance);
    let cache = EvalCache::new(&instance, &solution);
    let pairs = swap_pairs(&solution, 256);
    let mut k = 0usize;
    let naive = time_ns_per_op(ops, || {
        let (out, inc) = pairs[k % pairs.len()];
        k += 1;
        instance.swap_delta(black_box(&solution), out, inc)
    });
    let mut k = 0usize;
    let cached = time_ns_per_op(ops, || {
        let (out, inc) = pairs[k % pairs.len()];
        k += 1;
        cache.swap_delta(&instance, black_box(&solution), out, inc)
    });
    Measured {
        n,
        naive_ns_per_op: naive,
        cached_ns_per_op: cached,
        speedup: naive / cached.max(1e-3),
    }
}

fn bench_delta_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_eval");
    for &n in &[100usize, 500, 1000] {
        let instance = max_selected_instance(n);
        let solution = Solution::from_indices(n, (0..n).step_by(2), &instance);
        let cache = EvalCache::new(&instance, &solution);
        let pairs = swap_pairs(&solution, 256);
        let mut k = 0usize;
        group.bench_with_input(BenchmarkId::new("naive_swap_delta", n), &n, |b, _| {
            b.iter(|| {
                let (out, inc) = pairs[k % pairs.len()];
                k += 1;
                black_box(instance.swap_delta(black_box(&solution), out, inc))
            });
        });
        let mut k = 0usize;
        group.bench_with_input(BenchmarkId::new("cached_swap_delta", n), &n, |b, _| {
            b.iter(|| {
                let (out, inc) = pairs[k % pairs.len()];
                k += 1;
                black_box(cache.swap_delta(&instance, black_box(&solution), out, inc))
            });
        });
        group.bench_with_input(BenchmarkId::new("cache_rebuild", n), &n, |b, _| {
            b.iter(|| black_box(EvalCache::new(&instance, &solution)));
        });
    }
    group.finish();
}

fn write_report() {
    let quick = std::env::var("MVCOM_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let ops = if quick { 2_000 } else { 20_000 };
    let results: Vec<Measured> = [100usize, 500, 1000]
        .iter()
        .map(|&n| measure(n, ops))
        .collect();
    let gate_speedup = results.last().expect("non-empty").speedup;
    let pass = gate_speedup >= 10.0;

    let report = Report {
        bench: "delta_eval".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        policy: "MaxSelected".into(),
        operation: "swap_delta".into(),
        results,
        acceptance: Acceptance {
            criterion: "cached swap_delta >= 10x naive at n = 1000".into(),
            measured_speedup: gate_speedup,
            pass,
        },
    };

    let out = std::env::var("MVCOM_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_delta_eval.json")
        },
        PathBuf::from,
    );
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, text).expect("writing bench report");
    for m in &report.results {
        eprintln!(
            "  delta_eval/report n={}: naive {:.0} ns, cached {:.0} ns, speedup {:.1}x",
            m.n, m.naive_ns_per_op, m.cached_ns_per_op, m.speedup
        );
    }
    eprintln!(
        "  delta_eval report: {} (acceptance {} at n=1000: {:.1}x)",
        out.display(),
        if pass { "PASS" } else { "FAIL" },
        gate_speedup
    );
    assert!(
        pass,
        "acceptance: cached swap_delta only {gate_speedup:.1}x faster than naive at n=1000 (need 10x)"
    );
}

criterion_group!(benches, bench_delta_eval);

fn main() {
    benches();
    write_report();
}
