//! Benchmarks of the protocol substrate: one full Elastico epoch and one
//! PBFT consensus instance.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use mvcom_elastico::epoch::{ElasticoConfig, ElasticoSim};
use mvcom_pbft::runner::{PbftConfig, PbftRunner};
use mvcom_simnet::{rng, Network, NetworkConfig};
use mvcom_types::Hash32;

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("elastico");
    group.sample_size(10);

    group.bench_function("small_epoch_60_nodes", |b| {
        b.iter(|| {
            let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 1).unwrap();
            black_box(sim.run_epoch().unwrap().shards.len())
        });
    });

    for &n in &[4u32, 16, 31] {
        group.bench_with_input(BenchmarkId::new("pbft_commit", n), &n, |b, &n| {
            b.iter(|| {
                let mut master = rng::master(2);
                let network =
                    Network::new(NetworkConfig::lan(n), rng::fork(&mut master, "net")).unwrap();
                let result = PbftRunner::new(
                    PbftConfig::new(n).unwrap(),
                    network,
                    rng::fork(&mut master, "pbft"),
                )
                .run(Hash32::digest(b"bench"))
                .unwrap();
                black_box(result.committed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
