//! Epoch-simulation fast path: bitmask PBFT runner vs the HEAD~ legacy
//! runner, end-to-end on a fig8-class smoke workload.
//!
//! The legacy baseline is reconstructed in-process instead of checking out
//! an old commit: [`mvcom_pbft::reference::ReferenceReplica`] is the
//! frozen pre-optimization state machine, and [`legacy::Runner`] below is
//! a line-for-line port of the pre-optimization event loop (one event per
//! scheduler round-trip, O(n) committee rescans per delivery, per-message
//! `Vec` allocations). Both paths draw the same RNG stream, so every
//! benchmark iteration also asserts the two runners produce *identical*
//! [`ConsensusResult`]s — the measurement doubles as a differential test.
//!
//! Besides the criterion-style console output, this writes a machine-
//! readable `BENCH_epoch_sim.json` (workspace root by default; override
//! with `MVCOM_BENCH_OUT`). Set `MVCOM_BENCH_QUICK=1` for a reduced smoke
//! run.
//!
//! The ≥ 3× acceptance gate is applied where the optimization lives: the
//! `replays` block replays recorded PBFT schedules (honest commit wave,
//! view-change storm, n=130 word-fallback committee) through the bitmask
//! replicas vs the frozen `ReferenceReplica`s — the message-processing
//! layer this PR rewrote. End-to-end consensus instances and the
//! `--threads 4` fan-out are reported *ungated* in `results`/`workload`:
//! the scheduler heap and latency sampling are shared costs both runners
//! pay, which dilutes end-to-end ratios to ~2–2.5×, and the CI container
//! exposes a single core, so `thread_speedup` there is ~1× by
//! construction (it scales with cores elsewhere).

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use std::path::PathBuf;
use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};

use mvcom_bench::harness::{run_tasks, set_threads};
use mvcom_pbft::runner::{ConsensusResult, PbftConfig, PbftRunner};
use mvcom_pbft::Behavior;
use mvcom_simnet::{rng, Network, NetworkConfig};
use mvcom_types::Hash32;

/// Line-for-line port of the pre-fast-path `PbftRunner` (HEAD~): hash-map
/// replicas, one event per scheduler round-trip, full-committee rescans
/// after every delivery.
mod legacy {
    use mvcom_pbft::message::MessageKind;
    use mvcom_pbft::reference::ReferenceReplica;
    use mvcom_pbft::replica::{Outbound, Target};
    use mvcom_pbft::runner::{ConsensusResult, PbftConfig};
    use mvcom_pbft::Message;
    use mvcom_simnet::event::Scheduler;
    use mvcom_simnet::{Network, SimRng};
    use mvcom_types::{Hash32, NodeId, SimTime};

    #[derive(Debug, Clone, Copy)]
    enum Event {
        Deliver { to: u32, msg: Message },
        ViewTimeout { replica: u32, view: u64 },
    }

    pub struct Runner {
        config: PbftConfig,
        network: Network,
        rng: SimRng,
    }

    impl Runner {
        pub fn new(config: PbftConfig, network: Network, rng: SimRng) -> Runner {
            Runner {
                config,
                network,
                rng,
            }
        }

        pub fn run(mut self, digest: Hash32) -> ConsensusResult {
            let n = self.config.n;
            let quorum = 2 * ((n - 1) / 3) + 1;
            let mut replicas: Vec<ReferenceReplica> = (0..n)
                .map(|i| ReferenceReplica::new(i, n, self.config.behaviors[i as usize]))
                .collect();
            let mut sched: Scheduler<Event> = Scheduler::new();
            let mut delivered: u64 = 0;
            let mut armed_view: Vec<u64> = vec![0; n as usize];
            let mut top_view: u64 = 0;
            let mut locally_committed = false;
            let initial = replicas[0].propose(digest);
            self.dispatch(initial, 0, &mut sched);
            for i in 0..n {
                sched.schedule_in(
                    self.config.view_timeout,
                    Event::ViewTimeout {
                        replica: i,
                        view: 0,
                    },
                );
            }
            while let Some((now, event)) = sched.next_event() {
                if now > self.config.deadline {
                    break;
                }
                match event {
                    Event::Deliver { to, msg } => {
                        delivered += 1;
                        if matches!(msg.kind, MessageKind::PrePrepare | MessageKind::NewView) {
                            let delay = self.config.verify_delay.sample(&mut self.rng);
                            let out = replicas[to as usize].on_message(msg);
                            self.dispatch_delayed(out, to, &mut sched, delay);
                        } else {
                            let out = replicas[to as usize].on_message(msg);
                            self.dispatch(out, to, &mut sched);
                        }
                        for i in 0..n {
                            let view = replicas[i as usize].view();
                            if view > armed_view[i as usize]
                                && replicas[i as usize].committed().is_none()
                            {
                                armed_view[i as usize] = view;
                                sched.schedule_in(
                                    self.config.view_timeout,
                                    Event::ViewTimeout { replica: i, view },
                                );
                            }
                            if replicas[i as usize].is_leader()
                                && view > 0
                                && replicas[i as usize].committed().is_none()
                            {
                                let proposal = replicas[i as usize].propose(digest);
                                if !proposal.is_empty() {
                                    self.dispatch(proposal, i, &mut sched);
                                }
                            }
                        }
                        // HEAD~ also rescanned for view-change telemetry and
                        // the first local commit on every delivery; the scans
                        // are kept (the `Obs::off()` emissions they fed are
                        // not — a no-op either way).
                        while let Some(v) = replicas
                            .iter()
                            .map(ReferenceReplica::view)
                            .max()
                            .filter(|&v| v > top_view)
                        {
                            top_view = (top_view + 1).min(v);
                        }
                        if !locally_committed && replicas.iter().any(|r| r.committed().is_some()) {
                            locally_committed = true;
                        }
                        let committed =
                            replicas.iter().filter(|r| r.committed().is_some()).count() as u32;
                        if committed >= quorum {
                            let d = replicas.iter().find_map(|r| r.committed()).unwrap();
                            let final_view = replicas
                                .iter()
                                .find(|r| r.committed().is_some())
                                .map(|r| r.view())
                                .unwrap_or(0);
                            return ConsensusResult {
                                committed: true,
                                latency: now,
                                digest: d,
                                final_view,
                                messages_delivered: delivered,
                            };
                        }
                    }
                    Event::ViewTimeout { replica, view } => {
                        if replicas[replica as usize].view() == view
                            && replicas[replica as usize].committed().is_none()
                        {
                            let out = replicas[replica as usize].on_timeout();
                            self.dispatch(out, replica, &mut sched);
                        }
                    }
                }
            }
            ConsensusResult {
                committed: false,
                latency: self.config.deadline,
                digest: Hash32::ZERO,
                final_view: replicas
                    .iter()
                    .map(ReferenceReplica::view)
                    .max()
                    .unwrap_or(0),
                messages_delivered: delivered,
            }
        }

        fn dispatch(&mut self, out: Vec<Outbound>, from: u32, sched: &mut Scheduler<Event>) {
            self.dispatch_delayed(out, from, sched, SimTime::ZERO);
        }

        fn dispatch_delayed(
            &mut self,
            out: Vec<Outbound>,
            from: u32,
            sched: &mut Scheduler<Event>,
            extra: SimTime,
        ) {
            let now = sched.now() + extra;
            for ob in out {
                let size = ob.message.wire_size(self.config.block_bytes);
                match ob.target {
                    Target::All => {
                        for to in 0..self.config.n {
                            if to == from {
                                sched.schedule_at(
                                    now,
                                    Event::Deliver {
                                        to,
                                        msg: ob.message,
                                    },
                                );
                                continue;
                            }
                            if let Some(arrival) =
                                self.network.send(NodeId(from), NodeId(to), size, now)
                            {
                                sched.schedule_at(
                                    arrival,
                                    Event::Deliver {
                                        to,
                                        msg: ob.message,
                                    },
                                );
                            }
                        }
                    }
                    Target::One(to) => {
                        if to == from {
                            sched.schedule_at(
                                now,
                                Event::Deliver {
                                    to,
                                    msg: ob.message,
                                },
                            );
                        } else if let Some(arrival) =
                            self.network.send(NodeId(from), NodeId(to), size, now)
                        {
                            sched.schedule_at(
                                arrival,
                                Event::Deliver {
                                    to,
                                    msg: ob.message,
                                },
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Schedule recording/replay: isolates the replica layer (the part the
/// bitmask rewrite replaced) from the shared scheduler/network costs that
/// both runners pay identically. A deterministic generator drives the
/// reference committee once, recording every action applied; replaying
/// the recorded actions into fresh committees of either implementation
/// then exercises exactly the same message-processing work.
mod replay {
    use mvcom_pbft::reference::ReferenceReplica;
    use mvcom_pbft::replica::{Outbound, Replica, Target};
    use mvcom_pbft::{Behavior, Message};
    use mvcom_types::Hash32;

    /// SplitMix-style generator — self-contained so schedules never shift
    /// when library RNG internals change.
    pub struct Lcg(u64);

    impl Lcg {
        pub fn new(seed: u64) -> Lcg {
            Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    #[derive(Clone, Copy)]
    pub enum Action {
        Propose(u32, Hash32),
        Timeout(u32),
        Deliver(u32, Message),
    }

    /// The in-flight pool is unbounded: each replica broadcasts each phase
    /// at most once per view, so total traffic is naturally bounded and a
    /// cap would silently drop late-phase (commit) messages.
    fn enqueue(pool: &mut Vec<(u32, Message)>, out: &[Outbound], n: u32) {
        for ob in out {
            match ob.target {
                Target::All => {
                    for to in 0..n {
                        pool.push((to, ob.message));
                    }
                }
                Target::One(to) => pool.push((to, ob.message)),
            }
        }
    }

    /// Drives a reference committee through up to `steps` random events and
    /// records every action applied, so the schedule can be replayed
    /// verbatim into either implementation.
    ///
    /// `timeout_pct` is the per-step chance of a local timeout. Keep it 0
    /// for schedules that must commit: the single-stage view-change quorum
    /// always outraces the three-stage commit path under random delivery.
    pub fn generate(
        n: u32,
        behaviors: &[Behavior],
        steps: usize,
        seed: u64,
        timeout_pct: u64,
    ) -> Vec<Action> {
        let mut rng = Lcg::new(seed);
        let mut replicas: Vec<ReferenceReplica> = (0..n)
            .map(|i| ReferenceReplica::new(i, n, behaviors[i as usize]))
            .collect();
        let mut pool: Vec<(u32, Message)> = Vec::new();
        let mut actions = Vec::with_capacity(steps + 1);

        let digest = Hash32::digest(b"replay-0");
        let out = replicas[0].propose(digest);
        enqueue(&mut pool, &out, n);
        actions.push(Action::Propose(0, digest));

        for step in 0..steps {
            let roll = rng.below(100);
            if roll < timeout_pct {
                let to = rng.below(u64::from(n)) as u32;
                let out = replicas[to as usize].on_timeout();
                enqueue(&mut pool, &out, n);
                actions.push(Action::Timeout(to));
            } else if roll < 92 + timeout_pct && !pool.is_empty() {
                let i = rng.below(pool.len() as u64) as usize;
                let (to, msg) = pool.swap_remove(i);
                let out = replicas[to as usize].on_message(msg);
                enqueue(&mut pool, &out, n);
                actions.push(Action::Deliver(to, msg));
            } else if !pool.is_empty() || timeout_pct > 0 {
                // Leaders of later views re-propose; everyone else's
                // propose() is a no-op, which keeps the stream realistic.
                let who = rng.below(u64::from(n)) as u32;
                let digest = Hash32::digest(format!("replay-{step}").as_bytes());
                let out = replicas[who as usize].propose(digest);
                enqueue(&mut pool, &out, n);
                actions.push(Action::Propose(who, digest));
            } else {
                // Drained and timeout-free: no further action can change
                // any replica's state, so the schedule is complete.
                break;
            }
        }
        actions
    }

    /// Replays `actions` into a fresh reference committee; returns
    /// (outbound messages produced, replicas committed) as both a checksum
    /// and an optimization barrier.
    pub fn run_reference(n: u32, behaviors: &[Behavior], actions: &[Action]) -> (u64, u32) {
        let mut replicas: Vec<ReferenceReplica> = (0..n)
            .map(|i| ReferenceReplica::new(i, n, behaviors[i as usize]))
            .collect();
        let mut produced = 0u64;
        for action in actions {
            let out = match *action {
                Action::Propose(who, digest) => replicas[who as usize].propose(digest),
                Action::Timeout(who) => replicas[who as usize].on_timeout(),
                Action::Deliver(to, msg) => replicas[to as usize].on_message(msg),
            };
            produced += out.len() as u64;
        }
        let committed = replicas.iter().filter(|r| r.committed().is_some()).count() as u32;
        (produced, committed)
    }

    /// Replays `actions` into a fresh bitmask committee through the
    /// allocation-free `*_into` API (one reused buffer — the way the
    /// runner drives it).
    pub fn run_fast(n: u32, behaviors: &[Behavior], actions: &[Action]) -> (u64, u32) {
        let mut replicas: Vec<Replica> = (0..n)
            .map(|i| Replica::new(i, n, behaviors[i as usize]))
            .collect();
        let mut out: Vec<Outbound> = Vec::with_capacity(n as usize + 2);
        let mut produced = 0u64;
        for action in actions {
            out.clear();
            match *action {
                Action::Propose(who, digest) => {
                    replicas[who as usize].propose_into(digest, &mut out);
                }
                Action::Timeout(who) => replicas[who as usize].on_timeout_into(&mut out),
                Action::Deliver(to, msg) => replicas[to as usize].on_message_into(msg, &mut out),
            }
            produced += out.len() as u64;
        }
        let committed = replicas.iter().filter(|r| r.committed().is_some()).count() as u32;
        (produced, committed)
    }
}

/// One consensus task of the epoch-sim workload: committee size, RNG seed,
/// and an optional faulty replica (exercising the view-change path).
#[derive(Clone, Copy)]
struct ConsensusTask {
    n: u32,
    seed: u64,
    silent_leader: bool,
}

/// The epoch-sim smoke workload: `reps` epochs' worth of intra-committee
/// consensus instances (mixed committee sizes, one deposed leader per
/// epoch), each with its own seed. Large enough that thread start-up cost
/// is amortized away in `measure_workload`.
fn workload(reps: u64) -> Vec<ConsensusTask> {
    let mut tasks = Vec::new();
    for epoch in 0..reps {
        for k in 0..4u64 {
            tasks.push(ConsensusTask {
                n: 16,
                seed: 1_000 * epoch + 100 + k,
                silent_leader: false,
            });
        }
        for k in 0..8u64 {
            tasks.push(ConsensusTask {
                n: 40,
                seed: 1_000 * epoch + 200 + k,
                silent_leader: false,
            });
        }
        tasks.push(ConsensusTask {
            n: 16,
            seed: 1_000 * epoch + 300,
            silent_leader: true,
        });
    }
    tasks
}

fn config_for(task: ConsensusTask) -> PbftConfig {
    let config = PbftConfig::new(task.n).unwrap();
    if task.silent_leader {
        config.with_behavior(0, Behavior::Silent)
    } else {
        config
    }
}

fn run_fast(task: ConsensusTask) -> ConsensusResult {
    let mut master = rng::master(task.seed);
    let network = Network::new(NetworkConfig::lan(task.n), rng::fork(&mut master, "net")).unwrap();
    PbftRunner::new(config_for(task), network, rng::fork(&mut master, "pbft"))
        .run(Hash32::digest(b"epoch-sim"))
        .unwrap()
}

fn run_legacy(task: ConsensusTask) -> ConsensusResult {
    let mut master = rng::master(task.seed);
    let network = Network::new(NetworkConfig::lan(task.n), rng::fork(&mut master, "net")).unwrap();
    legacy::Runner::new(config_for(task), network, rng::fork(&mut master, "pbft"))
        .run(Hash32::digest(b"epoch-sim"))
}

#[derive(serde::Serialize)]
struct Measured {
    n: u32,
    legacy_ns_per_instance: f64,
    fast_ns_per_instance: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct ReplayMeasured {
    schedule: String,
    n: u32,
    actions: usize,
    reference_ns_total: f64,
    fast_ns_total: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct WorkloadTiming {
    tasks: usize,
    threads: usize,
    legacy_serial_secs: f64,
    fast_serial_secs: f64,
    fast_threaded_secs: f64,
    /// The gated composite: serial HEAD~ vs new path at `--threads`.
    end_to_end_speedup: f64,
    /// Thread fan-out's own contribution (≈ 1 on a single-core host).
    thread_speedup: f64,
    cores_available: usize,
    /// Spells out how `thread_speedup` relates to the detected core
    /// count, so a ~1× reading on a 1-core CI host is self-explanatory.
    thread_speedup_note: String,
}

#[derive(serde::Serialize)]
struct Acceptance {
    criterion: String,
    measured_speedup: f64,
    pass: bool,
}

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    mode: String,
    operation: String,
    /// Gated: the replica layer the bitmask rewrite replaced, isolated
    /// from scheduler/network costs both runners share.
    replays: Vec<ReplayMeasured>,
    /// Informational: end-to-end consensus instances (replica layer plus
    /// the shared simnet costs, which dilute the ratio).
    results: Vec<Measured>,
    /// Informational: whole-workload wall clock incl. the thread fan-out.
    workload: WorkloadTiming,
    acceptance: Acceptance,
}

/// Times `reps` runs of `f`, returning mean ns over the best-of-3 pass
/// (one untimed warm-up first).
fn time_ns<F: FnMut() -> u64>(reps: usize, mut f: F) -> f64 {
    let mut acc = 0u64;
    acc += f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            acc += f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / reps as f64);
    }
    black_box(acc);
    best
}

fn measure_replay(
    schedule: &str,
    n: u32,
    behaviors: &[Behavior],
    steps: usize,
    seed: u64,
    timeout_pct: u64,
    reps: usize,
) -> ReplayMeasured {
    let actions = replay::generate(n, behaviors, steps, seed, timeout_pct);
    let expected = replay::run_reference(n, behaviors, &actions);
    assert_eq!(
        replay::run_fast(n, behaviors, &actions),
        expected,
        "bitmask and reference replicas diverged on schedule {schedule}"
    );
    assert!(
        expected.1 > 0 || schedule.contains("view"),
        "schedule {schedule} never commits"
    );
    let reference = time_ns(reps, || replay::run_reference(n, behaviors, &actions).0);
    let fast = time_ns(reps, || replay::run_fast(n, behaviors, &actions).0);
    ReplayMeasured {
        schedule: schedule.to_string(),
        n,
        actions: actions.len(),
        reference_ns_total: reference,
        fast_ns_total: fast,
        speedup: reference / fast.max(1e-3),
    }
}

fn measure_instance(n: u32, seed: u64, silent_leader: bool, reps: usize) -> Measured {
    let task = ConsensusTask {
        n,
        seed,
        silent_leader,
    };
    assert_eq!(
        run_fast(task),
        run_legacy(task),
        "fast and legacy runners diverged at n={n} seed={seed}"
    );
    let legacy = time_ns(reps, || run_legacy(task).messages_delivered);
    let fast = time_ns(reps, || run_fast(task).messages_delivered);
    Measured {
        n,
        legacy_ns_per_instance: legacy,
        fast_ns_per_instance: fast,
        speedup: legacy / fast.max(1e-3),
    }
}

/// Runs the whole workload three ways (legacy serial, fast serial, fast at
/// `threads`) and returns the end-to-end composite.
fn measure_workload(threads: usize, reps: u64) -> WorkloadTiming {
    let tasks = workload(reps);
    // Differential check on the first epoch's batch (the remaining epochs
    // only vary the seed).
    for &task in tasks.iter().take(13) {
        assert_eq!(run_fast(task), run_legacy(task), "runner divergence");
    }
    let timed = |f: &dyn Fn() -> u64| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            black_box(f());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let legacy_serial = timed(&|| {
        tasks
            .iter()
            .map(|&t| run_legacy(t).messages_delivered)
            .sum()
    });
    let fast_serial = timed(&|| tasks.iter().map(|&t| run_fast(t).messages_delivered).sum());
    let fast_threaded = timed(&|| {
        set_threads(threads);
        let closures: Vec<_> = tasks
            .iter()
            .map(|&t| move || Ok(run_fast(t).messages_delivered))
            .collect();
        let total: u64 = run_tasks(closures).unwrap().into_iter().sum();
        set_threads(1);
        total
    });
    let cores_available = std::thread::available_parallelism().map_or(1, |p| p.get());
    let thread_speedup = fast_serial / fast_threaded.max(1e-9);
    let thread_speedup_note = if cores_available < threads {
        format!(
            "{thread_speedup:.2}x from --threads {threads} on a {cores_available}-core host: \
             the fan-out is core-bound, so ~1x is expected here, not a regression"
        )
    } else {
        format!("{thread_speedup:.2}x from --threads {threads} on a {cores_available}-core host")
    };
    WorkloadTiming {
        tasks: tasks.len(),
        threads,
        legacy_serial_secs: legacy_serial,
        fast_serial_secs: fast_serial,
        fast_threaded_secs: fast_threaded,
        end_to_end_speedup: legacy_serial / fast_threaded.max(1e-9),
        thread_speedup,
        cores_available,
        thread_speedup_note,
    }
}

fn bench_epoch_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_sim");
    group.sample_size(10);
    for &n in &[16u32, 40] {
        let task = ConsensusTask {
            n,
            seed: 7,
            silent_leader: false,
        };
        group.bench_with_input(BenchmarkId::new("legacy_consensus", n), &n, |b, _| {
            b.iter(|| black_box(run_legacy(task).messages_delivered));
        });
        group.bench_with_input(BenchmarkId::new("fast_consensus", n), &n, |b, _| {
            b.iter(|| black_box(run_fast(task).messages_delivered));
        });
    }
    group.finish();
}

fn write_report() {
    let quick = std::env::var("MVCOM_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let reps = if quick { 5 } else { 30 };
    // A full commit wave needs ~3n²/0.85 delivered messages, so schedule
    // length scales with the committee squared.
    let steps_for = |n: usize| n * n * if quick { 5 } else { 8 };

    let silent40: Vec<Behavior> = std::iter::once(Behavior::Silent)
        .chain(std::iter::repeat(Behavior::Honest))
        .take(40)
        .collect();
    let replays = vec![
        measure_replay(
            "honest",
            40,
            &[Behavior::Honest; 40],
            steps_for(40),
            1,
            0,
            reps,
        ),
        measure_replay("view-changes", 40, &silent40, steps_for(40), 2, 8, reps),
        measure_replay(
            "large-committee",
            130,
            &[Behavior::Honest; 130],
            steps_for(130),
            3,
            0,
            reps,
        ),
    ];
    let reference_total: f64 = replays.iter().map(|r| r.reference_ns_total).sum();
    let fast_total: f64 = replays.iter().map(|r| r.fast_ns_total).sum();
    let measured_speedup = reference_total / fast_total.max(1e-3);
    let pass = measured_speedup >= 3.0;

    let results: Vec<Measured> = [
        (16u32, 7u64, false),
        (40, 8, false),
        (100, 10, false),
        (16, 300, true),
    ]
    .iter()
    .map(|&(n, seed, silent)| measure_instance(n, seed, silent, reps))
    .collect();
    let workload = measure_workload(4, if quick { 12 } else { 30 });

    let report = Report {
        bench: "epoch_sim".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        operation: "pbft_message_processing".into(),
        replays,
        results,
        workload,
        acceptance: Acceptance {
            criterion: "bitmask replicas replay recorded PBFT schedules (honest, view-change \
                        storm, n=130 word-fallback) >= 3x faster than the frozen \
                        HashMap/HashSet ReferenceReplica — the layer the rewrite replaced. \
                        End-to-end consensus instances and the --threads 4 fan-out are \
                        reported ungated in `results`/`workload`: shared scheduler+network \
                        costs dilute those ratios to ~2-2.5x, and CI containers expose one \
                        core, so thread_speedup there is ~1x by construction."
                .into(),
            measured_speedup,
            pass,
        },
    };

    let out = std::env::var("MVCOM_BENCH_OUT").map_or_else(
        |_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_epoch_sim.json")
        },
        PathBuf::from,
    );
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, text).expect("writing bench report");
    for r in &report.replays {
        eprintln!(
            "  epoch_sim/replay {} n={}: reference {:.0} ns, fast {:.0} ns, speedup {:.1}x \
             ({} actions)",
            r.schedule, r.n, r.reference_ns_total, r.fast_ns_total, r.speedup, r.actions
        );
    }
    for m in &report.results {
        eprintln!(
            "  epoch_sim/report n={}: legacy {:.0} ns, fast {:.0} ns, speedup {:.1}x",
            m.n, m.legacy_ns_per_instance, m.fast_ns_per_instance, m.speedup
        );
    }
    eprintln!(
        "  epoch_sim workload: legacy serial {:.3}s, fast serial {:.3}s, fast x{} threads {:.3}s \
         (end-to-end {:.1}x, threads {:.2}x on {} core(s))",
        report.workload.legacy_serial_secs,
        report.workload.fast_serial_secs,
        report.workload.threads,
        report.workload.fast_threaded_secs,
        report.workload.end_to_end_speedup,
        report.workload.thread_speedup,
        report.workload.cores_available,
    );
    eprintln!(
        "  epoch_sim report: {} (acceptance {}: {:.1}x)",
        out.display(),
        if report.acceptance.pass {
            "PASS"
        } else {
            "FAIL"
        },
        report.acceptance.measured_speedup
    );
    assert!(
        report.acceptance.pass,
        "acceptance: bitmask replica layer only {:.1}x faster than the reference replica \
         on recorded schedules (need 3x)",
        report.acceptance.measured_speedup
    );
}

criterion_group!(benches, bench_epoch_sim);

fn main() {
    benches();
    write_report();
}
