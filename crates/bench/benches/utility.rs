//! Microbenchmarks of the MVCom objective: full evaluation vs the O(1)
//! incremental swap delta, at the paper's largest scale (|I| = 1000).

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use mvcom_bench::harness::paper_instance;
use mvcom_core::Solution;

fn bench_utility(c: &mut Criterion) {
    let mut group = c.benchmark_group("utility");
    for &n in &[100usize, 500, 1000] {
        let instance = paper_instance(n, 1_000 * n as u64, 1.5, 99).unwrap();
        let solution = Solution::from_indices(n, (0..n).step_by(2), &instance);
        group.bench_with_input(BenchmarkId::new("full_eval", n), &n, |b, _| {
            b.iter(|| black_box(instance.utility(black_box(&solution))));
        });
        let out = solution.iter_selected().next().unwrap();
        let inc = solution.iter_unselected().next().unwrap();
        group.bench_with_input(BenchmarkId::new("swap_delta", n), &n, |b, _| {
            b.iter(|| black_box(instance.swap_delta(black_box(&solution), out, inc)));
        });
        group.bench_with_input(BenchmarkId::new("valuable_degree", n), &n, |b, _| {
            b.iter(|| black_box(instance.valuable_degree(black_box(&solution))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_utility);
criterion_main!(benches);
