//! Benchmarks of the baseline solvers on a common instance.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mvcom_baselines::{dp::DpConfig, sa::SaConfig, woa::WoaConfig};
use mvcom_baselines::{DpSolver, GreedySolver, SaSolver, Solver, WoaSolver};
use mvcom_bench::harness::paper_instance;

fn bench_solvers(c: &mut Criterion) {
    let instance = paper_instance(200, 200_000, 1.5, 55).unwrap();
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);

    group.bench_function("greedy", |b| {
        b.iter(|| black_box(GreedySolver::new().solve(&instance).unwrap().best_utility));
    });
    group.bench_function("dp_512_buckets", |b| {
        b.iter(|| {
            black_box(
                DpSolver::new(DpConfig { max_buckets: 512 })
                    .solve(&instance)
                    .unwrap()
                    .best_utility,
            )
        });
    });
    group.bench_function("sa_500_iters", |b| {
        let config = SaConfig {
            iterations: 500,
            ..SaConfig::paper(1)
        };
        b.iter(|| black_box(SaSolver::new(config).solve(&instance).unwrap().best_utility));
    });
    group.bench_function("woa_100_iters", |b| {
        let config = WoaConfig {
            iterations: 100,
            ..WoaConfig::paper(1)
        };
        b.iter(|| {
            black_box(
                WoaSolver::new(config)
                    .solve(&instance)
                    .unwrap()
                    .best_utility,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
