//! The parallel harness must be invisible in the outputs: every figure
//! artifact (CSV and event stream) is byte-identical at any `--threads`
//! count, because seeds derive from sweep indices and results merge in
//! task order. CI re-checks this end-to-end on the repro binary; this
//! test pins it at the library level on the smoke-scale fig8 sweep (the
//! figure that also exercises the event-stream path).

// Test code: unwrap is fine here.
#![allow(clippy::unwrap_used)]

use mvcom_bench::experiments;
use mvcom_bench::harness::{set_threads, Scale};

/// One test (not one per thread count): `set_threads` is process-global,
/// and the test harness runs `#[test]` functions concurrently.
#[test]
fn fig8_smoke_outputs_are_byte_identical_across_thread_counts() {
    set_threads(1);
    let baseline = experiments::run("fig8", Scale::Quick).unwrap();
    assert!(
        baseline.files.iter().any(|(p, _)| p.ends_with(".csv")),
        "baseline produced no CSV"
    );
    assert!(
        baseline
            .files
            .iter()
            .any(|(p, _)| p.ends_with(".events.jsonl")),
        "baseline produced no event stream"
    );

    for threads in [2usize, 8] {
        set_threads(threads);
        let report = experiments::run("fig8", Scale::Quick).unwrap();
        assert_eq!(
            report.summary, baseline.summary,
            "summary diverged at {threads} threads"
        );
        assert_eq!(
            report.files.len(),
            baseline.files.len(),
            "file set diverged at {threads} threads"
        );
        for ((path, text), (base_path, base_text)) in report.files.iter().zip(&baseline.files) {
            assert_eq!(path, base_path, "file order diverged at {threads} threads");
            assert_eq!(
                text, base_text,
                "{path} bytes diverged at {threads} threads"
            );
        }
    }
    set_threads(1);
}
