//! The MVCom figure-regeneration harness.
//!
//! Every figure in the paper's evaluation (§VI) has a module under
//! [`experiments`] that rebuilds its workload, runs the SE scheduler and
//! the baselines with the paper's parameters, and emits the plotted series
//! as CSV plus a human-readable summary with the expected *shape checks*
//! (who wins, by how much, where it saturates).
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p mvcom-bench --bin repro -- all
//! ```
//!
//! or a single figure (`fig2a`, `fig2b`, `fig8`, `fig9a`, `fig9b`,
//! `fig10`, `fig11`, `fig12`, `fig13`, `fig14`). `--quick` shrinks the
//! workloads ~10× for smoke testing. CSVs land in `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Unit tests may unwrap freely; library code goes through the P1 rule of
// `mvcom-lint` and the workspace `clippy::unwrap_used` deny set instead.
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod experiments;
pub mod figures;
pub mod harness;
pub mod plot;

pub use harness::{FigureReport, Scale};
