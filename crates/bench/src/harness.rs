//! Shared plumbing for the figure experiments.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use mvcom_baselines::{dp::DpConfig, sa::SaConfig, woa::WoaConfig};
use mvcom_baselines::{DpSolver, SaSolver, Solver, WoaSolver};
use mvcom_core::problem::InstanceBuilder;
use mvcom_core::se::{SeConfig, SeEngine};
use mvcom_core::{Instance, Solution};
use mvcom_dataset::{EpochGenerator, LatencyConfig, Trace, TraceConfig};
use mvcom_types::Result;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's parameters.
    Full,
    /// ~10× smaller, for smoke tests and CI.
    Quick,
}

impl Scale {
    /// Scales an iteration budget.
    pub fn iters(self, full: u64) -> u64 {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 10).max(50),
        }
    }

    /// Scales a committee count.
    pub fn committees(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 10).max(10),
        }
    }

    /// Scales a repetition count.
    pub fn reps(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 4).max(2),
        }
    }
}

/// The output of one figure experiment: CSV files plus a textual summary
/// with shape checks.
#[derive(Debug, Clone, Default)]
pub struct FigureReport {
    /// Figure identifier (e.g. `"fig8"`).
    pub name: String,
    /// `(relative path, csv text)` pairs to be written under `results/`.
    pub files: Vec<(String, String)>,
    /// Human-readable lines: measured numbers and shape-check verdicts.
    pub summary: Vec<String>,
}

impl FigureReport {
    /// Starts an empty report for `name`.
    pub fn new(name: &str) -> FigureReport {
        FigureReport {
            name: name.to_string(),
            ..FigureReport::default()
        }
    }

    /// Adds a CSV file built from a header and rows of cells.
    pub fn add_csv<R, C>(&mut self, filename: &str, header: &[&str], rows: R)
    where
        R: IntoIterator<Item = Vec<C>>,
        C: std::fmt::Display,
    {
        let mut text = String::new();
        let _ = writeln!(text, "{}", header.join(","));
        for row in rows {
            let cells: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
            let _ = writeln!(text, "{}", cells.join(","));
        }
        self.files.push((filename.to_string(), text));
    }

    /// Appends one summary line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.summary.push(line.into());
    }

    /// Appends a shape-check verdict line.
    pub fn check(&mut self, description: &str, passed: bool) {
        self.summary.push(format!(
            "[{}] {description}",
            if passed { "OK" } else { "MISMATCH" }
        ));
    }

    /// Writes all CSV files under `out_dir` and returns the paths written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`mvcom_types::Error::Simulation`].
    pub fn write_to(&self, out_dir: &Path) -> Result<Vec<PathBuf>> {
        fs::create_dir_all(out_dir)
            .map_err(|e| mvcom_types::Error::simulation(format!("creating {out_dir:?}: {e}")))?;
        let mut written = Vec::new();
        for (name, text) in &self.files {
            let path = out_dir.join(name);
            fs::write(&path, text)
                .map_err(|e| mvcom_types::Error::simulation(format!("writing {path:?}: {e}")))?;
            written.push(path);
        }
        Ok(written)
    }
}

/// Builds the scheduling-experiment instance the paper's Figs. 8–14 use:
/// `|I| = n` shards sampled one-block-each from the Jan-2016-like trace
/// (≈1089 TXs per shard), paper latency models, `N_min = 50%·|I|`.
///
/// # Errors
///
/// Propagates builder validation.
pub fn paper_instance(n: usize, capacity: u64, alpha: f64, seed: u64) -> Result<Instance> {
    let trace = Trace::generate(TraceConfig::jan_2016(), seed);
    let mut epochs = EpochGenerator::new(&trace, LatencyConfig::paper(), seed);
    let shards = epochs.next_epoch_with_replacement(n, 1)?;
    InstanceBuilder::new()
        .alpha(alpha)
        .capacity(capacity)
        .n_min(n / 2)
        .shards(shards)
        .build()
}

/// One algorithm's result on one instance, in a form common to SE and the
/// baselines so the comparison figures can overlay them.
#[derive(Debug, Clone)]
pub struct AlgoRun {
    /// Algorithm name as plotted (`"SE"`, `"SA"`, `"DP"`, `"WOA"`).
    pub name: &'static str,
    /// Final (best) utility.
    pub utility: f64,
    /// The final solution.
    pub solution: Solution,
    /// `(iteration, best-so-far utility)` convergence samples.
    pub trajectory: Vec<(u64, f64)>,
}

/// Runs SE and the paper's three baselines on `instance` with a shared
/// iteration budget — the engine behind Figs. 10–14.
///
/// # Errors
///
/// Propagates any solver error.
pub fn run_all_algorithms(
    instance: &Instance,
    iterations: u64,
    gamma: usize,
    seed: u64,
) -> Result<Vec<AlgoRun>> {
    let mut runs = Vec::with_capacity(4);

    let se_config = SeConfig {
        gamma,
        max_iterations: iterations,
        convergence_window: 0,
        record_every: 1,
        ..SeConfig::paper(seed)
    };
    let se = SeEngine::new(instance, se_config)?.run();
    runs.push(AlgoRun {
        name: "SE",
        utility: se.best_utility,
        solution: se.best_solution,
        trajectory: se
            .trajectory
            .points()
            .iter()
            .map(|p| (p.iteration, p.best_so_far))
            .collect(),
    });

    let sa = SaSolver::new(SaConfig {
        iterations,
        ..SaConfig::paper(seed)
    })
    .solve(instance)?;
    runs.push(AlgoRun {
        name: "SA",
        utility: sa.best_utility,
        solution: sa.best_solution,
        trajectory: sa.trajectory,
    });

    let dp = DpSolver::new(DpConfig::paper()).solve(instance)?;
    // DP is one-shot; extend its point into a flat line for overlays.
    let dp_traj = vec![(0, dp.best_utility), (iterations, dp.best_utility)];
    runs.push(AlgoRun {
        name: "DP",
        utility: dp.best_utility,
        solution: dp.best_solution,
        trajectory: dp_traj,
    });

    let woa = WoaSolver::new(WoaConfig {
        iterations,
        ..WoaConfig::paper(seed)
    })
    .solve(instance)?;
    runs.push(AlgoRun {
        name: "WOA",
        utility: woa.best_utility,
        solution: woa.best_solution,
        trajectory: woa.trajectory,
    });

    Ok(runs)
}

/// Downsamples a trajectory to at most `max_points` evenly spaced samples
/// (always keeping the last).
pub fn downsample<T: Copy>(points: &[T], max_points: usize) -> Vec<T> {
    if points.len() <= max_points || max_points < 2 {
        return points.to_vec();
    }
    let stride = points.len().div_ceil(max_points);
    let mut out: Vec<T> = points.iter().copied().step_by(stride).collect();
    if let Some(&last) = points.last() {
        out.push(last);
    }
    out
}

/// Replays finished algorithm runs into a schema-validated JSONL event
/// stream (`solver_point`/`solver_done`, one series per run, sampled to
/// ~`max_points` each) — the obs event file some figures write next to
/// their CSVs. Emission happens after all solves, so attaching telemetry
/// cannot perturb a solver; `obs_report` consumes the result.
pub fn runs_as_events(runs: &[AlgoRun], max_points: usize) -> String {
    use mvcom_obs::{Obs, ObsLevel, Value};
    let (obs, buf) = Obs::memory(ObsLevel::Events);
    for run in runs {
        for &(iter, best) in &downsample(&run.trajectory, max_points) {
            obs.emit(
                "solver_point",
                iter as f64,
                &[
                    ("solver", Value::from(run.name)),
                    ("iter", Value::U64(iter)),
                    ("best", Value::F64(best)),
                ],
            );
        }
        let iters = run.trajectory.last().map_or(0, |&(iter, _)| iter);
        obs.emit(
            "solver_done",
            iters as f64,
            &[
                ("solver", Value::from(run.name)),
                ("iters", Value::U64(iters)),
                ("best", Value::F64(run.utility)),
            ],
        );
    }
    obs.flush();
    debug_assert_eq!(obs.invalid_dropped(), 0);
    buf.contents()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_quick_shrinks() {
        assert_eq!(Scale::Full.iters(3_000), 3_000);
        assert_eq!(Scale::Quick.iters(3_000), 300);
        assert_eq!(Scale::Quick.committees(500), 50);
        assert_eq!(Scale::Quick.reps(20), 5);
        assert_eq!(Scale::Quick.iters(100), 50);
    }

    #[test]
    fn paper_instance_matches_parameters() {
        let inst = paper_instance(50, 50_000, 1.5, 1).unwrap();
        assert_eq!(inst.len(), 50);
        assert_eq!(inst.capacity(), 50_000);
        assert_eq!(inst.n_min(), 25);
        // ~1089 TXs per shard on average.
        let mean = inst.total_txs() as f64 / 50.0;
        assert!((800.0..1400.0).contains(&mean), "mean shard size {mean}");
    }

    #[test]
    fn csv_rendering() {
        let mut report = FigureReport::new("test");
        report.add_csv("t.csv", &["a", "b"], vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(report.files[0].1, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn downsample_keeps_ends() {
        let points: Vec<u64> = (0..1000).collect();
        let ds = downsample(&points, 50);
        assert!(ds.len() <= 52);
        assert_eq!(ds[0], 0);
        assert_eq!(*ds.last().unwrap(), 999);
        assert_eq!(downsample(&points, 2000), points);
    }

    #[test]
    fn check_formats_verdicts() {
        let mut report = FigureReport::new("x");
        report.check("thing holds", true);
        report.check("other thing", false);
        assert!(report.summary[0].starts_with("[OK]"));
        assert!(report.summary[1].starts_with("[MISMATCH]"));
    }
}
