//! Shared plumbing for the figure experiments.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use mvcom_baselines::{dp::DpConfig, sa::SaConfig, woa::WoaConfig};
use mvcom_baselines::{DpSolver, SaSolver, Solver, WoaSolver};
use mvcom_core::problem::InstanceBuilder;
use mvcom_core::se::{SeConfig, SeEngine};
use mvcom_core::{Instance, Solution};
use mvcom_dataset::{EpochGenerator, LatencyConfig, ShardStream, StreamConfig, Trace, TraceConfig};
use mvcom_types::Result;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's parameters.
    Full,
    /// ~10× smaller, for smoke tests and CI.
    Quick,
}

impl Scale {
    /// Scales an iteration budget.
    pub fn iters(self, full: u64) -> u64 {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 10).max(50),
        }
    }

    /// Scales a committee count.
    pub fn committees(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 10).max(10),
        }
    }

    /// Scales a repetition count.
    pub fn reps(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 4).max(2),
        }
    }
}

/// Worker-thread count for [`run_tasks`]. `0` means "not yet resolved":
/// the first read falls back to `MVCOM_THREADS` (then 1).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Parses a worker-thread count from `value` (a `--threads` argument or
/// the `MVCOM_THREADS` environment variable, named by `origin`).
///
/// # Errors
///
/// [`mvcom_types::Error::InvalidConfig`] when `value` is not an integer
/// or is zero — both used to be accepted and silently degenerate to a
/// serial run; callers must surface this instead.
pub fn parse_threads(value: &str, origin: &str) -> Result<usize> {
    match value.trim().parse::<usize>() {
        Ok(t) if t >= 1 => Ok(t),
        Ok(_) => Err(mvcom_types::Error::invalid_config(
            "threads",
            format!("{origin} must be >= 1, got `{value}` (use 1 for a serial run)"),
        )),
        Err(_) => Err(mvcom_types::Error::invalid_config(
            "threads",
            format!("{origin} must be an integer >= 1, got `{value}`"),
        )),
    }
}

/// Resolution of the stored override + environment to a thread count;
/// pure so the validation is unit-testable without touching the process
/// environment.
fn resolve_threads(stored: usize, env: Option<&str>) -> Result<usize> {
    match stored {
        0 => env.map_or(Ok(1), |v| parse_threads(v, "MVCOM_THREADS")),
        t => Ok(t),
    }
}

/// The number of worker threads figure experiments fan their independent
/// points across. Defaults to the `MVCOM_THREADS` environment variable,
/// or serial (1) when unset.
///
/// # Errors
///
/// [`mvcom_types::Error::InvalidConfig`] when `MVCOM_THREADS` is set but
/// not an integer >= 1 (previously this silently fell back to a serial
/// run, masking typos like `MVCOM_THREADS=four` or `=0`).
pub fn threads() -> Result<usize> {
    resolve_threads(
        THREADS.load(Ordering::Relaxed),
        std::env::var("MVCOM_THREADS").ok().as_deref(),
    )
}

/// Overrides the worker-thread count (the bench bins' `--threads` knob).
///
/// # Panics
///
/// On `threads == 0`: a zero thread count has no meaning here (serial
/// is `1`) and used to be clamped silently; bins validate their flag
/// with [`parse_threads`] before calling this.
pub fn set_threads(threads: usize) {
    assert!(
        threads >= 1,
        "set_threads precondition: thread count must be >= 1 (got 0); use 1 for a serial run"
    );
    THREADS.store(threads, Ordering::Relaxed);
}

/// Runs independent closures across [`threads`] worker threads and
/// returns their results **in task order**.
///
/// This is the deterministic fan-out primitive behind the figure
/// experiments: each task owns its own seeds (the experiments derive them
/// from the task's parameter point, never from execution order), workers
/// claim tasks dynamically off a shared counter, and results are written
/// into per-task slots — so the merged output is byte-identical to the
/// serial run at any thread count, only wall-clock changes. Same
/// `crossbeam::scope` pattern as `mvcom_core::se::parallel`.
///
/// With one thread (the default) the tasks run inline on the caller's
/// thread with no synchronization at all.
///
/// # Errors
///
/// Returns the first failing task's error (in task order), or
/// [`mvcom_types::Error::Simulation`] if a worker thread panicked.
pub fn run_tasks<T, F>(tasks: Vec<F>) -> Result<Vec<T>>
where
    T: Send,
    F: FnOnce() -> Result<T> + Send,
{
    let workers = threads()?.min(tasks.len());
    if workers <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let total = tasks.len();
    let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<Result<T>>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                // lint: allow(C3, the claim only needs fetch_add atomicity — which index a worker draws never affects the output, only the per-index slots do)
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let task = slots[index].lock().take();
                if let Some(task) = task {
                    // lint: allow(C3, the slot guard above is dropped before this one is taken and the two vectors protect disjoint per-index cells)
                    *results[index].lock() = Some(task());
                }
            });
        }
    })
    .map_err(|_| mvcom_types::Error::simulation("experiment worker thread panicked"))?;
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // lint: allow(P1, every index below `total` was claimed exactly once)
                .expect("task slot filled")
        })
        .collect()
}

/// The output of one figure experiment: CSV files plus a textual summary
/// with shape checks.
#[derive(Debug, Clone, Default)]
pub struct FigureReport {
    /// Figure identifier (e.g. `"fig8"`).
    pub name: String,
    /// `(relative path, csv text)` pairs to be written under `results/`.
    pub files: Vec<(String, String)>,
    /// Human-readable lines: measured numbers and shape-check verdicts.
    pub summary: Vec<String>,
}

impl FigureReport {
    /// Starts an empty report for `name`.
    pub fn new(name: &str) -> FigureReport {
        FigureReport {
            name: name.to_string(),
            ..FigureReport::default()
        }
    }

    /// Adds a CSV file built from a header and rows of cells.
    pub fn add_csv<R, C>(&mut self, filename: &str, header: &[&str], rows: R)
    where
        R: IntoIterator<Item = Vec<C>>,
        C: std::fmt::Display,
    {
        let mut text = String::new();
        let _ = writeln!(text, "{}", header.join(","));
        for row in rows {
            let cells: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
            let _ = writeln!(text, "{}", cells.join(","));
        }
        self.files.push((filename.to_string(), text));
    }

    /// Appends one summary line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.summary.push(line.into());
    }

    /// Appends a shape-check verdict line.
    pub fn check(&mut self, description: &str, passed: bool) {
        self.summary.push(format!(
            "[{}] {description}",
            if passed { "OK" } else { "MISMATCH" }
        ));
    }

    /// Writes all CSV files under `out_dir` and returns the paths written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`mvcom_types::Error::Simulation`].
    pub fn write_to(&self, out_dir: &Path) -> Result<Vec<PathBuf>> {
        fs::create_dir_all(out_dir)
            .map_err(|e| mvcom_types::Error::simulation(format!("creating {out_dir:?}: {e}")))?;
        let mut written = Vec::new();
        for (name, text) in &self.files {
            let path = out_dir.join(name);
            fs::write(&path, text)
                .map_err(|e| mvcom_types::Error::simulation(format!("writing {path:?}: {e}")))?;
            written.push(path);
        }
        Ok(written)
    }
}

/// Builds the scheduling-experiment instance the paper's Figs. 8–14 use:
/// `|I| = n` shards sampled one-block-each from the Jan-2016-like trace
/// (≈1089 TXs per shard), paper latency models, `N_min = 50%·|I|`.
///
/// # Errors
///
/// Propagates builder validation.
pub fn paper_instance(n: usize, capacity: u64, alpha: f64, seed: u64) -> Result<Instance> {
    let trace = Trace::generate(TraceConfig::jan_2016(), seed);
    let mut epochs = EpochGenerator::new(&trace, LatencyConfig::paper(), seed);
    let shards = epochs.next_epoch_with_replacement(n, 1)?;
    InstanceBuilder::new()
        .alpha(alpha)
        .capacity(capacity)
        .n_min(n / 2)
        .shards(shards)
        .build()
}

/// Builds a scale-regime instance (`|I| = 10⁴–10⁵`) through the chunked
/// [`ShardStream`] builder: shards are generated 4096 at a time off the
/// Jan-2016-like trace, so the only `O(|I|)` allocation is the instance
/// itself — no materialized tx-count/latency intermediates (DESIGN.md
/// §11). Same parameter conventions as [`paper_instance`]
/// (`N_min = 50%·|I|`) but a distinct generator: the stream draws
/// per-shard, leaving the legacy epoch path — and the byte-frozen
/// small-|I| figure outputs built on it — untouched.
///
/// # Errors
///
/// Propagates stream and builder validation.
pub fn streamed_instance(n: usize, capacity: u64, alpha: f64, seed: u64) -> Result<Instance> {
    let trace = Trace::generate(TraceConfig::jan_2016(), seed);
    let mut stream = ShardStream::new(
        &trace,
        LatencyConfig::paper(),
        seed,
        StreamConfig {
            shards: n,
            blocks_per_shard: 1,
        },
    )?;
    let mut shards = Vec::with_capacity(n);
    let mut chunk = Vec::new();
    while stream.next_chunk(&mut chunk, 4096) > 0 {
        shards.append(&mut chunk);
    }
    InstanceBuilder::new()
        .alpha(alpha)
        .capacity(capacity)
        .n_min(n / 2)
        .shards(shards)
        .build()
}

/// One algorithm's result on one instance, in a form common to SE and the
/// baselines so the comparison figures can overlay them.
#[derive(Debug, Clone)]
pub struct AlgoRun {
    /// Algorithm name as plotted (`"SE"`, `"SA"`, `"DP"`, `"WOA"`).
    pub name: &'static str,
    /// Final (best) utility.
    pub utility: f64,
    /// The final solution.
    pub solution: Solution,
    /// `(iteration, best-so-far utility)` convergence samples.
    pub trajectory: Vec<(u64, f64)>,
}

/// Runs SE and the paper's three baselines on `instance` with a shared
/// iteration budget — the engine behind Figs. 10–14.
///
/// # Errors
///
/// Propagates any solver error.
pub fn run_all_algorithms(
    instance: &Instance,
    iterations: u64,
    gamma: usize,
    seed: u64,
) -> Result<Vec<AlgoRun>> {
    let mut runs = Vec::with_capacity(4);

    let se_config = SeConfig {
        gamma,
        max_iterations: iterations,
        convergence_window: 0,
        record_every: 1,
        ..SeConfig::paper(seed)
    };
    let se = SeEngine::new(instance, se_config)?.run();
    runs.push(AlgoRun {
        name: "SE",
        utility: se.best_utility,
        solution: se.best_solution,
        trajectory: se
            .trajectory
            .points()
            .iter()
            .map(|p| (p.iteration, p.best_so_far))
            .collect(),
    });

    let sa = SaSolver::new(SaConfig {
        iterations,
        ..SaConfig::paper(seed)
    })
    .solve(instance)?;
    runs.push(AlgoRun {
        name: "SA",
        utility: sa.best_utility,
        solution: sa.best_solution,
        trajectory: sa.trajectory,
    });

    let dp = DpSolver::new(DpConfig::paper()).solve(instance)?;
    // DP is one-shot; extend its point into a flat line for overlays.
    let dp_traj = vec![(0, dp.best_utility), (iterations, dp.best_utility)];
    runs.push(AlgoRun {
        name: "DP",
        utility: dp.best_utility,
        solution: dp.best_solution,
        trajectory: dp_traj,
    });

    let woa = WoaSolver::new(WoaConfig {
        iterations,
        ..WoaConfig::paper(seed)
    })
    .solve(instance)?;
    runs.push(AlgoRun {
        name: "WOA",
        utility: woa.best_utility,
        solution: woa.best_solution,
        trajectory: woa.trajectory,
    });

    Ok(runs)
}

/// Downsamples a trajectory to at most `max_points` evenly spaced samples
/// (always keeping the last).
pub fn downsample<T: Copy>(points: &[T], max_points: usize) -> Vec<T> {
    if points.len() <= max_points || max_points < 2 {
        return points.to_vec();
    }
    let stride = points.len().div_ceil(max_points);
    let mut out: Vec<T> = points.iter().copied().step_by(stride).collect();
    if let Some(&last) = points.last() {
        out.push(last);
    }
    out
}

/// Ceiling on the line count of `.events.jsonl` artifacts a figure may
/// emit; `experiments::run` fails the figure's shape checks above it so
/// event streams can't silently bloat the repository again (the original
/// `fig8.events.jsonl` was 122k lines).
pub const MAX_EVENT_LINES: usize = 5_000;

/// Downsamples a JSONL event stream to at most `max_lines` lines,
/// preserving the original line order.
///
/// Rare event kinds (≤ 200 lines) are kept in full — they carry the
/// lifecycle markers (`se_init`, `se_improve`, `se_converged`, …) that
/// `obs_report` and the replay tests anchor on. Dominant kinds split the
/// remaining budget evenly and are stride-sampled per kind via
/// [`downsample`], so the sampled stream keeps full time coverage of
/// every series rather than truncating the tail.
///
/// Every kind's **final** event is always retained, in both the per-kind
/// and the degenerate uniform-sampling paths, so no series ends
/// mid-epoch after downsampling. (If a stream somehow had more distinct
/// kinds than `max_lines`, keeping each series' last would exceed the
/// cap; real streams have a few dozen kinds.)
pub fn downsample_events_jsonl(events: &str, max_lines: usize) -> String {
    let lines: Vec<&str> = events.lines().collect();
    if lines.len() <= max_lines {
        return events.to_string();
    }
    let kind_of = |line: &str| -> String {
        line.split_once("\"kind\":\"")
            .and_then(|(_, rest)| rest.split_once('"'))
            .map(|(kind, _)| kind.to_string())
            .unwrap_or_default()
    };
    // Group line indices per kind, in first-seen order.
    let mut kinds: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let kind = kind_of(line);
        match kinds.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, indices)) => indices.push(i),
            None => kinds.push((kind, vec![i])),
        }
    }
    let rare_total: usize = kinds
        .iter()
        .filter(|(_, idx)| idx.len() <= 200)
        .map(|(_, idx)| idx.len())
        .sum();
    let heavy: Vec<&(String, Vec<usize>)> =
        kinds.iter().filter(|(_, idx)| idx.len() > 200).collect();
    let mut keep = vec![false; lines.len()];
    if rare_total >= max_lines || heavy.is_empty() {
        // Degenerate distribution: sample uniformly across everything,
        // reserving one slot per kind so each series still ends on its
        // own final event (uniform sampling alone only guarantees the
        // *global* last line survives, leaving other series truncated
        // mid-epoch).
        let all: Vec<usize> = (0..lines.len()).collect();
        let budget = max_lines
            .saturating_sub(2 + kinds.len())
            .max(2)
            .min(max_lines.saturating_sub(2).max(2));
        for i in downsample(&all, budget) {
            keep[i] = true;
        }
    } else {
        for (_, indices) in kinds.iter().filter(|(_, idx)| idx.len() <= 200) {
            for &i in indices {
                keep[i] = true;
            }
        }
        // `downsample` may exceed its target by ~2 (stride rounding + the
        // kept last point); budget conservatively so the cap still holds.
        let share = ((max_lines - rare_total) / heavy.len())
            .saturating_sub(2)
            .max(2);
        for (_, indices) in heavy {
            for &i in &downsample(indices, share) {
                keep[i] = true;
            }
        }
    }
    // Invariant (both branches): every series retains its final event, so
    // a downsampled stream never ends mid-epoch for any kind. The heavy
    // branch already gets this from `downsample` keeping each series'
    // last point; the degenerate branch relies on the reserved slots.
    for (_, indices) in &kinds {
        if let Some(&last) = indices.last() {
            keep[last] = true;
        }
    }
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        if keep[i] {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Replays finished algorithm runs into a schema-validated JSONL event
/// stream (`solver_point`/`solver_done`, one series per run, sampled to
/// ~`max_points` each) — the obs event file some figures write next to
/// their CSVs. Emission happens after all solves, so attaching telemetry
/// cannot perturb a solver; `obs_report` consumes the result.
pub fn runs_as_events(runs: &[AlgoRun], max_points: usize) -> String {
    use mvcom_obs::{Obs, ObsLevel, Value};
    let (obs, buf) = Obs::memory(ObsLevel::Events);
    for run in runs {
        for &(iter, best) in &downsample(&run.trajectory, max_points) {
            obs.emit(
                "solver_point",
                iter as f64,
                &[
                    ("solver", Value::from(run.name)),
                    ("iter", Value::U64(iter)),
                    ("best", Value::F64(best)),
                ],
            );
        }
        let iters = run.trajectory.last().map_or(0, |&(iter, _)| iter);
        obs.emit(
            "solver_done",
            iters as f64,
            &[
                ("solver", Value::from(run.name)),
                ("iters", Value::U64(iters)),
                ("best", Value::F64(run.utility)),
            ],
        );
    }
    obs.flush();
    debug_assert_eq!(obs.invalid_dropped(), 0);
    buf.contents()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_quick_shrinks() {
        assert_eq!(Scale::Full.iters(3_000), 3_000);
        assert_eq!(Scale::Quick.iters(3_000), 300);
        assert_eq!(Scale::Quick.committees(500), 50);
        assert_eq!(Scale::Quick.reps(20), 5);
        assert_eq!(Scale::Quick.iters(100), 50);
    }

    #[test]
    fn paper_instance_matches_parameters() {
        let inst = paper_instance(50, 50_000, 1.5, 1).unwrap();
        assert_eq!(inst.len(), 50);
        assert_eq!(inst.capacity(), 50_000);
        assert_eq!(inst.n_min(), 25);
        // ~1089 TXs per shard on average.
        let mean = inst.total_txs() as f64 / 50.0;
        assert!((800.0..1400.0).contains(&mean), "mean shard size {mean}");
    }

    #[test]
    fn csv_rendering() {
        let mut report = FigureReport::new("test");
        report.add_csv("t.csv", &["a", "b"], vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(report.files[0].1, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn downsample_keeps_ends() {
        let points: Vec<u64> = (0..1000).collect();
        let ds = downsample(&points, 50);
        assert!(ds.len() <= 52);
        assert_eq!(ds[0], 0);
        assert_eq!(*ds.last().unwrap(), 999);
        assert_eq!(downsample(&points, 2000), points);
    }

    #[test]
    fn run_tasks_preserves_task_order_at_any_thread_count() {
        let tasks = |n: usize| -> Vec<_> {
            (0..n)
                .map(|i| move || Ok::<usize, mvcom_types::Error>(i * 10))
                .collect()
        };
        let serial = run_tasks(tasks(9)).unwrap();
        for workers in [1, 2, 8] {
            set_threads(workers);
            assert_eq!(run_tasks(tasks(9)).unwrap(), serial, "threads={workers}");
        }
        set_threads(1);
        assert_eq!(serial, vec![0, 10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn run_tasks_surfaces_the_first_error_in_task_order() {
        set_threads(4);
        let tasks: Vec<Box<dyn FnOnce() -> mvcom_types::Result<u32> + Send>> = vec![
            Box::new(|| Ok(1)),
            Box::new(|| Err(mvcom_types::Error::simulation("second task failed"))),
            Box::new(|| Ok(3)),
        ];
        let err = run_tasks(tasks).unwrap_err();
        assert!(err.to_string().contains("second task failed"), "{err}");
        set_threads(1);
    }

    #[test]
    fn downsample_events_keeps_rare_kinds_and_caps_lines() {
        let mut events = String::new();
        events.push_str("{\"kind\":\"se_init\",\"t\":0}\n");
        for i in 0..20_000 {
            events.push_str(&format!("{{\"kind\":\"se_chain_point\",\"t\":{i}}}\n"));
        }
        for i in 0..9_000 {
            events.push_str(&format!("{{\"kind\":\"se_point\",\"t\":{i}}}\n"));
        }
        events.push_str("{\"kind\":\"se_converged\",\"t\":9}\n");
        let trimmed = downsample_events_jsonl(&events, 5_000);
        let n_lines = trimmed.lines().count();
        assert!(n_lines <= 5_000, "still {n_lines} lines");
        assert!(n_lines > 3_000, "over-trimmed to {n_lines} lines");
        assert!(trimmed.contains("se_init"));
        assert!(trimmed.contains("se_converged"));
        // The last sample of each heavy series survives.
        assert!(trimmed.contains("{\"kind\":\"se_chain_point\",\"t\":19999}"));
        assert!(trimmed.contains("{\"kind\":\"se_point\",\"t\":8999}"));
        // Order is preserved: converged is still the final line.
        assert_eq!(
            trimmed.lines().last().unwrap(),
            "{\"kind\":\"se_converged\",\"t\":9}"
        );
        // Small streams pass through untouched.
        let small = "{\"kind\":\"a\"}\n{\"kind\":\"b\"}\n";
        assert_eq!(downsample_events_jsonl(small, 5_000), small);
    }

    #[test]
    fn downsample_events_degenerate_branch_keeps_each_series_last_event() {
        // Synthetic over-limit stream that forces the degenerate uniform
        // branch: no kind exceeds 200 lines (so `heavy` is empty), yet
        // the total is far over the cap. Before the fix, uniform
        // sampling only guaranteed the *global* last line survived, so
        // every other series could lose its final event and the
        // downsampled JSONL ended mid-epoch for those kinds.
        let mut events = String::new();
        for series in 0..60 {
            for i in 0..200 {
                events.push_str(&format!("{{\"kind\":\"epoch_{series}\",\"t\":{i}}}\n"));
            }
        }
        assert_eq!(events.lines().count(), 12_000);
        let trimmed = downsample_events_jsonl(&events, 5_000);
        let n_lines = trimmed.lines().count();
        assert!(n_lines <= 5_000, "still {n_lines} lines");
        for series in 0..60 {
            let last = format!("{{\"kind\":\"epoch_{series}\",\"t\":199}}");
            assert!(
                trimmed.contains(&last),
                "series epoch_{series} lost its final event"
            );
        }
        // Order preserved: the stream still ends on the global last line.
        assert_eq!(
            trimmed.lines().last().unwrap(),
            "{\"kind\":\"epoch_59\",\"t\":199}"
        );

        // Heavy branch: an interleaved tail must also survive for every
        // heavy series, not only the one that happens to own the global
        // last line.
        let mut events = String::new();
        for i in 0..9_000 {
            events.push_str(&format!("{{\"kind\":\"heavy_a\",\"t\":{i}}}\n"));
        }
        for i in 0..9_000 {
            events.push_str(&format!("{{\"kind\":\"heavy_b\",\"t\":{i}}}\n"));
        }
        events.push_str("{\"kind\":\"epoch_end\",\"t\":1}\n");
        let trimmed = downsample_events_jsonl(&events, 5_000);
        assert!(trimmed.lines().count() <= 5_000);
        assert!(trimmed.contains("{\"kind\":\"heavy_a\",\"t\":8999}"));
        assert!(trimmed.contains("{\"kind\":\"heavy_b\",\"t\":8999}"));
        assert!(trimmed.contains("epoch_end"));
    }

    #[test]
    fn parse_threads_validates() {
        assert_eq!(parse_threads("4", "--threads").unwrap(), 4);
        assert_eq!(parse_threads(" 1 ", "--threads").unwrap(), 1);
        let zero = parse_threads("0", "--threads").unwrap_err();
        assert!(zero.to_string().contains(">= 1"), "{zero}");
        assert!(zero.to_string().contains("--threads"), "{zero}");
        let word = parse_threads("four", "MVCOM_THREADS").unwrap_err();
        assert!(word.to_string().contains("integer"), "{word}");
        assert!(word.to_string().contains("MVCOM_THREADS"), "{word}");
        assert!(parse_threads("", "--threads").is_err());
        assert!(parse_threads("-2", "--threads").is_err());
        assert!(parse_threads("1.5", "--threads").is_err());
    }

    #[test]
    fn resolve_threads_surfaces_invalid_env_instead_of_defaulting() {
        // Explicit override wins without consulting the environment.
        assert_eq!(resolve_threads(3, Some("garbage")).unwrap(), 3);
        // Unset env defaults to serial.
        assert_eq!(resolve_threads(0, None).unwrap(), 1);
        assert_eq!(resolve_threads(0, Some("8")).unwrap(), 8);
        // `MVCOM_THREADS=0` / non-numeric used to silently mean 1.
        assert!(resolve_threads(0, Some("0")).is_err());
        assert!(resolve_threads(0, Some("four")).is_err());
    }

    #[test]
    #[should_panic(expected = "set_threads precondition")]
    fn set_threads_rejects_zero() {
        set_threads(0);
    }

    #[test]
    fn check_formats_verdicts() {
        let mut report = FigureReport::new("x");
        report.check("thing holds", true);
        report.check("other thing", false);
        assert!(report.summary[0].starts_with("[OK]"));
        assert!(report.summary[1].starts_with("[MISMATCH]"));
    }
}
