//! Post-processor for the JSONL telemetry documented in OBSERVABILITY.md.
//!
//! ```text
//! obs_report <events.jsonl>...
//! ```
//!
//! For each file, prints:
//!
//! * **mixing** — from the `se_improve` stream: the iteration of the last
//!   improvement, the improvement count, and the area under the
//!   best-so-far curve (from `se_point`). A `last_improvement_iter` close
//!   to the budget means the run was cut off while still improving.
//! * **resets** — RESET-bus churn: publish/apply/stale counts overall and
//!   per replica, plus the highest version observed. Many stale drops
//!   mean replicas are fighting over the bus.
//! * **flat chains** — `se_chain_point` series whose utility never moved:
//!   chains stuck in an infeasible region from their seed solution.
//! * **recovery** — suspicion samples, declared failures, and submission
//!   retries from a fault-tolerant epoch run.
//!
//! Sections with no matching events are omitted.

#![forbid(unsafe_code)]
use std::collections::BTreeMap;
use std::process::ExitCode;

use serde::Value;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p.starts_with('-')) {
        eprintln!("usage: obs_report <events.jsonl>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        if paths.len() > 1 {
            println!("=== {path} ===");
        }
        match std::fs::read_to_string(path) {
            Ok(text) => report(&text),
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Looks up a field of a JSON object line.
fn field<'a>(line: &'a Value, key: &str) -> Option<&'a Value> {
    match line {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u64(v: Option<&Value>) -> Option<u64> {
    match v? {
        Value::U64(x) => Some(*x),
        Value::I64(x) => u64::try_from(*x).ok(),
        // lint: allow(F1, fract()==0.0 is an exact integrality test on a parsed id, not a rounding-sensitive comparison)
        Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => Some(*x as u64),
        _ => None,
    }
}

fn as_f64(v: Option<&Value>) -> Option<f64> {
    match v? {
        Value::F64(x) => Some(*x),
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        _ => None,
    }
}

fn as_str(v: Option<&Value>) -> Option<&str> {
    match v? {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

#[derive(Default)]
struct PerReplica {
    published: u64,
    applied: u64,
    stale: u64,
    improvements: u64,
}

fn report(text: &str) {
    let mut lines = 0u64;
    let mut unparseable = 0u64;
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();

    // Mixing.
    let mut last_improvement_iter = 0u64;
    let mut improvements = 0u64;
    let mut best_curve: Vec<(u64, f64)> = Vec::new();
    let mut improve_curve: Vec<(u64, f64)> = Vec::new();
    let mut converged: Option<(u64, f64, bool)> = None;

    // RESET churn.
    let mut publish = 0u64;
    let mut applied = 0u64;
    let mut stale = 0u64;
    let mut max_version = 0u64;
    let mut replicas: BTreeMap<u64, PerReplica> = BTreeMap::new();

    // Chain flatness: (replica, chain) -> (cardinality, first utility,
    // sample count, has the utility ever moved).
    let mut chains: BTreeMap<(u64, u64), (u64, f64, u64, bool)> = BTreeMap::new();

    // Recovery.
    let mut suspicions = 0u64;
    let mut failures: Vec<u64> = Vec::new();
    let mut retries = 0u64;

    // Baseline solvers: name -> (iters, best) from `solver_done`.
    let mut solvers: Vec<(String, u64, f64)> = Vec::new();

    for raw in text.lines() {
        if raw.trim().is_empty() {
            continue;
        }
        lines += 1;
        let Ok(line) = serde_json::from_str_value(raw) else {
            unparseable += 1;
            continue;
        };
        let Some(kind) = as_str(field(&line, "kind")) else {
            unparseable += 1;
            continue;
        };
        *kinds.entry(kind.to_string()).or_insert(0) += 1;
        match kind {
            "se_improve" => {
                improvements += 1;
                if let Some(iter) = as_u64(field(&line, "iter")) {
                    last_improvement_iter = last_improvement_iter.max(iter);
                    if let Some(u) = as_f64(field(&line, "utility")) {
                        improve_curve.push((iter, u));
                    }
                }
                if let Some(g) = as_u64(field(&line, "replica")) {
                    replicas.entry(g).or_default().improvements += 1;
                }
            }
            "se_point" => {
                if let (Some(iter), Some(best)) = (
                    as_u64(field(&line, "iter")),
                    as_f64(field(&line, "best_so_far")),
                ) {
                    best_curve.push((iter, best));
                }
            }
            "se_converged" => {
                converged = Some((
                    as_u64(field(&line, "iter")).unwrap_or(0),
                    as_f64(field(&line, "best")).unwrap_or(f64::NAN),
                    matches!(field(&line, "converged"), Some(Value::Bool(true))),
                ));
            }
            "reset_publish" | "reset_apply" | "reset_stale" => {
                if let Some(v) = as_u64(field(&line, "version")) {
                    max_version = max_version.max(v);
                }
                let per = replicas
                    .entry(as_u64(field(&line, "replica")).unwrap_or(0))
                    .or_default();
                match kind {
                    "reset_publish" => {
                        publish += 1;
                        per.published += 1;
                    }
                    "reset_apply" => {
                        applied += 1;
                        per.applied += 1;
                    }
                    _ => {
                        stale += 1;
                        per.stale += 1;
                    }
                }
            }
            "se_chain_point" => {
                if let (Some(g), Some(c), Some(u)) = (
                    as_u64(field(&line, "replica")),
                    as_u64(field(&line, "chain")),
                    as_f64(field(&line, "utility")),
                ) {
                    let card = as_u64(field(&line, "card")).unwrap_or(0);
                    let entry = chains.entry((g, c)).or_insert((card, u, 0, false));
                    entry.2 += 1;
                    if (u - entry.1).abs() > 1e-9 {
                        entry.3 = true;
                    }
                }
            }
            "suspicion" => suspicions += 1,
            "failure_declared" => {
                if let Some(c) = as_u64(field(&line, "committee")) {
                    failures.push(c);
                }
            }
            "submission_retry" => retries += 1,
            "solver_done" => {
                if let (Some(s), Some(iters), Some(best)) = (
                    as_str(field(&line, "solver")),
                    as_u64(field(&line, "iters")),
                    as_f64(field(&line, "best")),
                ) {
                    solvers.push((s.to_string(), iters, best));
                }
            }
            _ => {}
        }
    }

    println!(
        "events: {lines} lines, {} kinds, {unparseable} unparseable",
        kinds.len()
    );
    if improvements > 0 || converged.is_some() {
        print!("mixing: last_improvement_iter={last_improvement_iter} improvements={improvements}");
        if let Some((iter, best, conv)) = converged {
            print!(" final_iter={iter} best={best} converged={conv}");
        }
        // Prefer the dense `se_point` samples (sequential engine); the
        // lockstep runner only reports improvements, which still trace the
        // best-so-far staircase.
        let curve = if best_curve.is_empty() {
            &improve_curve
        } else {
            &best_curve
        };
        if let Some(auc) = area_under_curve(curve) {
            print!(" auc={auc:.1}");
        }
        println!();
    }
    if publish + applied + stale > 0 {
        println!(
            "resets: broadcast={publish} applied={applied} stale={stale} max_version={max_version}"
        );
        for (g, per) in &replicas {
            println!(
                "  replica {g}: improvements={} published={} applied={} stale={}",
                per.improvements, per.published, per.applied, per.stale
            );
        }
    }
    let flat: Vec<_> = chains
        .iter()
        .filter(|(_, (_, _, samples, moved))| *samples >= 2 && !moved)
        .collect();
    if !flat.is_empty() {
        println!("flat chains ({} of {}):", flat.len(), chains.len());
        for ((g, c), (card, first, samples, _)) in flat {
            println!(
                "  replica {g} chain {c} (card {card}): stuck at {first:.1} over {samples} samples"
            );
        }
    }
    if !solvers.is_empty() {
        let best = solvers
            .iter()
            .map(|(_, _, b)| *b)
            .fold(f64::NEG_INFINITY, f64::max);
        println!("solvers:");
        for (name, iters, b) in &solvers {
            println!(
                "  {name}: iters={iters} best={b}{}",
                if *b >= best { "  <-- winner" } else { "" }
            );
        }
    }
    if suspicions + retries > 0 || !failures.is_empty() {
        println!(
            "recovery: suspicions={suspicions} failures={} retries={retries}{}",
            failures.len(),
            if failures.is_empty() {
                String::new()
            } else {
                format!(
                    " (committees: {})",
                    failures
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
        );
    }
}

/// Trapezoidal area under the best-so-far curve, normalized by the covered
/// iteration span (i.e. the mean best-so-far utility). `None` without at
/// least two samples spanning distinct iterations, or when the iteration
/// axis is not monotone — a file holding several SE runs (e.g. one per
/// epoch) interleaves their curves, and a mean across instances with
/// different utility scales would be meaningless.
fn area_under_curve(curve: &[(u64, f64)]) -> Option<f64> {
    let (first, last) = (curve.first()?, curve.last()?);
    let span = (last.0 - first.0) as f64;
    let pairs = || curve.iter().zip(curve.iter().skip(1));
    if span <= 0.0 || pairs().any(|(a, b)| b.0 < a.0) {
        return None;
    }
    let mut area = 0.0;
    for (&(t0, u0), &(t1, u1)) in pairs() {
        area += 0.5 * (u0 + u1) * (t1 - t0) as f64;
    }
    Some(area / span)
}
