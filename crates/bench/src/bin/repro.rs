//! Regenerates the paper's figures.
//!
//! ```text
//! repro all [--quick] [--out DIR]      # every figure
//! repro fig8 fig10 [--quick]           # selected figures
//! repro fig8 --threads 4               # fan sweep points across threads
//! repro --list                         # available figures
//! ```
//!
//! CSVs are written under `--out` (default `results/`); a summary with
//! shape-check verdicts is printed per figure. `--threads N` (or the
//! `MVCOM_THREADS` environment variable) fans each figure's independent
//! sweep points across worker threads — outputs are byte-identical to the
//! serial run at any thread count, only wall-clock changes.

#![forbid(unsafe_code)]
use std::path::PathBuf;
use std::process::ExitCode;

use mvcom_bench::experiments::{self, ALL};
use mvcom_bench::Scale;

struct Args {
    figures: Vec<String>,
    scale: Scale,
    out: PathBuf,
    list: bool,
    svg: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut figures = Vec::new();
    let mut scale = Scale::Full;
    let mut out = PathBuf::from("results");
    let mut list = false;
    let mut svg = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--list" => list = true,
            "--svg" => svg = true,
            "--threads" => {
                let value = argv
                    .next()
                    .ok_or_else(|| "--threads needs a count".to_string())?;
                let threads = mvcom_bench::harness::parse_threads(&value, "--threads")
                    .map_err(|e| e.to_string())?;
                mvcom_bench::harness::set_threads(threads);
            }
            "--out" => {
                out = PathBuf::from(
                    argv.next()
                        .ok_or_else(|| "--out needs a directory".to_string())?,
                );
            }
            "all" => figures.extend(ALL.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            fig => figures.push(fig.to_string()),
        }
    }
    Ok(Args {
        figures,
        scale,
        out,
        list,
        svg,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: repro <figure…|all> [--quick] [--svg] [--threads N] [--out DIR] [--list]"
            );
            return ExitCode::FAILURE;
        }
    };
    // Surface a bad `MVCOM_THREADS` up front (with the offending value)
    // instead of letting the first fan-out fail mid-run — or worse, the
    // old behavior of silently running serial.
    if let Err(e) = mvcom_bench::harness::threads() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if args.list || args.figures.is_empty() {
        println!("available figures: {}", ALL.join(" "));
        println!("usage: repro <figure…|all> [--quick] [--out DIR]");
        return ExitCode::SUCCESS;
    }

    let mut mismatches = 0usize;
    for name in &args.figures {
        println!("=== {name} ({:?}) ===", args.scale);
        let started = std::time::Instant::now();
        match experiments::run(name, args.scale) {
            Ok(report) => {
                for line in &report.summary {
                    println!("  {line}");
                    if line.contains("MISMATCH") {
                        mismatches += 1;
                    }
                }
                match report.write_to(&args.out) {
                    Ok(paths) => {
                        for p in paths {
                            println!("  wrote {}", p.display());
                        }
                    }
                    Err(e) => {
                        eprintln!("  error writing output: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                println!("  ({:.1}s)", started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("  error: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!();
    }
    if args.svg {
        match mvcom_bench::figures::render_all(&args.out) {
            Ok(paths) => {
                for p in paths {
                    println!("rendered {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("error rendering SVGs: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if mismatches > 0 {
        println!("{mismatches} shape check(s) MISMATCHED — see above");
        return ExitCode::from(2);
    }
    println!("all shape checks passed");
    ExitCode::SUCCESS
}
