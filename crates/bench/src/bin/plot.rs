//! Renders SVG charts from previously written figure CSVs.
//!
//! ```text
//! plot [DIR]      # default DIR = results/
//! ```

#![forbid(unsafe_code)]
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    if !dir.is_dir() {
        eprintln!(
            "error: {} is not a directory (run `repro` first)",
            dir.display()
        );
        return ExitCode::FAILURE;
    }
    match mvcom_bench::figures::render_all(&dir) {
        Ok(paths) if paths.is_empty() => {
            println!("no known figure CSVs found in {}", dir.display());
            ExitCode::SUCCESS
        }
        Ok(paths) => {
            for p in paths {
                println!("rendered {}", p.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
