//! CSV → SVG rendering for the regenerated figures.
//!
//! Each experiment writes plain CSV series (schemas documented per figure
//! module); this module knows those schemas and renders publication-style
//! SVG charts next to the CSVs. Used by `repro --svg` and the standalone
//! `plot` binary.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use mvcom_types::{Error, Result};

use crate::plot::{Bar, Chart, Series};

/// Parses one of our own CSVs: header row plus comma-separated cells, no
/// quoting (we never emit commas inside cells).
fn read_csv(path: &Path) -> Result<(Vec<String>, Vec<Vec<String>>)> {
    let text = fs::read_to_string(path)
        .map_err(|e| Error::simulation(format!("reading {path:?}: {e}")))?;
    let mut lines = text.lines();
    let header: Vec<String> = lines
        .next()
        .ok_or_else(|| Error::simulation(format!("{path:?} is empty")))?
        .split(',')
        .map(str::to_string)
        .collect();
    let rows = lines
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect();
    Ok((header, rows))
}

fn column(header: &[String], name: &str) -> Result<usize> {
    header
        .iter()
        .position(|h| h == name)
        .ok_or_else(|| Error::simulation(format!("column `{name}` missing from {header:?}")))
}

fn parse_f64(cell: &str) -> f64 {
    cell.parse().unwrap_or(f64::NAN)
}

/// Groups `(group, x, y)` rows into per-group series, preserving the
/// first-appearance order of groups.
fn grouped_series(rows: &[(String, f64, f64)]) -> Vec<Series> {
    let mut order: Vec<String> = Vec::new();
    let mut map: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (g, x, y) in rows {
        if !map.contains_key(g) {
            order.push(g.clone());
        }
        map.entry(g.clone()).or_default().push((*x, *y));
    }
    order
        .into_iter()
        .map(|g| Series {
            points: map.remove(&g).unwrap_or_default(),
            label: g,
        })
        .collect()
}

fn write_svg(
    dir: &Path,
    name: &str,
    svg: Option<String>,
    written: &mut Vec<PathBuf>,
) -> Result<()> {
    let Some(svg) = svg else { return Ok(()) };
    let path = dir.join(name);
    fs::write(&path, svg).map_err(|e| Error::simulation(format!("writing {path:?}: {e}")))?;
    written.push(path);
    Ok(())
}

/// Renders `<group>, iteration, utility` convergence CSVs: one SVG per
/// distinct facet value when `facet` is set, otherwise one SVG grouping by
/// the group column.
fn render_convergence(
    dir: &Path,
    csv: &str,
    facet: Option<&str>,
    group_col: &str,
    title: &str,
    written: &mut Vec<PathBuf>,
) -> Result<()> {
    let path = dir.join(csv);
    if !path.exists() {
        return Ok(());
    }
    let (header, rows) = read_csv(&path)?;
    let gi = column(&header, group_col)?;
    let xi = column(&header, "iteration")?;
    let yi = column(&header, "utility")?;
    let stem = csv.trim_end_matches(".csv");
    match facet {
        None => {
            let data: Vec<(String, f64, f64)> = rows
                .iter()
                .map(|r| (r[gi].clone(), parse_f64(&r[xi]), parse_f64(&r[yi])))
                .collect();
            let chart = Chart::new(title, "iteration", "system utility");
            write_svg(
                dir,
                &format!("{stem}.svg"),
                chart.render_lines(&grouped_series(&data)),
                written,
            )?;
        }
        Some(facet_col) => {
            let fi = column(&header, facet_col)?;
            let mut facets: Vec<String> = Vec::new();
            for r in &rows {
                if !facets.contains(&r[fi]) {
                    facets.push(r[fi].clone());
                }
            }
            for facet_value in facets {
                let data: Vec<(String, f64, f64)> = rows
                    .iter()
                    .filter(|r| r[fi] == facet_value)
                    .map(|r| (r[gi].clone(), parse_f64(&r[xi]), parse_f64(&r[yi])))
                    .collect();
                let chart = Chart::new(
                    format!("{title} ({facet_col} = {facet_value})"),
                    "iteration",
                    "system utility",
                );
                write_svg(
                    dir,
                    &format!("{stem}_{facet_col}_{facet_value}.svg"),
                    chart.render_lines(&grouped_series(&data)),
                    written,
                )?;
            }
        }
    }
    Ok(())
}

/// Renders every known figure CSV found in `dir`; returns the SVG paths.
///
/// # Errors
///
/// I/O failures and malformed CSVs (which would indicate a harness bug).
pub fn render_all(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut written = Vec::new();

    // Fig. 2(a): latency vs network size.
    let fig2a = dir.join("fig2a.csv");
    if fig2a.exists() {
        let (header, rows) = read_csv(&fig2a)?;
        let xi = column(&header, "network_size")?;
        let fi = column(&header, "formation_mean_s")?;
        let ci = column(&header, "consensus_mean_s")?;
        let series = vec![
            Series {
                label: "committee formation".into(),
                points: rows
                    .iter()
                    .map(|r| (parse_f64(&r[xi]), parse_f64(&r[fi])))
                    .collect(),
            },
            Series {
                label: "intra-committee consensus".into(),
                points: rows
                    .iter()
                    .map(|r| (parse_f64(&r[xi]), parse_f64(&r[ci])))
                    .collect(),
            },
        ];
        let chart = Chart::new(
            "Fig. 2(a) — two-phase latency vs network size",
            "network size (nodes)",
            "latency (s)",
        );
        write_svg(dir, "fig2a.svg", chart.render_lines(&series), &mut written)?;
    }

    // Fig. 2(b): the two CDFs on one chart.
    let formation_cdf = dir.join("fig2b_formation_cdf.csv");
    let consensus_cdf = dir.join("fig2b_consensus_cdf.csv");
    if formation_cdf.exists() && consensus_cdf.exists() {
        let mut series = Vec::new();
        for (path, label) in [
            (&formation_cdf, "formation latency"),
            (&consensus_cdf, "consensus latency"),
        ] {
            let (header, rows) = read_csv(path)?;
            let xi = column(&header, "latency_s")?;
            let yi = column(&header, "cdf")?;
            series.push(Series {
                label: label.into(),
                points: rows
                    .iter()
                    .map(|r| (parse_f64(&r[xi]), parse_f64(&r[yi])))
                    .collect(),
            });
        }
        let chart = Chart::new(
            "Fig. 2(b) — CDF of the two-phase latency components",
            "latency (s)",
            "CDF",
        );
        write_svg(dir, "fig2b.svg", chart.render_lines(&series), &mut written)?;
    }

    // Fig. 8: convergence per Γ.
    let fig8 = dir.join("fig8.csv");
    if fig8.exists() {
        let (header, rows) = read_csv(&fig8)?;
        let gi = column(&header, "gamma")?;
        let xi = column(&header, "iteration")?;
        let yi = column(&header, "utility")?;
        let data: Vec<(String, f64, f64)> = rows
            .iter()
            .map(|r| {
                (
                    format!("Γ = {}", r[gi]),
                    parse_f64(&r[xi]),
                    parse_f64(&r[yi]),
                )
            })
            .collect();
        let chart = Chart::new(
            "Fig. 8 — SE convergence vs parallel threads Γ",
            "iteration",
            "system utility",
        );
        write_svg(
            dir,
            "fig8.svg",
            chart.render_lines(&grouped_series(&data)),
            &mut written,
        )?;
    }

    // Fig. 9(a)/(b): single trajectory each.
    for (csv, title) in [
        ("fig9a.csv", "Fig. 9(a) — committee leave & rejoin"),
        ("fig9b.csv", "Fig. 9(b) — consecutive committee joins"),
    ] {
        let path = dir.join(csv);
        if !path.exists() {
            continue;
        }
        let (header, rows) = read_csv(&path)?;
        let xi = column(&header, "iteration")?;
        let yi = column(&header, "utility")?;
        let series = vec![Series {
            label: "SE (Γ = 1)".into(),
            points: rows
                .iter()
                .map(|r| (parse_f64(&r[xi]), parse_f64(&r[yi])))
                .collect(),
        }];
        let chart = Chart::new(title, "iteration", "system utility");
        write_svg(
            dir,
            &csv.replace(".csv", ".svg"),
            chart.render_lines(&series),
            &mut written,
        )?;
    }

    // Fig. 10: valuable degree bars.
    let fig10 = dir.join("fig10.csv");
    if fig10.exists() {
        let (header, rows) = read_csv(&fig10)?;
        let ai = column(&header, "algorithm")?;
        let vi = column(&header, "valuable_degree")?;
        let bars: Vec<Bar> = rows
            .iter()
            .map(|r| Bar {
                label: r[ai].clone(),
                value: parse_f64(&r[vi]),
                whisker: None,
            })
            .collect();
        let chart = Chart::new(
            "Fig. 10 — Valuable Degree per algorithm",
            "algorithm",
            "valuable degree Σ s_i/Π_i",
        );
        write_svg(dir, "fig10.svg", chart.render_bars(&bars), &mut written)?;
    }

    // Convergence families.
    render_convergence(
        dir,
        "fig11.csv",
        Some("committees"),
        "algorithm",
        "Fig. 11 — convergence vs |I|",
        &mut written,
    )?;
    render_convergence(
        dir,
        "fig12.csv",
        Some("alpha"),
        "algorithm",
        "Fig. 12 — convergence vs α",
        &mut written,
    )?;
    render_convergence(
        dir,
        "fig14.csv",
        Some("alpha"),
        "algorithm",
        "Fig. 14 — online execution with consecutive joins",
        &mut written,
    )?;
    render_convergence(
        dir,
        "ablation_dynamics.csv",
        None,
        "policy",
        "Ablation — Trim vs Reinitialize after a failure",
        &mut written,
    )?;

    // Fig. 13: per-α bar groups with IQR whiskers.
    let fig13 = dir.join("fig13.csv");
    if fig13.exists() {
        let (header, rows) = read_csv(&fig13)?;
        let fi = column(&header, "alpha")?;
        let ai = column(&header, "algorithm")?;
        let mi = column(&header, "median")?;
        let q25 = column(&header, "q25")?;
        let q75 = column(&header, "q75")?;
        let mut alphas: Vec<String> = Vec::new();
        for r in &rows {
            if !alphas.contains(&r[fi]) {
                alphas.push(r[fi].clone());
            }
        }
        for alpha in alphas {
            let bars: Vec<Bar> = rows
                .iter()
                .filter(|r| r[fi] == alpha)
                .map(|r| Bar {
                    label: r[ai].clone(),
                    value: parse_f64(&r[mi]),
                    whisker: Some((parse_f64(&r[q25]), parse_f64(&r[q75]))),
                })
                .collect();
            let chart = Chart::new(
                format!("Fig. 13 — converged-utility distribution (α = {alpha})"),
                "algorithm",
                "converged utility (median, IQR)",
            );
            write_svg(
                dir,
                &format!("fig13_alpha_{alpha}.svg"),
                chart.render_bars(&bars),
                &mut written,
            )?;
        }
    }

    // Ablation: DDL policies as bars.
    let ddl = dir.join("ablation_ddl.csv");
    if ddl.exists() {
        let (header, rows) = read_csv(&ddl)?;
        let pi = column(&header, "policy")?;
        let ui = column(&header, "utility")?;
        let bars: Vec<Bar> = rows
            .iter()
            .map(|r| Bar {
                label: r[pi].clone(),
                value: parse_f64(&r[ui]),
                whisker: None,
            })
            .collect();
        let chart = Chart::new("Ablation — deadline policy", "policy", "converged utility");
        write_svg(
            dir,
            "ablation_ddl.svg",
            chart.render_bars(&bars),
            &mut written,
        )?;
    }

    // fig_adv: honest-utility capture vs adversarial fraction, one line
    // per strategy × defense arm.
    let adv = dir.join("fig_adv.csv");
    if adv.exists() {
        let (header, rows) = read_csv(&adv)?;
        let si = column(&header, "strategy")?;
        let fi = column(&header, "fraction")?;
        let di = column(&header, "defense")?;
        for (col, name, ylabel) in [
            (
                "honest_capture",
                "fig_adv_capture.svg",
                "honest-utility capture (vs honest reference)",
            ),
            (
                "starvation_rate",
                "fig_adv_starvation.svg",
                "starved epochs / total epochs",
            ),
        ] {
            let yi = column(&header, col)?;
            let data: Vec<(String, f64, f64)> = rows
                .iter()
                .map(|r| {
                    (
                        format!("{} (defense {})", r[si], r[di]),
                        parse_f64(&r[fi]),
                        parse_f64(&r[yi]),
                    )
                })
                .collect();
            let chart = Chart::new(
                "Adversarial frontier — strategic coalitions vs the defense layer",
                "adversarial fraction",
                ylabel,
            );
            write_svg(
                dir,
                name,
                chart.render_lines(&grouped_series(&data)),
                &mut written,
            )?;
        }
    }

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{FigureReport, Scale};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mvcom-figures-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn renders_fig8_style_csv() {
        let dir = tmpdir("fig8");
        let mut report = FigureReport::new("fig8");
        let mut rows = Vec::new();
        for gamma in [1, 10] {
            for iter in 0..20 {
                rows.push(vec![gamma as f64, iter as f64, (iter * gamma) as f64]);
            }
        }
        report.add_csv("fig8.csv", &["gamma", "iteration", "utility"], rows);
        report.write_to(&dir).unwrap();
        let written = render_all(&dir).unwrap();
        assert!(written.iter().any(|p| p.ends_with("fig8.svg")));
        let svg = fs::read_to_string(dir.join("fig8.svg")).unwrap();
        assert!(svg.contains("Γ = 1"));
        assert!(svg.contains("Γ = 10"));
    }

    #[test]
    fn renders_faceted_convergence_and_bars() {
        let dir = tmpdir("fig12-13");
        let mut report = FigureReport::new("x");
        report.add_csv(
            "fig12.csv",
            &["alpha", "algorithm", "iteration", "utility"],
            vec![
                vec!["1.5".to_string(), "SE".into(), "0".into(), "1.0".into()],
                vec!["1.5".to_string(), "SE".into(), "5".into(), "2.0".into()],
                vec!["5".to_string(), "SA".into(), "0".into(), "3.0".into()],
                vec!["5".to_string(), "SA".into(), "5".into(), "4.0".into()],
            ],
        );
        report.add_csv(
            "fig13.csv",
            &["alpha", "algorithm", "min", "q25", "median", "q75", "max"],
            vec![vec![
                "1.5".to_string(),
                "SE".into(),
                "1".into(),
                "2".into(),
                "3".into(),
                "4".into(),
                "5".into(),
            ]],
        );
        report.write_to(&dir).unwrap();
        let written = render_all(&dir).unwrap();
        let names: Vec<String> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().to_string())
            .collect();
        assert!(
            names.contains(&"fig12_alpha_1.5.svg".to_string()),
            "{names:?}"
        );
        assert!(names.contains(&"fig12_alpha_5.svg".to_string()));
        assert!(names.contains(&"fig13_alpha_1.5.svg".to_string()));
    }

    #[test]
    fn missing_csvs_are_skipped_silently() {
        let dir = tmpdir("empty");
        let written = render_all(&dir).unwrap();
        assert!(written.is_empty());
    }

    #[test]
    fn end_to_end_from_a_quick_experiment() {
        // Run the cheapest real experiment and render its SVG.
        let dir = tmpdir("e2e");
        let report = crate::experiments::run("fig9a", Scale::Quick).unwrap();
        report.write_to(&dir).unwrap();
        let written = render_all(&dir).unwrap();
        assert!(written.iter().any(|p| p.ends_with("fig9a.svg")));
    }
}
