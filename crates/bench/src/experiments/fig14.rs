//! Fig. 14 — online execution with 23 consecutive joining events, for
//! α ∈ {1.5, 5, 10} (|I_j| = 50 after all joins, Ĉ = 40K, Γ = 25).
//!
//! SE runs *online*, absorbing each join as it arrives; the baselines get
//! the luxury of solving the final post-join epoch offline with the same
//! iteration budget — and SE must still match or beat them.

use mvcom_core::dynamics::{run_online, DynamicsPolicy, TimedEvent};
use mvcom_core::se::SeConfig;
use mvcom_types::{CommitteeId, Result, ShardInfo};

use crate::experiments::fig12::ALPHAS;
use crate::harness::{
    downsample, paper_instance, run_all_algorithms, run_tasks, FigureReport, Scale,
};

const JOINS: usize = 23;

/// One α point's products, merged into the report in sweep order.
struct AlphaPoint {
    rows: Vec<Vec<String>>,
    verdict: (f64, f64, f64),
    note: String,
}

/// Runs the online-joins α sweep.
pub fn run(scale: Scale) -> Result<FigureReport> {
    let n_final = scale.committees(50).max(25);
    let n_joins = JOINS.min(n_final / 2);
    let n_start = n_final - n_joins;
    let capacity = 800 * n_final as u64; // Ĉ = 40K at |I| = 50
    let iters = scale.iters(3_000);
    // One task per α: seeds derive from the sweep index alone, so the
    // parallel fan-out merges byte-identically to the serial loop.
    let tasks: Vec<_> = ALPHAS
        .iter()
        .enumerate()
        .map(|(ai, &alpha)| {
            move || -> Result<AlphaPoint> {
                // The online SE path: start small, absorb joins.
                let start = paper_instance(n_start, capacity, alpha, 14_000 + ai as u64)?;
                let donor = paper_instance(n_joins, capacity, alpha, 14_050 + ai as u64)?;
                let events: Vec<TimedEvent> = donor
                    .shards()
                    .iter()
                    .enumerate()
                    .map(|(k, s)| {
                        let relabeled = ShardInfo::new(
                            CommitteeId(20_000 + k as u32),
                            s.tx_count(),
                            s.latency(),
                        );
                        TimedEvent::join(
                            iters / 10 + (k as u64) * (iters / (2 * n_joins as u64)),
                            relabeled,
                        )
                    })
                    .collect();
                let config = SeConfig {
                    gamma: 25,
                    max_iterations: iters,
                    convergence_window: 0,
                    record_every: 1,
                    ..SeConfig::paper(14_100 + ai as u64)
                };
                let online = run_online(&start, config, &events, DynamicsPolicy::Reinitialize)?;
                let mut rows = Vec::new();
                for p in downsample(online.outcome.trajectory.points(), 150) {
                    rows.push(vec![
                        format!("{alpha}"),
                        "SE-online".to_string(),
                        p.iteration.to_string(),
                        format!("{:.2}", p.current_best),
                    ]);
                }

                // Offline baselines on the final epoch (same shard
                // population).
                let mut final_shards = start.shards().to_vec();
                final_shards.extend(events.iter().map(|e| match e.kind {
                    mvcom_core::dynamics::EventKind::Join(s) => s,
                    mvcom_core::dynamics::EventKind::Leave(_) => unreachable!("joins only"),
                }));
                let final_instance = mvcom_core::problem::InstanceBuilder::new()
                    .alpha(alpha)
                    .capacity(capacity)
                    .n_min(start.n_min())
                    .shards(final_shards)
                    .build()?;
                let runs = run_all_algorithms(&final_instance, iters, 25, 14_200 + ai as u64)?;
                for r in &runs {
                    if r.name == "SE" {
                        continue; // SE is represented by its online run
                    }
                    for &(iter, u) in downsample(&r.trajectory, 150).iter() {
                        rows.push(vec![
                            format!("{alpha}"),
                            r.name.to_string(),
                            iter.to_string(),
                            format!("{u:.2}"),
                        ]);
                    }
                }
                let get = |name: &str| {
                    runs.iter()
                        .find(|r| r.name == name)
                        .map(|r| r.utility)
                        // lint: allow(P1, the sweep ran every named algorithm)
                        .expect("algorithm present")
                };
                let se_online = online.outcome.best_utility;
                let best_baseline = get("SA").max(get("DP")).max(get("WOA"));
                Ok(AlphaPoint {
                    rows,
                    verdict: (alpha, se_online, best_baseline),
                    note: format!(
                        "α={alpha}: SE-online {:.1} vs offline SA {:.1}, DP {:.1}, WOA {:.1} ({} joins applied)",
                        se_online,
                        get("SA"),
                        get("DP"),
                        get("WOA"),
                        online.events.len()
                    ),
                })
            }
        })
        .collect();
    let points = run_tasks(tasks)?;

    let mut report = FigureReport::new("fig14");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut verdicts = Vec::new();
    for point in points {
        rows.extend(point.rows);
        verdicts.push(point.verdict);
        report.note(point.note);
    }
    report.add_csv(
        "fig14.csv",
        &["alpha", "algorithm", "iteration", "utility"],
        rows,
    );
    // Shape checks (paper): converged utilities grow with α, and online SE
    // is competitive with (within 5% of) the best offline baseline — the
    // paper reports it 20–30% above its baselines.
    report.check(
        "SE-online utility grows with α",
        // lint: allow(P1, windows(2) yields slices of length 2)
        verdicts.windows(2).all(|w| w[1].1 > w[0].1),
    );
    report.check(
        "SE-online within 5% of (or above) the best offline baseline",
        verdicts
            .iter()
            .all(|&(_, se, base)| se >= base - 0.05 * base.abs().max(1.0)),
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_passes_shape_checks() {
        let report = run(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
    }
}
