//! `fig_adv` — the adversarial utility/safety frontier (no paper
//! counterpart; see DESIGN.md §10).
//!
//! Sweeps adversarial fraction ∈ {0, 0.05, 0.1, 0.2, 0.33} for each
//! strategy (`misreport`, `freerider`, `starver`) over a stable
//! [`StrategicPopulation`], and runs three scheduler arms per point:
//!
//! * **reference** — the same population with nobody lying; its realized
//!   honest utility normalizes everything else.
//! * **defense on** — reports screened through
//!   [`mvcom_core::DefenseEngine`] before the SE scheduler sees them.
//! * **defense off** — the SE scheduler consumes the raw claims.
//!
//! Two frontier metrics per point, both computed from ground truth (what
//! committees actually deliver), never from claims:
//!
//! * **honest-utility capture** — realized utility summed over *admitted
//!   honest* committees, divided by the reference arm's figure;
//! * **starvation rate** — fraction of epochs in which fewer than half of
//!   the honest committees were admitted (the Starver's objective is to
//!   push rivals below `N_min`).
//!
//! Every seed derives from the sweep point, so the parallel fan-out
//! merges byte-identically to the serial run at any thread count.

use std::collections::BTreeSet;

use mvcom_core::defense::{DefenseConfig, DefenseEngine, DefenseObservation};
use mvcom_core::problem::InstanceBuilder;
use mvcom_core::se::{SeConfig, SeEngine};
use mvcom_dataset::StrategicPopulation;
use mvcom_dataset::{build_adversary, Adversary, AdversaryConfig, CommitteeReport};
use mvcom_obs::{Obs, ObsLevel, Value};
use mvcom_types::{CommitteeId, Result};

use crate::harness::{downsample_events_jsonl, run_tasks, FigureReport, Scale, MAX_EVENT_LINES};

const STRATEGIES: &[&str] = &["misreport", "freerider", "starver"];
const FRACTIONS: &[f64] = &[0.0, 0.05, 0.1, 0.2, 0.33];
/// Middle of Fig. 12's α sweep. At α = 1.5 the realized utility of a
/// committee is dominated by the Exp(600 s) formation-latency spread, so
/// the reference arm's total — the capture ratio's denominator — sits
/// near zero and the ratio is ill-conditioned; at α = 5 the size term
/// dominates and every arm settles on a solidly positive total.
const ALPHA: f64 = 5.0;
const CAPACITY_PER_COMMITTEE: u64 = 1_000;

/// What one arm of one sweep point produced.
struct ArmOutcome {
    /// Σ realized utility of admitted honest committees, over all epochs.
    honest_utility: f64,
    /// Epochs in which honest admissions fell below half the honest roster.
    starved_epochs: usize,
    /// Mean admitted adversarial committees per epoch.
    adv_admitted_mean: f64,
}

/// One (strategy, fraction) sweep point.
struct AdvPoint {
    fraction: f64,
    capture_on: f64,
    capture_off: f64,
    starve_on: f64,
    starve_off: f64,
    rows: Vec<Vec<String>>,
    note: String,
    events: Option<String>,
}

/// Realized (ground-truth) utility of the admitted set, the honest share
/// of it, and the honest-admission count. The deadline is the max *true*
/// latency over the **admitted** set — the final committee waits for the
/// slowest sub-block it scheduled, not for excluded shards — so admitting
/// a freerider taxes every admitted committee's `(t − l)` term, and
/// quarantining one lifts that tax.
fn settle_epoch(
    reports: &[CommitteeReport],
    admitted: &BTreeSet<CommitteeId>,
) -> (f64, usize, usize) {
    let t = reports
        .iter()
        .filter(|r| admitted.contains(&r.committee()))
        .map(|r| r.truth.two_phase_latency().as_secs())
        .fold(0.0f64, f64::max);
    let mut honest_utility = 0.0;
    let mut honest_admitted = 0;
    let mut adv_admitted = 0;
    for r in reports {
        if !admitted.contains(&r.committee()) {
            continue;
        }
        if r.adversarial {
            adv_admitted += 1;
        } else {
            let l = r.truth.two_phase_latency().as_secs();
            honest_utility += ALPHA * r.truth.tx_count() as f64 - (t - l);
            honest_admitted += 1;
        }
    }
    (honest_utility, honest_admitted, adv_admitted)
}

/// Runs one arm: `epochs` epochs of report → (screen) → SE schedule →
/// settle-on-truth → (defense feedback).
fn run_arm(
    population: &StrategicPopulation,
    adversary: &dyn Adversary,
    defense: bool,
    epochs: u64,
    se_base: SeConfig,
    obs: Option<Obs>,
) -> Result<ArmOutcome> {
    let obs_handle = obs.unwrap_or_else(Obs::off);
    let mut engine = if defense {
        Some(DefenseEngine::new(DefenseConfig::paper())?.with_obs(obs_handle.clone()))
    } else {
        None
    };
    let mut honest_utility = 0.0;
    let mut starved_epochs = 0;
    let mut adv_admitted_total = 0usize;
    for epoch in 0..epochs {
        let reports = population.epoch_reports(epoch, adversary);
        for r in &reports {
            if r.adversarial {
                obs_handle.emit(
                    "adversary_act",
                    epoch as f64,
                    &[
                        ("committee", Value::U64(u64::from(r.committee().value()))),
                        ("epoch", Value::U64(epoch)),
                        ("strategy", Value::from(adversary.name())),
                        ("ds", Value::F64(r.ds())),
                        ("dl", Value::F64(r.dl())),
                    ],
                );
            }
        }
        let honest_total = reports.iter().filter(|r| !r.adversarial).count();
        let reported: Vec<_> = reports.iter().map(|r| r.reported).collect();
        let n_min = reported.len() / 2;
        let candidates = match &mut engine {
            Some(engine) => engine.admissible(epoch, &reported, n_min),
            None => reported,
        };
        let capacity = CAPACITY_PER_COMMITTEE * population.committees().len() as u64;
        let se = SeConfig {
            seed: se_base.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..se_base
        };
        // Degenerate epochs (infeasible knapsack) degrade to admit-all,
        // exactly like `SeSelector` does inside Elastico.
        let admitted: BTreeSet<CommitteeId> = match InstanceBuilder::new()
            .alpha(ALPHA)
            .capacity(capacity)
            .n_min(n_min.min(candidates.len()))
            .shards(candidates.clone())
            .build()
            .and_then(|instance| {
                let outcome = SeEngine::new(&instance, se)?.run();
                Ok(outcome
                    .best_solution
                    .iter_selected()
                    .map(|i| instance.shards()[i].committee())
                    .collect())
            }) {
            Ok(set) => set,
            Err(_) => candidates.iter().map(|s| s.committee()).collect(),
        };
        let (utility, honest_admitted, adv_admitted) = settle_epoch(&reports, &admitted);
        honest_utility += utility;
        adv_admitted_total += adv_admitted;
        if honest_admitted * 2 < honest_total {
            starved_epochs += 1;
        }
        if let Some(engine) = &mut engine {
            let observations: Vec<DefenseObservation> = reports
                .iter()
                .map(|r| DefenseObservation {
                    committee: r.committee(),
                    reported_size: r.reported.tx_count(),
                    reported_latency: r.reported.two_phase_latency(),
                    observed_latency: r.truth.two_phase_latency(),
                    observed_size: admitted
                        .contains(&r.committee())
                        .then_some(r.truth.tx_count()),
                })
                .collect();
            engine.end_epoch(epoch, &observations);
        }
    }
    Ok(ArmOutcome {
        honest_utility,
        starved_epochs,
        adv_admitted_mean: adv_admitted_total as f64 / epochs as f64,
    })
}

/// Runs the adversarial frontier sweep.
pub fn run(scale: Scale) -> Result<FigureReport> {
    let committees = scale.committees(40);
    let epochs: u64 = match scale {
        Scale::Full => 10,
        Scale::Quick => 4,
    };
    let se_base = SeConfig {
        gamma: match scale {
            Scale::Full => 4,
            Scale::Quick => 2,
        },
        max_iterations: scale.iters(600),
        convergence_window: scale.iters(600) / 2,
        ..SeConfig::paper(0)
    };
    let points: Vec<(usize, &'static str, f64)> = STRATEGIES
        .iter()
        .flat_map(|&s| FRACTIONS.iter().map(move |&f| (s, f)))
        .enumerate()
        .map(|(i, (s, f))| (i, s, f))
        .collect();
    let tasks: Vec<_> = points
        .into_iter()
        .map(|(i, strategy, fraction)| {
            move || -> Result<AdvPoint> {
                let seed = 15_000 + i as u64;
                let population = StrategicPopulation::new(committees, seed);
                let adversary = build_adversary(strategy, AdversaryConfig::new(fraction, seed)?)?;
                let none = build_adversary(strategy, AdversaryConfig::new(0.0, seed)?)?;
                let se = SeConfig { seed, ..se_base };
                // The densest adversarial point of the starver sweep keeps
                // its telemetry as the figure's event artifact.
                let keep_events = strategy == "starver" && fraction >= 0.33;
                let buffer = keep_events.then(|| Obs::memory(ObsLevel::Events));
                let reference = run_arm(&population, none.as_ref(), false, epochs, se, None)?;
                let on = run_arm(
                    &population,
                    adversary.as_ref(),
                    true,
                    epochs,
                    se,
                    buffer.as_ref().map(|(obs, _)| obs.clone()),
                )?;
                let off = run_arm(&population, adversary.as_ref(), false, epochs, se, None)?;
                let events = buffer.map(|(obs, buf)| {
                    obs.flush();
                    downsample_events_jsonl(&buf.contents(), MAX_EVENT_LINES)
                });
                let norm = reference.honest_utility.abs().max(f64::EPSILON);
                let capture = |arm: &ArmOutcome| arm.honest_utility / norm;
                let starve = |arm: &ArmOutcome| arm.starved_epochs as f64 / epochs as f64;
                let mut rows = Vec::new();
                for (arm, label) in [(&on, "on"), (&off, "off")] {
                    rows.push(vec![
                        strategy.to_string(),
                        format!("{fraction:.2}"),
                        label.to_string(),
                        format!("{:.6}", capture(arm)),
                        format!("{:.4}", starve(arm)),
                        format!("{:.3}", arm.adv_admitted_mean),
                    ]);
                }
                let note = format!(
                    "{strategy} f={fraction:.2}: capture on {:.3} / off {:.3}, \
                     starvation on {:.2} / off {:.2}",
                    capture(&on),
                    capture(&off),
                    starve(&on),
                    starve(&off),
                );
                Ok(AdvPoint {
                    fraction,
                    capture_on: capture(&on),
                    capture_off: capture(&off),
                    starve_on: starve(&on),
                    starve_off: starve(&off),
                    rows,
                    note,
                    events,
                })
            }
        })
        .collect();
    let points = run_tasks(tasks)?;

    let mut report = FigureReport::new("fig_adv");
    let mut rows = Vec::new();
    for point in &points {
        rows.extend(point.rows.clone());
        report.note(point.note.clone());
        if let Some(events) = &point.events {
            report
                .files
                .push(("fig_adv.events.jsonl".to_string(), events.clone()));
        }
    }
    report.add_csv(
        "fig_adv.csv",
        &[
            "strategy",
            "fraction",
            "defense",
            "honest_capture",
            "starvation_rate",
            "adv_admitted_mean",
        ],
        rows,
    );
    // Shape checks.
    report.check(
        "fraction-0 arms are exactly the honest reference (capture = 1, no starvation)",
        points.iter().filter(|p| p.fraction.abs() < 1e-9).all(|p| {
            (p.capture_on - 1.0).abs() < 1e-12
                && (p.capture_off - 1.0).abs() < 1e-12
                && p.starve_on.abs() < 1e-12
                && p.starve_off.abs() < 1e-12
        }),
    );
    report.check(
        "capture and starvation stay in sane ranges at every point",
        points.iter().all(|p| {
            p.capture_on.is_finite()
                && p.capture_off.is_finite()
                && (-0.5..=1.5).contains(&p.capture_on)
                && (-0.5..=1.5).contains(&p.capture_off)
                && (0.0..=1.0).contains(&p.starve_on)
                && (0.0..=1.0).contains(&p.starve_off)
        }),
    );
    let margin_at = |fraction: f64| {
        let at: Vec<_> = points
            .iter()
            .filter(|p| (p.fraction - fraction).abs() < 1e-9)
            .collect();
        let mean_on = at.iter().map(|p| p.capture_on).sum::<f64>() / at.len().max(1) as f64;
        let mean_off = at.iter().map(|p| p.capture_off).sum::<f64>() / at.len().max(1) as f64;
        mean_on - mean_off
    };
    let margin = margin_at(0.2);
    report.note(format!(
        "defense margin (mean capture on − off) at fraction 0.2: {margin:+.4}; \
         at 0.33: {:+.4}",
        margin_at(0.33)
    ));
    report.check(
        "defenses on beat defenses off on mean honest capture at fraction 0.2",
        margin > 0.0,
    );
    // The Starver aims honest committees below N_min; on balance the
    // defense must not starve *more* than no defense does. (Point-wise
    // comparison is too brittle at Quick scale, where one false-positive
    // flag flips a whole epoch.)
    let mean_starve = |pick: fn(&AdvPoint) -> f64| {
        points.iter().map(pick).sum::<f64>() / points.len().max(1) as f64
    };
    report.check(
        "defense does not increase mean starvation across the sweep",
        mean_starve(|p| p.starve_on) <= mean_starve(|p| p.starve_off) + 1e-9,
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_passes_shape_checks() {
        let report = run(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
        assert!(report
            .files
            .iter()
            .any(|(path, _)| path == "fig_adv.events.jsonl"));
    }
}
