//! Fig. 9 — dynamic event handling.
//!
//! (a) a committee leaves (fails) and later rejoins (|I_j| = 50, Ĉ = 40K);
//! (b) committees join consecutively (|I_j| = 100, Ĉ = 80K).
//! Both with α = 1.5 and Γ = 1, as in the paper.

use mvcom_core::dynamics::{run_online, DynamicsPolicy, TimedEvent};
use mvcom_core::se::SeConfig;
use mvcom_types::{CommitteeId, Result, ShardInfo};

use crate::harness::{downsample, paper_instance, FigureReport, Scale};

fn se_config(iters: u64, seed: u64) -> SeConfig {
    SeConfig {
        gamma: 1,
        max_iterations: iters,
        convergence_window: 0,
        record_every: 1,
        ..SeConfig::paper(seed)
    }
}

/// Fig. 9(a): leave at 1/3 of the budget, rejoin at 2/3.
pub fn fig9a(scale: Scale) -> Result<FigureReport> {
    let n = scale.committees(50);
    let capacity = 800 * n as u64; // Ĉ = 40K at n = 50
    let iters = scale.iters(1_500);
    let instance = paper_instance(n, capacity, 1.5, 9_000)?;
    let victim = instance.shards()[n / 2].committee();
    let victim_shard = instance.shards()[n / 2];
    let events = vec![
        TimedEvent::leave(iters / 3, victim),
        TimedEvent::join(2 * iters / 3, victim_shard),
    ];
    let online = run_online(
        &instance,
        se_config(iters, 9_001),
        &events,
        DynamicsPolicy::Trim,
    )?;

    let mut report = FigureReport::new("fig9a");
    let points = downsample(online.outcome.trajectory.points(), 400);
    report.add_csv(
        "fig9a.csv",
        &["iteration", "utility"],
        points
            .iter()
            .map(|p| vec![p.iteration as f64, p.current_best]),
    );
    report.add_csv(
        "fig9a_events.csv",
        &["iteration", "kind", "utility_before", "utility_after"],
        online.events.iter().map(|e| {
            vec![
                e.at_iteration.to_string(),
                if e.is_join { "join" } else { "leave" }.to_string(),
                format!("{:.2}", e.utility_before),
                format!("{:.2}", e.utility_after),
            ]
        }),
    );
    // lint: allow(P1, the scenario schedules a leave then a rejoin)
    let leave = &online.events[0];
    // lint: allow(P1, the scenario schedules a leave then a rejoin)
    let rejoin = &online.events[1];
    report.note(format!(
        "leave @ {}: {:.1} → {:.1}; rejoin @ {}: {:.1} → {:.1}; final {:.1}",
        leave.at_iteration,
        leave.utility_before,
        leave.utility_after,
        rejoin.at_iteration,
        rejoin.utility_before,
        rejoin.utility_after,
        online.outcome.best_utility
    ));
    // Shape checks (paper): the leave perturbs the utility noticeably and
    // SE re-converges to a good solution afterwards.
    report.check(
        "the leaving event perturbs the utility",
        (leave.utility_before - leave.utility_after).abs() > 0.0,
    );
    let scale_abs = leave.utility_before.abs().max(1.0);
    report.check(
        "SE recovers after the rejoin (final within 10% of pre-failure best)",
        online.outcome.best_utility >= leave.utility_before - 0.10 * scale_abs,
    );
    Ok(report)
}

/// Fig. 9(b): consecutive joins growing the epoch to |I_j| = 100.
pub fn fig9b(scale: Scale) -> Result<FigureReport> {
    let n_final = scale.committees(100);
    let n_joins = (n_final / 5).max(2);
    let n_start = n_final - n_joins;
    let capacity = 800 * n_final as u64; // Ĉ = 80K at |I| = 100
    let iters = scale.iters(2_000);
    let instance = paper_instance(n_start, capacity, 1.5, 9_100)?;
    // Joining committees sampled from the same generative model.
    let donor = paper_instance(n_joins, capacity, 1.5, 9_101)?;
    let events: Vec<TimedEvent> = donor
        .shards()
        .iter()
        .enumerate()
        .map(|(k, s)| {
            let relabeled =
                ShardInfo::new(CommitteeId(10_000 + k as u32), s.tx_count(), s.latency());
            TimedEvent::join(
                iters / 4 + (k as u64) * (iters / (2 * n_joins as u64)),
                relabeled,
            )
        })
        .collect();
    let online = run_online(
        &instance,
        se_config(iters, 9_102),
        &events,
        DynamicsPolicy::Reinitialize,
    )?;

    let mut report = FigureReport::new("fig9b");
    let points = downsample(online.outcome.trajectory.points(), 400);
    report.add_csv(
        "fig9b.csv",
        &["iteration", "utility"],
        points
            .iter()
            .map(|p| vec![p.iteration as f64, p.current_best]),
    );
    report.note(format!(
        "{} joins applied; epoch grew {} → {}; final utility {:.1}",
        online.events.len(),
        n_start,
        online.outcome.best_solution.len(),
        online.outcome.best_utility
    ));
    report.check(
        "every join event was applied",
        online.events.len() == n_joins && online.events.iter().all(|e| e.is_join),
    );
    report.check(
        "the epoch grew to the target size",
        online.outcome.best_solution.len() == n_final,
    );
    // Utilities are only comparable within one epoch shape (each join
    // changes the deadline), so the recovery check compares the final
    // converged utility against the restart point right after the *last*
    // join — the paper's "SE can converge to the maximum in the first few
    // hundreds of iterations when each new committee joins in".
    // lint: allow(P1, the join schedule is non-empty, so events were applied)
    let last_event = online.events.last().expect("events applied");
    report.check(
        "SE converges above the post-join restart utility",
        online.outcome.best_utility >= last_event.utility_after,
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_quick_passes_shape_checks() {
        let report = fig9a(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
    }

    #[test]
    fn fig9b_quick_passes_shape_checks() {
        let report = fig9b(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
    }
}
