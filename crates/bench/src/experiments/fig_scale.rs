//! fig-scale — the fig11-shaped sweep extended to the 10⁴–10⁵ committee
//! regime (ROADMAP open item 2): SE against the sparse DP and greedy
//! baselines over [`streamed_instance`]s.
//!
//! SA and WOA are deliberately absent: their per-iteration cost is
//! `O(population·|I|)`, which at `|I| = 10⁵` is minutes per point without
//! adding information — the near-exact one-shot baselines already anchor
//! the achievable utility. The sparse DP runs with a wider bucket budget
//! than the small-|I| figures (`max_buckets = 4096`): at `Ĉ = 1000·|I|`
//! the paper's 512 buckets would quantize every ~1089-TX shard up to a
//! full bucket, capping the pre-repair selection at 512 shards.

use mvcom_baselines::dp::DpConfig;
use mvcom_baselines::{GreedySolver, Solver, SparseDpSolver};
use mvcom_core::se::{SeConfig, SeEngine};
use mvcom_types::Result;

use crate::harness::{
    downsample, run_tasks, runs_as_events, streamed_instance, AlgoRun, FigureReport, Scale,
};

/// Sparse-DP bucket budget for the scale regime (see module docs).
const SCALE_BUCKETS: usize = 4_096;

/// One |I| point's products, merged into the report in sweep order.
struct SizePoint {
    rows: Vec<Vec<String>>,
    events: Option<String>,
    stats: (usize, f64, f64, f64, f64),
    feasible: bool,
    note: String,
}

/// Runs the scale sweep.
pub fn run(scale: Scale) -> Result<FigureReport> {
    let sizes: Vec<usize> = match scale {
        Scale::Full => vec![10_000, 50_000, 100_000],
        Scale::Quick => vec![5_000, 20_000],
    };
    let iters = scale.iters(3_000);
    // One task per |I|: seeds derive from the sweep index, so the
    // parallel fan-out merges byte-identically to the serial loop.
    let last = sizes.len() - 1;
    let tasks: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            move || -> Result<SizePoint> {
                let instance = streamed_instance(n, 1_000 * n as u64, 1.5, 21_000 + i as u64)?;
                let mut runs = Vec::with_capacity(3);
                // max_chains = 4: Algorithm 2's one-chain-per-cardinality
                // family is O(|I|) wide here, and each chain carries an
                // O(|I|) evaluation cache — four strided cardinalities per
                // replica keep the family anchored at both feasibility
                // endpoints within ~150 MB at |I| = 10⁵.
                let se_config = SeConfig {
                    gamma: 10,
                    max_iterations: iters,
                    convergence_window: 0,
                    record_every: 1,
                    max_chains: 4,
                    ..SeConfig::paper(21_100 + i as u64)
                };
                let se = SeEngine::new(&instance, se_config)?.run();
                let se_start = se
                    .trajectory
                    .points()
                    .first()
                    .map(|p| p.best_so_far)
                    .unwrap_or(0.0);
                runs.push(AlgoRun {
                    name: "SE",
                    utility: se.best_utility,
                    solution: se.best_solution,
                    trajectory: se
                        .trajectory
                        .points()
                        .iter()
                        .map(|p| (p.iteration, p.best_so_far))
                        .collect(),
                });
                let sdp = SparseDpSolver::new(DpConfig {
                    max_buckets: SCALE_BUCKETS,
                })
                .solve(&instance)?;
                runs.push(AlgoRun {
                    name: "SDP",
                    utility: sdp.best_utility,
                    solution: sdp.best_solution,
                    trajectory: vec![(0, sdp.best_utility), (iters, sdp.best_utility)],
                });
                let greedy = GreedySolver::new().solve(&instance)?;
                runs.push(AlgoRun {
                    name: "Greedy",
                    utility: greedy.best_utility,
                    solution: greedy.best_solution,
                    trajectory: vec![(0, greedy.best_utility), (iters, greedy.best_utility)],
                });
                let events = (i == last).then(|| runs_as_events(&runs, 150));
                let mut rows = Vec::new();
                for r in &runs {
                    for &(iter, u) in downsample(&r.trajectory, 150).iter() {
                        rows.push(vec![
                            n.to_string(),
                            r.name.to_string(),
                            iter.to_string(),
                            format!("{u:.2}"),
                        ]);
                    }
                }
                let se_u = runs[0].utility; // lint: allow(P1, runs is built above with exactly three entries)
                let sdp_u = runs[1].utility; // lint: allow(P1, runs is built above with exactly three entries)
                let greedy_u = runs[2].utility; // lint: allow(P1, runs is built above with exactly three entries)
                let feasible = runs.iter().all(|r| instance.is_feasible(&r.solution));
                Ok(SizePoint {
                    rows,
                    events,
                    stats: (n, se_u, sdp_u, greedy_u, se_start),
                    feasible,
                    note: format!(
                        "|I|={n}: SE {se_u:.1} (from {se_start:.1}), SDP {sdp_u:.1}, \
                         Greedy {greedy_u:.1}"
                    ),
                })
            }
        })
        .collect();
    let points = run_tasks(tasks)?;

    let mut report = FigureReport::new("fig_scale");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut stats = Vec::new();
    let mut all_feasible = true;
    for point in points {
        if let Some(events) = point.events {
            report
                .files
                .push(("fig_scale.events.jsonl".to_string(), events));
        }
        rows.extend(point.rows);
        stats.push(point.stats);
        all_feasible &= point.feasible;
        report.note(point.note);
    }
    report.add_csv(
        "fig_scale.csv",
        &["committees", "algorithm", "iteration", "utility"],
        rows,
    );
    // Shape checks, calibrated for the scale regime: with a fixed
    // iteration budget SE is an anytime algorithm that cannot fully
    // converge at |I| = 10⁵ (the paper stops at 10³), and the streamed
    // trace's latency penalty dominates the raw utility (it goes
    // negative — the *ordering* is what carries information). The robust
    // claims are (a) every solver returns a capacity-feasible selection
    // at every size, (b) SE improves on its initialization everywhere,
    // and (c) the one-shot baselines scale: greedy — asymptotically
    // optimal for this dense-small-items knapsack — never collapses
    // below the bucket-quantized sparse DP.
    report.check(
        "every solver returns a capacity-feasible selection at every |I|",
        all_feasible,
    );
    report.check(
        "SE improves on its initialization at every |I|",
        stats.iter().all(|&(_, se, _, _, start)| se > start),
    );
    report.check(
        "greedy stays at or above the bucket-quantized sparse DP at scale",
        stats
            .iter()
            .all(|&(_, _, sdp, greedy, _)| greedy >= sdp - 1e-9),
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_passes_shape_checks() {
        let report = run(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
    }
}
