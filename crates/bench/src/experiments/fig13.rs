//! Fig. 13 — the *distribution* of converged utilities over repeated runs,
//! for α ∈ {1.5, 5, 10} (|I_j| = 50, Ĉ = 50K, Γ = 25).

use mvcom_simnet::stats::Ecdf;
use mvcom_types::Result;

use crate::experiments::fig12::ALPHAS;
use crate::harness::{paper_instance, run_all_algorithms, FigureReport, Scale};

/// Runs the repeated-runs distribution experiment.
pub fn run(scale: Scale) -> Result<FigureReport> {
    let n = scale.committees(50).max(20);
    let capacity = 1_000 * n as u64;
    let iters = scale.iters(2_000);
    let reps = scale.reps(16);
    let mut report = FigureReport::new("fig13");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut medians: Vec<(f64, f64, f64)> = Vec::new(); // (alpha, SE median, best baseline median)
    for (ai, &alpha) in ALPHAS.iter().enumerate() {
        let instance = paper_instance(n, capacity, alpha, 13_000 + ai as u64)?;
        let mut samples: std::collections::BTreeMap<&'static str, Vec<f64>> =
            std::collections::BTreeMap::new();
        for rep in 0..reps {
            let seed = 13_100 + (ai * 1_000 + rep) as u64;
            for r in run_all_algorithms(&instance, iters, 25, seed)? {
                samples.entry(r.name).or_default().push(r.utility);
            }
        }
        for (name, values) in &samples {
            let cdf = Ecdf::from_samples(values.clone());
            rows.push(vec![
                format!("{alpha}"),
                (*name).to_string(),
                format!("{:.2}", cdf.quantile(0.0)),
                format!("{:.2}", cdf.quantile(0.25)),
                format!("{:.2}", cdf.quantile(0.5)),
                format!("{:.2}", cdf.quantile(0.75)),
                format!("{:.2}", cdf.quantile(1.0)),
            ]);
            report.note(format!(
                "α={alpha} {name}: median {:.1} (IQR {:.1}–{:.1}) over {} runs",
                cdf.quantile(0.5),
                cdf.quantile(0.25),
                cdf.quantile(0.75),
                cdf.len()
            ));
        }
        let median = |name: &str| Ecdf::from_samples(samples[name].clone()).quantile(0.5);
        let best_baseline = median("SA").max(median("DP")).max(median("WOA"));
        medians.push((alpha, median("SE"), best_baseline));
    }
    report.add_csv(
        "fig13.csv",
        &["alpha", "algorithm", "min", "q25", "median", "q75", "max"],
        rows,
    );
    // Shape checks (paper): the SE distribution dominates the baselines'
    // and shifts upward with α.
    report.check(
        "SE median at or above the best baseline median for every α",
        medians.iter().all(|&(_, se, base)| se >= base - 1e-9),
    );
    report.check(
        "SE median grows with α",
        // lint: allow(P1, windows(2) yields slices of length 2)
        medians.windows(2).all(|w| w[1].1 > w[0].1),
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_passes_shape_checks() {
        let report = run(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
    }
}
