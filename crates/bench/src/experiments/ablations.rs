//! Ablations of the design choices DESIGN.md calls out — beyond the
//! paper's own figures.
//!
//! * `ablation-ddl` — the paper's constant MaxArrival deadline (eq. (1))
//!   vs the MaxSelected extension where admitting a straggler raises
//!   everyone's age (the §I motivating dilemma taken literally).
//! * `ablation-dynamics` — Trim (keep exploring the §V trimmed solution
//!   space) vs Reinitialize (Alg. 1's literal restart) after a committee
//!   failure: perturbation depth and recovery speed.

use mvcom_core::dynamics::{run_online, DynamicsPolicy, TimedEvent};
use mvcom_core::problem::{DdlPolicy, InstanceBuilder};
use mvcom_core::se::{SeConfig, SeEngine};
use mvcom_types::Result;

use crate::harness::{downsample, paper_instance, FigureReport, Scale};

/// MaxArrival vs MaxSelected deadline semantics.
pub fn ddl(scale: Scale) -> Result<FigureReport> {
    let n = scale.committees(50).max(20);
    let capacity = 1_000 * n as u64;
    let iters = scale.iters(2_000);
    let base = paper_instance(n, capacity, 1.5, 30_000)?;

    let mut report = FigureReport::new("ablation-ddl");
    let mut rows = Vec::new();
    for policy in [DdlPolicy::MaxArrival, DdlPolicy::MaxSelected] {
        let instance = InstanceBuilder::new()
            .alpha(1.5)
            .capacity(capacity)
            .n_min(n / 2)
            .ddl_policy(policy)
            .shards(base.shards().to_vec())
            .build()?;
        let config = SeConfig {
            gamma: 10,
            max_iterations: iters,
            convergence_window: 0,
            ..SeConfig::paper(30_001)
        };
        let started = std::time::Instant::now();
        let outcome = SeEngine::new(&instance, config)?.run();
        let elapsed = started.elapsed().as_secs_f64();
        // Evaluate both schedules under MaxSelected semantics for an
        // apples-to-apples block-formation comparison: what deadline does
        // the chosen set actually induce?
        let induced_ddl = instance.selected_ddl(&outcome.best_solution);
        rows.push(vec![
            format!("{policy:?}"),
            format!("{:.2}", outcome.best_utility),
            outcome.best_solution.selected_count().to_string(),
            format!("{induced_ddl:.1}"),
            format!("{elapsed:.3}"),
        ]);
        report.note(format!(
            "{policy:?}: utility {:.1}, {} admitted, induced deadline {:.0}s, {:.2}s wall",
            outcome.best_utility,
            outcome.best_solution.selected_count(),
            induced_ddl,
            elapsed
        ));
    }
    report.add_csv(
        "ablation_ddl.csv",
        &["policy", "utility", "admitted", "induced_ddl_s", "wall_s"],
        rows,
    );
    report.note(
        "MaxSelected internalizes the straggler cost: expect a smaller induced \
         deadline at similar throughput, paid for with O(n) swap deltas"
            .to_string(),
    );
    Ok(report)
}

/// Trim vs Reinitialize recovery after a mid-run failure.
pub fn dynamics(scale: Scale) -> Result<FigureReport> {
    let n = scale.committees(50).max(20);
    let capacity = 800 * n as u64;
    let iters = scale.iters(1_500);
    let instance = paper_instance(n, capacity, 1.5, 31_000)?;
    let victim = instance.shards()[n / 3].committee();
    let events = vec![TimedEvent::leave(iters / 3, victim)];

    let mut report = FigureReport::new("ablation-dynamics");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut stats = Vec::new();
    for policy in [DynamicsPolicy::Trim, DynamicsPolicy::Reinitialize] {
        let config = SeConfig {
            gamma: 4,
            max_iterations: iters,
            convergence_window: 0,
            record_every: 1,
            ..SeConfig::paper(31_001)
        };
        let online = run_online(&instance, config, &events, policy)?;
        // lint: allow(P1, the ablation schedules exactly one reconfiguration event)
        let record = online.events[0];
        let drop = record.utility_before - record.utility_after;
        // Recovery time: iterations from the event until current_best
        // re-reaches the post-event best's 99% level.
        let target =
            online.outcome.best_utility - 0.01 * online.outcome.best_utility.abs().max(1.0);
        let recovery = online
            .outcome
            .trajectory
            .points()
            .iter()
            .find(|p| p.iteration > record.at_iteration && p.current_best >= target)
            .map(|p| p.iteration - record.at_iteration);
        for p in downsample(online.outcome.trajectory.points(), 200) {
            rows.push(vec![
                format!("{policy:?}"),
                p.iteration.to_string(),
                format!("{:.2}", p.current_best),
            ]);
        }
        report.note(format!(
            "{policy:?}: perturbation {:.1}, recovery to 99% of final in {:?} iterations, final {:.1}",
            drop, recovery, online.outcome.best_utility
        ));
        stats.push((policy, drop, recovery, online.outcome.best_utility));
    }
    report.add_csv(
        "ablation_dynamics.csv",
        &["policy", "iteration", "utility"],
        rows,
    );
    // Shape check: the warm-started Trim policy perturbs less than a full
    // reinitialization.
    // lint: allow(P1, the policy sweep pushes Trim then Reinit, in that order)
    let (trim_drop, reinit_drop) = (stats[0].1, stats[1].1);
    report.check(
        "Trim perturbs utility no more than Reinitialize",
        trim_drop <= reinit_drop + 1e-9,
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddl_ablation_reports_both_policies() {
        let report = ddl(Scale::Quick).unwrap();
        let csv = &report.files[0].1;
        assert!(csv.contains("MaxArrival"));
        assert!(csv.contains("MaxSelected"));
    }

    #[test]
    fn dynamics_ablation_passes_shape_checks() {
        let report = dynamics(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
    }
}
