//! Fig. 11 — convergence of SE / SA / DP / WOA while varying
//! |I_j| ∈ {500, 800, 1000} (Ĉ = 1000·|I_j|, α = 1.5, Γ = 10).

use mvcom_types::Result;

use crate::harness::{
    downsample, paper_instance, run_all_algorithms, run_tasks, runs_as_events, FigureReport, Scale,
};

/// One |I| point's products, merged into the report in sweep order.
struct SizePoint {
    rows: Vec<Vec<String>>,
    events: Option<String>,
    gap: (usize, f64, f64, f64, f64, f64),
    note: String,
}

/// Runs the |I_j| sweep.
pub fn run(scale: Scale) -> Result<FigureReport> {
    let sizes: Vec<usize> = match scale {
        Scale::Full => vec![500, 800, 1000],
        Scale::Quick => vec![50, 80, 100],
    };
    let iters = scale.iters(3_000);
    // One task per |I|: seeds derive from the sweep index, so the
    // parallel fan-out merges byte-identically to the serial loop.
    let last = sizes.len() - 1;
    let tasks: Vec<_> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            move || -> Result<SizePoint> {
                let instance = paper_instance(n, 1_000 * n as u64, 1.5, 11_000 + i as u64)?;
                let runs = run_all_algorithms(&instance, iters, 10, 11_100 + i as u64)?;
                // Obs event file for the largest sweep point (see
                // OBSERVABILITY.md; feed it to `obs_report` for the mixing
                // summary).
                let events = (i == last).then(|| runs_as_events(&runs, 150));
                let mut rows = Vec::new();
                for r in &runs {
                    for &(iter, u) in downsample(&r.trajectory, 150).iter() {
                        rows.push(vec![
                            n.to_string(),
                            r.name.to_string(),
                            iter.to_string(),
                            format!("{u:.2}"),
                        ]);
                    }
                }
                let get = |name: &str| {
                    runs.iter()
                        .find(|r| r.name == name)
                        .map(|r| r.utility)
                        // lint: allow(P1, the sweep ran every named algorithm)
                        .expect("algorithm present")
                };
                // Starting utility of the SE trajectory: anchors the
                // optimality gap to the scale the solvers actually traverse.
                let se_start = runs
                    .iter()
                    .find(|r| r.name == "SE")
                    .and_then(|r| r.trajectory.first())
                    .map(|&(_, u)| u)
                    .unwrap_or(0.0);
                Ok(SizePoint {
                    rows,
                    events,
                    gap: (n, get("SE"), get("SA"), get("DP"), get("WOA"), se_start),
                    note: format!(
                        "|I|={n}: SE {:.1}, SA {:.1}, DP {:.1}, WOA {:.1}",
                        get("SE"),
                        get("SA"),
                        get("DP"),
                        get("WOA")
                    ),
                })
            }
        })
        .collect();
    let points = run_tasks(tasks)?;

    let mut report = FigureReport::new("fig11");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut gaps = Vec::new();
    for point in points {
        if let Some(events) = point.events {
            report
                .files
                .push(("fig11.events.jsonl".to_string(), events));
        }
        rows.extend(point.rows);
        gaps.push(point.gap);
        report.note(point.note);
    }
    report.add_csv(
        "fig11.csv",
        &["committees", "algorithm", "iteration", "utility"],
        rows,
    );
    // Shape checks. The paper reports SE 20–30% above all baselines; our
    // DP is a near-exact knapsack on the separable objective (stronger
    // than the paper's — see EXPERIMENTS.md), so the robust shape is:
    // SE dominates its iterative peers (SA, WOA) at every size, and lands
    // within a few percent of the near-exact DP.
    report.check(
        "SE converges at or above SA and WOA at every |I|",
        gaps.iter()
            .all(|&(_, se, sa, _, woa, _)| se >= sa.max(woa) - 1e-9),
    );
    // Gap to DP is normalized by the utility span SE actually climbs
    // (start → DP), not by |DP| alone: the raw DP utility can sit near
    // zero while the climb spans tens of thousands of utility points,
    // which would make a |DP|-relative tolerance arbitrarily strict.
    // Full-scale runs at current HEAD capture ~95.4–95.6% of the climb
    // (EXPERIMENTS.md records the exact figures), so the floor is 93%.
    report.check(
        "SE captures at least 93% of the DP-achievable climb at every |I|",
        gaps.iter().all(|&(_, se, _, dp, _, se_start)| {
            let span = (dp - se_start).abs().max(1.0);
            se >= dp - 0.07 * span
        }),
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_passes_shape_checks() {
        let report = run(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
    }
}
