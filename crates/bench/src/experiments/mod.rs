//! One module per paper figure (see DESIGN.md §4 for the index).

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig8;
pub mod fig9;
pub mod fig_adv;
pub mod fig_scale;

use mvcom_types::{Error, Result};

use crate::harness::{FigureReport, Scale, MAX_EVENT_LINES};

/// All figure identifiers, in paper order, plus the extra ablations.
pub const ALL: &[&str] = &[
    "fig2a",
    "fig2b",
    "fig8",
    "fig9a",
    "fig9b",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ablation-ddl",
    "ablation-dynamics",
    "fig_adv",
    "fig_scale",
];

/// Runs one figure experiment by name.
///
/// # Errors
///
/// [`Error::InvalidConfig`] for unknown names; otherwise propagates the
/// experiment's own errors.
pub fn run(name: &str, scale: Scale) -> Result<FigureReport> {
    let mut report = dispatch(name, scale)?;
    // Artifact size guard: an emitted event stream over the cap fails the
    // figure's shape checks (experiments must downsample — see
    // `harness::downsample_events_jsonl`) so `results/` can't silently
    // accumulate 100k-line JSONL files again.
    for (path, text) in report
        .files
        .iter()
        .filter(|(path, _)| path.ends_with(".events.jsonl"))
    {
        let lines = text.lines().count();
        report.summary.push(format!(
            "[{}] event artifact {path} within the {MAX_EVENT_LINES}-line cap ({lines} lines)",
            if lines <= MAX_EVENT_LINES {
                "OK"
            } else {
                "MISMATCH"
            }
        ));
    }
    Ok(report)
}

fn dispatch(name: &str, scale: Scale) -> Result<FigureReport> {
    match name {
        "fig2a" => fig2::fig2a(scale),
        "fig2b" => fig2::fig2b(scale),
        "fig8" => fig8::run(scale),
        "fig9a" => fig9::fig9a(scale),
        "fig9b" => fig9::fig9b(scale),
        "fig10" => fig10::run(scale),
        "fig11" => fig11::run(scale),
        "fig12" => fig12::run(scale),
        "fig13" => fig13::run(scale),
        "fig14" => fig14::run(scale),
        "ablation-ddl" => ablations::ddl(scale),
        "ablation-dynamics" => ablations::dynamics(scale),
        "fig_adv" => fig_adv::run(scale),
        "fig_scale" => fig_scale::run(scale),
        other => Err(Error::invalid_config(
            "figure",
            format!("unknown figure `{other}`; expected one of {ALL:?}"),
        )),
    }
}
