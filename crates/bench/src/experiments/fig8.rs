//! Fig. 8 — SE convergence under different numbers of parallel execution
//! threads Γ (|I_j| = 500, Ĉ = 500K, α = 1.5).

use mvcom_core::se::{SeConfig, SeEngine};
use mvcom_obs::{Obs, ObsLevel};
use mvcom_types::Result;

use crate::harness::{
    downsample, downsample_events_jsonl, paper_instance, run_tasks, FigureReport, Scale,
    MAX_EVENT_LINES,
};

/// One Γ point's products, merged into the report in sweep order.
struct GammaPoint {
    gamma: usize,
    rows: Vec<Vec<f64>>,
    events: Option<String>,
    utility: f64,
}

/// Runs the Γ sweep.
pub fn run(scale: Scale) -> Result<FigureReport> {
    let n = scale.committees(500);
    let capacity = 1_000 * n as u64;
    let iters = scale.iters(3_000);
    let gammas: &[usize] = &[1, 5, 10, 15, 20, 25];
    let instance = paper_instance(n, capacity, 1.5, 8_000)?;

    // One task per Γ. Every seed is a function of the parameter point
    // alone (never of execution order), so `run_tasks` merges the fan-out
    // byte-identically to a serial sweep at any thread count.
    let instance_ref = &instance;
    let tasks: Vec<_> = gammas
        .iter()
        .map(|&gamma| {
            move || -> Result<GammaPoint> {
                let config = SeConfig {
                    gamma,
                    max_iterations: iters,
                    convergence_window: 0,
                    record_every: 1,
                    ..SeConfig::paper(8_001)
                };
                // The saturation point Γ=10 also records a live obs event
                // stream (se_init/se_point/se_improve/se_converged) next to
                // the CSV — telemetry is emission-only, so the trajectory
                // is unchanged. The stream is downsampled to the artifact
                // cap before it lands in the repo.
                let mut events = None;
                let outcome = if gamma == 10 {
                    let (obs, buf) = Obs::memory(ObsLevel::Events);
                    let outcome = SeEngine::new(instance_ref, config)?
                        .with_obs(obs.clone())
                        .run();
                    obs.flush();
                    events = Some(downsample_events_jsonl(&buf.contents(), MAX_EVENT_LINES));
                    outcome
                } else {
                    SeEngine::new(instance_ref, config)?.run()
                };
                let rows = downsample(outcome.trajectory.points(), 300)
                    .iter()
                    .map(|p| vec![gamma as f64, p.iteration as f64, p.current_best])
                    .collect();
                Ok(GammaPoint {
                    gamma,
                    rows,
                    events,
                    utility: outcome.best_utility,
                })
            }
        })
        .collect();
    let points = run_tasks(tasks)?;

    let mut report = FigureReport::new("fig8");
    let mut finals = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for point in points {
        if let Some(events) = point.events {
            report.files.push(("fig8.events.jsonl".to_string(), events));
        }
        rows.extend(point.rows);
        finals.push((point.gamma, point.utility));
        report.note(format!(
            "Γ={}: converged utility {:.1}",
            point.gamma, point.utility
        ));
    }
    report.add_csv("fig8.csv", &["gamma", "iteration", "utility"], rows);

    // Shape checks (paper): larger Γ converges to a (weakly) higher
    // utility; the benefit saturates around Γ ≈ 10.
    let at = |g: usize| {
        finals
            .iter()
            .find(|&&(gamma, _)| gamma == g)
            .map(|&(_, u)| u)
            // lint: allow(P1, the sweep covered every queried gamma)
            .expect("gamma in sweep")
    };
    let spread = at(1).abs().max(1.0);
    report.check(
        "Γ=10 converges at least as high as Γ=1",
        at(10) >= at(1) - 1e-9,
    );
    report.check(
        "benefit saturates: |U(25) − U(10)| ≤ |U(10) − U(1)| + 5% of scale",
        (at(25) - at(10)).abs() <= (at(10) - at(1)).abs() + 0.05 * spread,
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_passes_shape_checks() {
        let report = run(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
    }
}
