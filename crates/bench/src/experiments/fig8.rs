//! Fig. 8 — SE convergence under different numbers of parallel execution
//! threads Γ (|I_j| = 500, Ĉ = 500K, α = 1.5).

use mvcom_core::se::{SeConfig, SeEngine};
use mvcom_obs::{Obs, ObsLevel};
use mvcom_types::Result;

use crate::harness::{downsample, paper_instance, FigureReport, Scale};

/// Runs the Γ sweep.
pub fn run(scale: Scale) -> Result<FigureReport> {
    let n = scale.committees(500);
    let capacity = 1_000 * n as u64;
    let iters = scale.iters(3_000);
    let gammas: &[usize] = &[1, 5, 10, 15, 20, 25];
    let instance = paper_instance(n, capacity, 1.5, 8_000)?;

    let mut report = FigureReport::new("fig8");
    let mut finals = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for &gamma in gammas {
        let config = SeConfig {
            gamma,
            max_iterations: iters,
            convergence_window: 0,
            record_every: 1,
            ..SeConfig::paper(8_001)
        };
        // The saturation point Γ=10 also records a live obs event stream
        // (se_init/se_point/se_improve/se_converged) next to the CSV —
        // telemetry is emission-only, so the trajectory is unchanged.
        let outcome = if gamma == 10 {
            let (obs, buf) = Obs::memory(ObsLevel::Events);
            let outcome = SeEngine::new(&instance, config)?
                .with_obs(obs.clone())
                .run();
            obs.flush();
            report
                .files
                .push(("fig8.events.jsonl".to_string(), buf.contents()));
            outcome
        } else {
            SeEngine::new(&instance, config)?.run()
        };
        let points = downsample(outcome.trajectory.points(), 300);
        for p in &points {
            rows.push(vec![gamma as f64, p.iteration as f64, p.current_best]);
        }
        finals.push((gamma, outcome.best_utility));
        report.note(format!(
            "Γ={gamma}: converged utility {:.1}",
            outcome.best_utility
        ));
    }
    report.add_csv("fig8.csv", &["gamma", "iteration", "utility"], rows);

    // Shape checks (paper): larger Γ converges to a (weakly) higher
    // utility; the benefit saturates around Γ ≈ 10.
    let at = |g: usize| {
        finals
            .iter()
            .find(|&&(gamma, _)| gamma == g)
            .map(|&(_, u)| u)
            // lint: allow(P1, the sweep covered every queried gamma)
            .expect("gamma in sweep")
    };
    let spread = at(1).abs().max(1.0);
    report.check(
        "Γ=10 converges at least as high as Γ=1",
        at(10) >= at(1) - 1e-9,
    );
    report.check(
        "benefit saturates: |U(25) − U(10)| ≤ |U(10) − U(1)| + 5% of scale",
        (at(25) - at(10)).abs() <= (at(10) - at(1)).abs() + 0.05 * spread,
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_passes_shape_checks() {
        let report = run(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
    }
}
