//! Fig. 12 — convergence while varying the throughput weight
//! α ∈ {1.5, 5, 10} (|I_j| = 50, Ĉ = 50K, Γ = 25).

use mvcom_types::Result;

use crate::harness::{
    downsample, paper_instance, run_all_algorithms, run_tasks, FigureReport, Scale,
};

/// The α values the paper sweeps.
pub const ALPHAS: [f64; 3] = [1.5, 5.0, 10.0];

/// One α point's products, merged into the report in sweep order.
struct AlphaPoint {
    rows: Vec<Vec<String>>,
    utilities: (f64, f64, f64, f64, f64),
    note: String,
}

/// Runs the α sweep.
pub fn run(scale: Scale) -> Result<FigureReport> {
    let n = scale.committees(50).max(20);
    let capacity = 1_000 * n as u64;
    let iters = scale.iters(3_000);
    // One task per α: seeds derive from the sweep index alone, so the
    // parallel fan-out merges byte-identically to the serial loop.
    let tasks: Vec<_> = ALPHAS
        .iter()
        .enumerate()
        .map(|(i, &alpha)| {
            move || -> Result<AlphaPoint> {
                let instance = paper_instance(n, capacity, alpha, 12_000)?;
                let runs = run_all_algorithms(&instance, iters, 25, 12_100 + i as u64)?;
                let mut rows = Vec::new();
                for r in &runs {
                    for &(iter, u) in downsample(&r.trajectory, 150).iter() {
                        rows.push(vec![
                            format!("{alpha}"),
                            r.name.to_string(),
                            iter.to_string(),
                            format!("{u:.2}"),
                        ]);
                    }
                }
                let get = |name: &str| {
                    runs.iter()
                        .find(|r| r.name == name)
                        .map(|r| r.utility)
                        // lint: allow(P1, the sweep ran every named algorithm)
                        .expect("algorithm present")
                };
                Ok(AlphaPoint {
                    rows,
                    utilities: (alpha, get("SE"), get("SA"), get("DP"), get("WOA")),
                    note: format!(
                        "α={alpha}: SE {:.1}, SA {:.1}, DP {:.1}, WOA {:.1}",
                        get("SE"),
                        get("SA"),
                        get("DP"),
                        get("WOA")
                    ),
                })
            }
        })
        .collect();
    let points = run_tasks(tasks)?;

    let mut report = FigureReport::new("fig12");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut se_by_alpha = Vec::new();
    let mut all_by_alpha = Vec::new();
    for point in points {
        rows.extend(point.rows);
        se_by_alpha.push(point.utilities.1);
        all_by_alpha.push(point.utilities);
        report.note(point.note);
    }
    report.add_csv(
        "fig12.csv",
        &["alpha", "algorithm", "iteration", "utility"],
        rows,
    );
    // Shape checks (paper): utilities grow with α for every algorithm, and
    // SE stays at or above the baselines throughout the sweep.
    report.check(
        "SE utility grows with α",
        // lint: allow(P1, windows(2) yields slices of length 2)
        se_by_alpha.windows(2).all(|w| w[1] > w[0]),
    );
    report.check("every algorithm improves from α=1.5 to α=10", {
        // lint: allow(P1, the alpha sweep list is a non-empty literal)
        let first = all_by_alpha.first().expect("alphas");
        // lint: allow(P1, the alpha sweep list is a non-empty literal)
        let last = all_by_alpha.last().expect("alphas");
        last.1 > first.1 && last.2 > first.2 && last.3 > first.3 && last.4 > first.4
    });
    report.check(
        "SE at or above every baseline for every α",
        all_by_alpha
            .iter()
            .all(|&(_, se, sa, dp, woa)| se >= sa.max(dp).max(woa) - 1e-9),
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_passes_shape_checks() {
        let report = run(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
    }
}
