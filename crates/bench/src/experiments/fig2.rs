//! Fig. 2 — measured two-phase latency under Elastico.
//!
//! (a) formation vs consensus latency while scaling the network size;
//! (b) the CDFs of both latency components at a fixed size.

use mvcom_elastico::epoch::{ElasticoConfig, ElasticoSim};
use mvcom_simnet::stats::{Ecdf, Summary};
use mvcom_types::Result;

use crate::harness::{downsample, FigureReport, Scale};

const TARGET_COMMITTEE: u32 = 12;

fn collect_latencies(n_nodes: u32, epochs: usize, seed: u64) -> Result<(Vec<f64>, Vec<f64>)> {
    let mut sim = ElasticoSim::new(ElasticoConfig::with_nodes(n_nodes, TARGET_COMMITTEE), seed)?;
    let mut formation = Vec::new();
    let mut consensus = Vec::new();
    for _ in 0..epochs {
        let report = sim.run_epoch()?;
        for shard in &report.shards {
            formation.push(shard.latency().formation().as_secs());
            consensus.push(shard.latency().consensus().as_secs());
        }
    }
    Ok((formation, consensus))
}

/// Fig. 2(a): two-phase latency vs network size.
pub fn fig2a(scale: Scale) -> Result<FigureReport> {
    let sizes: Vec<u32> = match scale {
        Scale::Full => vec![100, 200, 400, 600, 800, 1000],
        Scale::Quick => vec![100, 200, 400],
    };
    let epochs = scale.reps(3);
    let mut report = FigureReport::new("fig2a");
    let mut rows = Vec::new();
    let mut means = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let (formation, consensus) = collect_latencies(n, epochs, 20_000 + i as u64)?;
        let fs: Summary = formation.iter().copied().collect();
        let cs: Summary = consensus.iter().copied().collect();
        rows.push(vec![
            n as f64,
            fs.mean(),
            fs.std_dev(),
            cs.mean(),
            cs.std_dev(),
        ]);
        means.push((n, fs.mean(), cs.mean()));
        report.note(format!(
            "n={n}: formation {:.0}±{:.0}s, consensus {:.1}±{:.1}s",
            fs.mean(),
            fs.std_dev(),
            cs.mean(),
            cs.std_dev()
        ));
    }
    report.add_csv(
        "fig2a.csv",
        &[
            "network_size",
            "formation_mean_s",
            "formation_std_s",
            "consensus_mean_s",
            "consensus_std_s",
        ],
        rows,
    );
    // Shape checks (paper): formation dominates consensus and grows
    // roughly linearly with the network size; consensus stays flat.
    // lint: allow(P1, the size sweep list is a non-empty literal)
    let first = means.first().expect("sizes non-empty");
    // lint: allow(P1, the size sweep list is a non-empty literal)
    let last = means.last().expect("sizes non-empty");
    report.check(
        "formation latency dominates consensus at every size",
        means.iter().all(|&(_, f, c)| f > c),
    );
    // The linear identity-processing slope is ~3 s/node; require at least
    // a third of it to show through the PoW max-order-statistic noise.
    let expected_growth = f64::from(last.0 - first.0);
    report.check(
        "formation latency grows with network size",
        last.1 > first.1 + expected_growth,
    );
    report.check(
        "consensus latency stays roughly flat across sizes",
        (last.2 - first.2).abs() < first.2.max(1.0),
    );
    Ok(report)
}

/// Fig. 2(b): CDFs of formation and consensus latency.
pub fn fig2b(scale: Scale) -> Result<FigureReport> {
    let n_nodes = match scale {
        Scale::Full => 600,
        Scale::Quick => 150,
    };
    let epochs = scale.reps(8);
    let (formation, consensus) = collect_latencies(n_nodes, epochs, 21_000)?;
    let f_cdf = Ecdf::from_samples(formation);
    let c_cdf = Ecdf::from_samples(consensus);

    let mut report = FigureReport::new("fig2b");
    let f_points: Vec<(f64, f64)> = downsample(&f_cdf.points().collect::<Vec<_>>(), 200);
    let c_points: Vec<(f64, f64)> = downsample(&c_cdf.points().collect::<Vec<_>>(), 200);
    report.add_csv(
        "fig2b_formation_cdf.csv",
        &["latency_s", "cdf"],
        f_points.iter().map(|&(x, y)| vec![x, y]),
    );
    report.add_csv(
        "fig2b_consensus_cdf.csv",
        &["latency_s", "cdf"],
        c_points.iter().map(|&(x, y)| vec![x, y]),
    );
    report.note(format!(
        "formation: median {:.0}s, p95 {:.0}s over {} samples",
        f_cdf.quantile(0.5),
        f_cdf.quantile(0.95),
        f_cdf.len()
    ));
    report.note(format!(
        "consensus: median {:.1}s, p95 {:.1}s over {} samples (paper mean 54.5s)",
        c_cdf.quantile(0.5),
        c_cdf.quantile(0.95),
        c_cdf.len()
    ));
    // Shape checks: both distributions spread over a bounded range rather
    // than collapsing to a point (the paper stresses their randomness).
    report.check(
        "formation latency is dispersed (p95 > 1.3 × median)",
        f_cdf.quantile(0.95) > 1.3 * f_cdf.quantile(0.5),
    );
    report.check(
        "consensus latency is dispersed (p95 > 1.3 × median)",
        c_cdf.quantile(0.95) > 1.3 * c_cdf.quantile(0.5),
    );
    report.check(
        "formation stochastically dominates consensus",
        f_cdf.quantile(0.5) > c_cdf.quantile(0.95),
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_quick_passes_shape_checks() {
        let report = fig2a(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
        assert_eq!(report.files.len(), 1);
    }

    #[test]
    fn fig2b_quick_passes_shape_checks() {
        let report = fig2b(Scale::Quick).unwrap();
        assert!(
            report.summary.iter().all(|l| !l.contains("MISMATCH")),
            "{:#?}",
            report.summary
        );
        assert_eq!(report.files.len(), 2);
    }
}
