//! Fig. 10 — the Valuable Degree `Σ x_i·s_i/Π_i` of each algorithm's
//! schedule (|I_j| = 500, Ĉ = 500K, α = 1.5, Γ = 25).

use mvcom_types::Result;

use crate::harness::{paper_instance, run_all_algorithms, FigureReport, Scale};

/// Runs the Valuable-Degree comparison.
pub fn run(scale: Scale) -> Result<FigureReport> {
    let n = scale.committees(500);
    let capacity = 1_000 * n as u64;
    let iters = scale.iters(3_000);
    let instance = paper_instance(n, capacity, 1.5, 10_000)?;
    let runs = run_all_algorithms(&instance, iters, 25, 10_001)?;

    let mut report = FigureReport::new("fig10");
    let mut rows = Vec::new();
    let mut degrees = Vec::new();
    for r in &runs {
        let vd = instance.valuable_degree(&r.solution);
        rows.push(vec![
            r.name.to_string(),
            format!("{vd:.3}"),
            format!("{:.1}", r.utility),
            r.solution.selected_count().to_string(),
        ]);
        degrees.push((r.name, vd));
        report.note(format!(
            "{}: valuable degree {vd:.2}, utility {:.1}, {} admitted",
            r.name,
            r.utility,
            r.solution.selected_count()
        ));
    }
    report.add_csv(
        "fig10.csv",
        &["algorithm", "valuable_degree", "utility", "admitted"],
        rows,
    );

    let vd = |name: &str| {
        degrees
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            // lint: allow(P1, the sweep ran every named algorithm)
            .expect("algorithm present")
    };
    // Shape checks. The paper reports SE strictly highest with DP and WOA
    // "pretty low"; our DP is a near-exact knapsack (stronger than the
    // paper's — see EXPERIMENTS.md) and ties SE to within a fraction of a
    // percent, so the robust shape is: SE at the top within a 1% tie
    // tolerance, and strictly above the metaheuristic WOA.
    report.check("SE within 1% of the highest valuable degree", {
        let best = degrees.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
        vd("SE") >= 0.99 * best
    });
    report.check("SE beats WOA on valuable degree", vd("SE") > vd("WOA"));
    report.check(
        "SA lands within 10% of SE (close runner-up)",
        vd("SA") >= 0.9 * vd("SE"),
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_runs_and_reports_all_algorithms() {
        let report = run(Scale::Quick).unwrap();
        assert_eq!(report.files.len(), 1);
        let csv = &report.files[0].1;
        for algo in ["SE", "SA", "DP", "WOA"] {
            assert!(csv.contains(algo), "{algo} missing from CSV");
        }
    }
}
