//! Dependency-free SVG charts for the regenerated figures.
//!
//! The experiments emit CSV series; this module renders them as
//! self-contained SVG files (line charts for convergence curves and CDFs,
//! bar charts with whiskers for distribution summaries) so `repro --svg`
//! produces figures a reader can open directly.

use std::fmt::Write as _;

/// One named line series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

/// One bar with optional whiskers.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Category label under the bar.
    pub label: String,
    /// Bar height in data coordinates.
    pub value: f64,
    /// Optional `(low, high)` whisker in data coordinates.
    pub whisker: Option<(f64, f64)>,
}

/// Colour cycle (colour-blind-safe Okabe–Ito palette).
const PALETTE: [&str; 6] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_LEFT: f64 = 86.0;
const MARGIN_RIGHT: f64 = 24.0;
const MARGIN_TOP: f64 = 46.0;
const MARGIN_BOTTOM: f64 = 64.0;

/// A chart under construction.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
}

impl Chart {
    /// Starts a chart with a title and axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Chart {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
        }
    }

    /// Renders a multi-series line chart.
    ///
    /// Returns `None` when every series is empty (nothing to draw).
    pub fn render_lines(&self, series: &[Series]) -> Option<String> {
        let xs: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .filter(|v| v.is_finite())
            .collect();
        let ys: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .filter(|v| v.is_finite())
            .collect();
        if xs.is_empty() || ys.is_empty() {
            return None;
        }
        let (x_min, x_max) = padded_range(&xs, 0.0);
        let (y_min, y_max) = padded_range(&ys, 0.06);
        let mut svg = self.open_svg(x_min, x_max, y_min, y_max);

        for (i, s) in series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let path: Vec<String> = s
                .points
                .iter()
                .filter(|p| p.0.is_finite() && p.1.is_finite())
                .map(|&(x, y)| {
                    format!(
                        "{:.1},{:.1}",
                        project(x, x_min, x_max, MARGIN_LEFT, WIDTH - MARGIN_RIGHT),
                        project(y, y_min, y_max, HEIGHT - MARGIN_BOTTOM, MARGIN_TOP),
                    )
                })
                .collect();
            if path.is_empty() {
                continue;
            }
            let _ = writeln!(
                svg,
                r##"<polyline fill="none" stroke="{color}" stroke-width="2" points="{}"/>"##,
                path.join(" ")
            );
            // Legend entry.
            let lx = MARGIN_LEFT + 12.0;
            let ly = MARGIN_TOP + 8.0 + 18.0 * i as f64;
            let _ = writeln!(
                svg,
                r##"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/>
<text x="{}" y="{}" font-size="12" fill="#333">{}</text>"##,
                lx + 22.0,
                lx + 28.0,
                ly + 4.0,
                escape(&s.label),
            );
        }
        svg.push_str("</svg>\n");
        Some(svg)
    }

    /// Renders a bar chart with optional whiskers.
    ///
    /// Returns `None` when `bars` is empty.
    pub fn render_bars(&self, bars: &[Bar]) -> Option<String> {
        if bars.is_empty() {
            return None;
        }
        let mut ys: Vec<f64> = bars.iter().map(|b| b.value).collect();
        for b in bars {
            if let Some((lo, hi)) = b.whisker {
                ys.push(lo);
                ys.push(hi);
            }
        }
        ys.push(0.0); // bars grow from zero
        let (y_min, y_max) = padded_range(&ys, 0.06);
        let mut svg = self.open_svg(0.0, bars.len() as f64, y_min, y_max);

        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let slot = plot_w / bars.len() as f64;
        let bar_w = slot * 0.55;
        let zero_y = project(0.0, y_min, y_max, HEIGHT - MARGIN_BOTTOM, MARGIN_TOP);
        for (i, bar) in bars.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let cx = MARGIN_LEFT + slot * (i as f64 + 0.5);
            let top = project(bar.value, y_min, y_max, HEIGHT - MARGIN_BOTTOM, MARGIN_TOP);
            let (y0, h) = if bar.value >= 0.0 {
                (top, zero_y - top)
            } else {
                (zero_y, top - zero_y)
            };
            let _ = writeln!(
                svg,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{color}" fill-opacity="0.85"/>"##,
                cx - bar_w / 2.0,
                y0,
                bar_w,
                h.max(0.5),
            );
            if let Some((lo, hi)) = bar.whisker {
                let y_lo = project(lo, y_min, y_max, HEIGHT - MARGIN_BOTTOM, MARGIN_TOP);
                let y_hi = project(hi, y_min, y_max, HEIGHT - MARGIN_BOTTOM, MARGIN_TOP);
                let _ = writeln!(
                    svg,
                    r##"<line x1="{cx:.1}" y1="{y_lo:.1}" x2="{cx:.1}" y2="{y_hi:.1}" stroke="#333" stroke-width="1.5"/>
<line x1="{:.1}" y1="{y_lo:.1}" x2="{:.1}" y2="{y_lo:.1}" stroke="#333" stroke-width="1.5"/>
<line x1="{:.1}" y1="{y_hi:.1}" x2="{:.1}" y2="{y_hi:.1}" stroke="#333" stroke-width="1.5"/>"##,
                    cx - 6.0,
                    cx + 6.0,
                    cx - 6.0,
                    cx + 6.0,
                );
            }
            let _ = writeln!(
                svg,
                r##"<text x="{cx:.1}" y="{:.1}" font-size="12" fill="#333" text-anchor="middle">{}</text>"##,
                HEIGHT - MARGIN_BOTTOM + 18.0,
                escape(&bar.label),
            );
        }
        svg.push_str("</svg>\n");
        Some(svg)
    }

    /// Opens the SVG document: background, title, axes, ticks, labels.
    fn open_svg(&self, x_min: f64, x_max: f64, y_min: f64, y_max: f64) -> String {
        let mut svg = String::with_capacity(8 * 1024);
        let _ = writeln!(
            svg,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="Helvetica, Arial, sans-serif">
<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>
<text x="{:.1}" y="26" font-size="15" font-weight="bold" fill="#111" text-anchor="middle">{}</text>"##,
            WIDTH / 2.0,
            escape(&self.title),
        );
        // Axes.
        let x0 = MARGIN_LEFT;
        let x1 = WIDTH - MARGIN_RIGHT;
        let y0 = HEIGHT - MARGIN_BOTTOM;
        let y1 = MARGIN_TOP;
        let _ = writeln!(
            svg,
            r##"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="#444"/>
<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="#444"/>"##
        );
        // Ticks (5 per axis) with grid lines.
        for k in 0..=5 {
            let f = k as f64 / 5.0;
            let xv = x_min + f * (x_max - x_min);
            let xp = x0 + f * (x1 - x0);
            let yv = y_min + f * (y_max - y_min);
            let yp = y0 - f * (y0 - y1);
            let _ = writeln!(
                svg,
                r##"<line x1="{xp:.1}" y1="{y0}" x2="{xp:.1}" y2="{y1}" stroke="#eee"/>
<text x="{xp:.1}" y="{:.1}" font-size="11" fill="#555" text-anchor="middle">{}</text>
<line x1="{x0}" y1="{yp:.1}" x2="{x1}" y2="{yp:.1}" stroke="#eee"/>
<text x="{:.1}" y="{:.1}" font-size="11" fill="#555" text-anchor="end">{}</text>"##,
                y0 + 16.0,
                fmt_tick(xv),
                x0 - 6.0,
                yp + 4.0,
                fmt_tick(yv),
            );
        }
        // Axis labels.
        let _ = writeln!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="13" fill="#222" text-anchor="middle">{}</text>
<text x="18" y="{:.1}" font-size="13" fill="#222" text-anchor="middle" transform="rotate(-90 18 {:.1})">{}</text>"##,
            (x0 + x1) / 2.0,
            HEIGHT - 18.0,
            escape(&self.x_label),
            (y0 + y1) / 2.0,
            (y0 + y1) / 2.0,
            escape(&self.y_label),
        );
        svg
    }
}

/// Projects a data value into pixel space.
fn project(v: f64, d_min: f64, d_max: f64, p_min: f64, p_max: f64) -> f64 {
    if (d_max - d_min).abs() < f64::EPSILON {
        return (p_min + p_max) / 2.0;
    }
    p_min + (v - d_min) / (d_max - d_min) * (p_max - p_min)
}

/// Min/max with a relative padding fraction.
fn padded_range(values: &[f64], pad: f64) -> (f64, f64) {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).abs().max(1e-9);
    (min - pad * span, max + pad * span)
}

/// Compact tick formatting (k/M suffixes).
fn fmt_tick(v: f64) -> String {
    let a = v.abs();
    if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e4 {
        format!("{:.0}k", v / 1e3)
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Escapes XML-special characters in labels.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Chart {
        Chart::new("Title <X&Y>", "iterations", "utility")
    }

    #[test]
    fn line_chart_renders_every_series_and_escapes_labels() {
        let series = vec![
            Series {
                label: "SE <best>".into(),
                points: (0..50).map(|i| (i as f64, (i as f64).sqrt())).collect(),
            },
            Series {
                label: "SA".into(),
                points: (0..50)
                    .map(|i| (i as f64, (i as f64).ln().max(0.0)))
                    .collect(),
            },
        ];
        let svg = chart().render_lines(&series).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("SE &lt;best&gt;"));
        assert!(svg.contains("Title &lt;X&amp;Y&gt;"));
        // Well-formed-ish: every opened tag closes.
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn empty_series_yield_none() {
        assert!(chart().render_lines(&[]).is_none());
        assert!(chart()
            .render_lines(&[Series {
                label: "x".into(),
                points: vec![]
            }])
            .is_none());
        assert!(chart().render_bars(&[]).is_none());
    }

    #[test]
    fn nan_points_are_skipped_not_rendered() {
        let series = vec![Series {
            label: "s".into(),
            points: vec![(0.0, 1.0), (1.0, f64::NAN), (2.0, 3.0)],
        }];
        let svg = chart().render_lines(&series).unwrap();
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn bar_chart_draws_bars_and_whiskers() {
        let bars = vec![
            Bar {
                label: "SE".into(),
                value: 10.0,
                whisker: Some((8.0, 12.0)),
            },
            Bar {
                label: "SA".into(),
                value: 9.0,
                whisker: None,
            },
            Bar {
                label: "DP".into(),
                value: -2.0,
                whisker: None,
            },
        ];
        let svg = chart().render_bars(&bars).unwrap();
        assert_eq!(svg.matches("<rect").count(), 1 + 3); // background + bars
        assert!(svg.contains(">SE<"));
        assert!(svg.contains(">DP<"));
        // Negative bars render below the zero line without negative heights.
        assert!(!svg.contains("height=\"-"));
    }

    #[test]
    fn constant_series_do_not_divide_by_zero() {
        let series = vec![Series {
            label: "flat".into(),
            points: vec![(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)],
        }];
        let svg = chart().render_lines(&series).unwrap();
        assert!(!svg.contains("NaN") && !svg.contains("inf"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(2_500_000.0), "2.5M");
        assert_eq!(fmt_tick(45_000.0), "45k");
        assert_eq!(fmt_tick(250.0), "250");
        assert_eq!(fmt_tick(3.25), "3.2");
        assert_eq!(fmt_tick(0.5), "0.50");
        assert_eq!(fmt_tick(-45_000.0), "-45k");
    }
}
