//! Property-based tests for the foundational types.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom_types::{CommitteeId, Hash32, ShardInfo, SimTime, TwoPhaseLatency};
use proptest::prelude::*;

fn finite_secs() -> impl Strategy<Value = f64> {
    0.0f64..1.0e12
}

proptest! {
    #[test]
    fn simtime_addition_is_commutative_and_monotone(a in finite_secs(), b in finite_secs()) {
        let x = SimTime::from_secs(a);
        let y = SimTime::from_secs(b);
        prop_assert_eq!(x + y, y + x);
        prop_assert!(x + y >= x);
        prop_assert!(x + y >= y);
    }

    #[test]
    fn simtime_saturating_sub_never_negative(a in finite_secs(), b in finite_secs()) {
        let x = SimTime::from_secs(a);
        let y = SimTime::from_secs(b);
        prop_assert!(x.saturating_sub(y) >= SimTime::ZERO);
        // Identity: (x - y) + min(x, y) == max(x, y) for the saturating form.
        let diff = x.saturating_sub(y) + y.saturating_sub(x);
        prop_assert!((diff.as_secs() - (a - b).abs()).abs() < 1e-6 * (1.0 + a + b));
    }

    #[test]
    fn simtime_ordering_matches_f64(a in finite_secs(), b in finite_secs()) {
        let x = SimTime::from_secs(a);
        let y = SimTime::from_secs(b);
        prop_assert_eq!(x < y, a < b);
        prop_assert_eq!(x.max(y).as_secs(), a.max(b));
        prop_assert_eq!(x.min(y).as_secs(), a.min(b));
    }

    #[test]
    fn two_phase_total_is_phase_sum(f in finite_secs(), c in finite_secs()) {
        let l = TwoPhaseLatency::new(SimTime::from_secs(f), SimTime::from_secs(c));
        prop_assert!((l.total().as_secs() - (f + c)).abs() < 1e-6 * (1.0 + f + c));
    }

    #[test]
    fn carry_over_conserves_clamped_total(f in finite_secs(), c in finite_secs(), d in finite_secs()) {
        let l = TwoPhaseLatency::new(SimTime::from_secs(f), SimTime::from_secs(c));
        let carried = l.carried_over(SimTime::from_secs(d));
        let expected = (f + c - d).max(0.0);
        prop_assert!(
            (carried.total().as_secs() - expected).abs() < 1e-6 * (1.0 + f + c + d),
            "carry-over total {} vs expected {expected}", carried.total().as_secs()
        );
        // Components remain non-negative.
        prop_assert!(carried.formation() >= SimTime::ZERO);
        prop_assert!(carried.consensus() >= SimTime::ZERO);
    }

    #[test]
    fn shard_carry_over_preserves_identity_and_size(
        txs in 1u64..1_000_000,
        lat in finite_secs(),
        ddl in finite_secs(),
    ) {
        let s = ShardInfo::new(
            CommitteeId(7),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(lat)),
        );
        let c = s.carried_over(SimTime::from_secs(ddl));
        prop_assert_eq!(c.committee(), s.committee());
        prop_assert_eq!(c.tx_count(), s.tx_count());
        prop_assert!(c.two_phase_latency() <= s.two_phase_latency());
    }

    #[test]
    fn hash_digest_is_deterministic_and_input_sensitive(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let h1 = Hash32::digest(&data);
        let h2 = Hash32::digest(&data);
        prop_assert_eq!(h1, h2);
        // Flipping any single byte changes the digest.
        if !data.is_empty() {
            let mut mutated = data.clone();
            mutated[0] ^= 1;
            prop_assert_ne!(h1, Hash32::digest(&mutated));
        }
        prop_assert_eq!(h1.to_hex().len(), 64);
    }

    #[test]
    fn hash_leading_zero_bits_within_range(v in any::<u64>()) {
        let bits = Hash32::digest_u64(v).leading_zero_bits();
        prop_assert!(bits <= 256);
    }
}
