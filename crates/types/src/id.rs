//! Newtype identifiers for the entities of a sharded blockchain.
//!
//! Each identifier wraps a primitive integer but is a distinct type, so a
//! [`NodeId`] can never be confused with a [`CommitteeId`] at compile time
//! (C-NEWTYPE). All identifiers are cheap `Copy` types ordered by their
//! numeric value.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw numeric value of this identifier.
            #[inline]
            pub const fn value(self) -> $inner {
                self.0
            }

            /// Returns the identifier as a `usize` index, for dense tables.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(value: $inner) -> Self {
                Self(value)
            }
        }

        impl From<$name> for $inner {
            #[inline]
            fn from(id: $name) -> Self {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a single blockchain node (a miner / processor).
    NodeId,
    u32,
    "node-"
);

define_id!(
    /// Identifier of a committee — a PoW-elected group of nodes that runs
    /// intra-committee PBFT over one shard of transactions.
    CommitteeId,
    u32,
    "committee-"
);

define_id!(
    /// Identifier of an epoch `j ∈ J`; one global block is appended to the
    /// root chain per epoch.
    EpochId,
    u64,
    "epoch-"
);

define_id!(
    /// Identifier of a shard — the agreed transaction set produced by one
    /// member committee within one epoch.
    ShardId,
    u32,
    "shard-"
);

define_id!(
    /// Identifier of a single transaction.
    TxId,
    u64,
    "tx-"
);

define_id!(
    /// Identifier of a transaction block in the (synthetic) Bitcoin trace.
    BlockId,
    u64,
    "block-"
);

impl EpochId {
    /// The first epoch.
    pub const GENESIS: EpochId = EpochId(0);

    /// Returns the epoch that follows this one.
    #[inline]
    pub const fn next(self) -> EpochId {
        EpochId(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId(7).to_string(), "node-7");
        assert_eq!(CommitteeId(3).to_string(), "committee-3");
        assert_eq!(EpochId(0).to_string(), "epoch-0");
        assert_eq!(ShardId(12).to_string(), "shard-12");
        assert_eq!(TxId(99).to_string(), "tx-99");
        assert_eq!(BlockId(5).to_string(), "block-5");
    }

    #[test]
    fn ids_round_trip_through_primitives() {
        let id = CommitteeId::from(42u32);
        assert_eq!(u32::from(id), 42);
        assert_eq!(id.value(), 42);
        assert_eq!(id.index(), 42usize);
    }

    #[test]
    fn epoch_next_increments() {
        assert_eq!(EpochId::GENESIS.next(), EpochId(1));
        assert_eq!(EpochId(9).next(), EpochId(10));
    }

    #[test]
    fn ids_order_numerically() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EpochId(10) > EpochId(9));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&CommitteeId(5)).unwrap();
        assert_eq!(json, "5");
        let back: CommitteeId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, CommitteeId(5));
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property; this test documents the intent.
        fn takes_node(_: NodeId) {}
        takes_node(NodeId(1));
    }
}
