//! The per-shard features the final committee evaluates.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::id::CommitteeId;
use crate::latency::TwoPhaseLatency;
use crate::time::SimTime;

/// The two features a member committee reports to the final committee at
/// the beginning of an epoch (paper §III-A):
///
/// * `l_i` — its [two-phase latency](TwoPhaseLatency), and
/// * `s_i` — the number of transactions packaged in its shard.
///
/// A `ShardInfo` is exactly one candidate item of the MVCom selection
/// problem; it is deliberately small and `Clone`-cheap because the
/// stochastic-exploration sampler copies instances freely.
///
/// # Example
///
/// ```
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// let shard = ShardInfo::new(
///     CommitteeId(0),
///     1_000,
///     TwoPhaseLatency::new(SimTime::from_secs(700.0), SimTime::from_secs(60.0)),
/// );
/// assert_eq!(shard.tx_count(), 1_000);
/// assert_eq!(shard.two_phase_latency().as_secs(), 760.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardInfo {
    committee: CommitteeId,
    tx_count: u64,
    latency: TwoPhaseLatency,
}

impl ShardInfo {
    /// Creates the feature record for one submitted shard.
    #[inline]
    pub fn new(committee: CommitteeId, tx_count: u64, latency: TwoPhaseLatency) -> ShardInfo {
        ShardInfo {
            committee,
            tx_count,
            latency,
        }
    }

    /// The committee that produced this shard.
    #[inline]
    pub fn committee(&self) -> CommitteeId {
        self.committee
    }

    /// `s_i`: the number of transactions packaged in this shard.
    #[inline]
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// The committee's two-phase latency broken into its components.
    #[inline]
    pub fn latency(&self) -> TwoPhaseLatency {
        self.latency
    }

    /// `l_i`: the total two-phase latency used in the MVCom objective.
    #[inline]
    pub fn two_phase_latency(&self) -> SimTime {
        self.latency.total()
    }

    /// Returns a copy of this shard with its latency reduced by `ddl`
    /// (clamped at zero) — the Fig. 3 carry-over applied when the shard was
    /// refused in the previous epoch and re-enters the next one.
    #[must_use]
    pub fn carried_over(&self, ddl: SimTime) -> ShardInfo {
        ShardInfo {
            committee: self.committee,
            tx_count: self.tx_count,
            latency: self.latency.carried_over(ddl),
        }
    }
}

impl fmt::Display for ShardInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard from {} with {} txs, latency {}",
            self.committee,
            self.tx_count,
            self.latency.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(txs: u64, total_latency: f64) -> ShardInfo {
        ShardInfo::new(
            CommitteeId(1),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(total_latency)),
        )
    }

    #[test]
    fn accessors() {
        let s = shard(500, 120.0);
        assert_eq!(s.committee(), CommitteeId(1));
        assert_eq!(s.tx_count(), 500);
        assert_eq!(s.two_phase_latency().as_secs(), 120.0);
    }

    #[test]
    fn carried_over_reduces_latency() {
        let s = shard(500, 120.0);
        let c = s.carried_over(SimTime::from_secs(100.0));
        assert_eq!(c.two_phase_latency().as_secs(), 20.0);
        assert_eq!(c.tx_count(), 500);
        assert_eq!(c.committee(), s.committee());
    }

    #[test]
    fn carried_over_clamps_at_zero() {
        let s = shard(500, 120.0);
        let c = s.carried_over(SimTime::from_secs(500.0));
        assert_eq!(c.two_phase_latency(), SimTime::ZERO);
    }

    #[test]
    fn display_contains_features() {
        let s = shard(42, 10.0);
        let text = s.to_string();
        assert!(text.contains("42 txs"));
        assert!(text.contains("committee-1"));
    }

    #[test]
    fn serde_round_trip() {
        let s = shard(7, 33.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: ShardInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
