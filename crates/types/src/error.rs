//! The shared error type of the MVCom workspace.

use std::fmt;

use crate::id::CommitteeId;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced by MVCom components.
///
/// Every public fallible operation in the workspace returns this type, so
/// callers can match once regardless of which layer failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A problem instance violates a structural requirement (e.g. empty
    /// shard set, zero capacity).
    InvalidInstance {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// The constraint set admits no feasible solution (e.g. `N_min` exceeds
    /// the number of shards, or even the `N_min` smallest shards exceed the
    /// block capacity).
    Infeasible {
        /// Human-readable description of the conflict.
        reason: String,
    },
    /// A configuration parameter is out of its documented domain.
    InvalidConfig {
        /// The offending parameter name.
        parameter: &'static str,
        /// Why the value is rejected.
        reason: String,
    },
    /// An operation referenced a committee unknown to the current epoch.
    UnknownCommittee(CommitteeId),
    /// A dynamic event (join/leave) arrived for a committee in the wrong
    /// state — e.g. a join for a committee that is already live.
    InvalidEvent {
        /// The committee the event targeted.
        committee: CommitteeId,
        /// Why the event is rejected.
        reason: String,
    },
    /// The simulator was asked to do something inconsistent with its state
    /// (e.g. scheduling an event in the past).
    Simulation {
        /// Human-readable description.
        reason: String,
    },
    /// A solver ran out of its iteration budget before reaching a feasible
    /// or converged solution.
    NotConverged {
        /// Iterations actually spent.
        iterations: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidInstance { reason } => write!(f, "invalid problem instance: {reason}"),
            Error::Infeasible { reason } => write!(f, "no feasible solution exists: {reason}"),
            Error::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration `{parameter}`: {reason}")
            }
            Error::UnknownCommittee(id) => write!(f, "unknown committee {id}"),
            Error::InvalidEvent { committee, reason } => {
                write!(f, "invalid dynamic event for {committee}: {reason}")
            }
            Error::Simulation { reason } => write!(f, "simulation error: {reason}"),
            Error::NotConverged { iterations } => {
                write!(f, "solver did not converge within {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Shorthand constructor for [`Error::InvalidInstance`].
    pub fn invalid_instance(reason: impl Into<String>) -> Error {
        Error::InvalidInstance {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`Error::Infeasible`].
    pub fn infeasible(reason: impl Into<String>) -> Error {
        Error::Infeasible {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`Error::InvalidConfig`].
    pub fn invalid_config(parameter: &'static str, reason: impl Into<String>) -> Error {
        Error::InvalidConfig {
            parameter,
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`Error::Simulation`].
    pub fn simulation(reason: impl Into<String>) -> Error {
        Error::Simulation {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<Error> = vec![
            Error::invalid_instance("empty shard set"),
            Error::infeasible("N_min=10 but only 3 shards arrived"),
            Error::invalid_config("beta", "must be positive"),
            Error::UnknownCommittee(CommitteeId(9)),
            Error::InvalidEvent {
                committee: CommitteeId(2),
                reason: "already live".into(),
            },
            Error::simulation("event scheduled in the past"),
            Error::NotConverged { iterations: 100 },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(Error::NotConverged { iterations: 5 });
        assert!(err.to_string().contains('5'));
    }
}
