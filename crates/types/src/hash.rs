//! A 256-bit hash value and a fast non-cryptographic digest.
//!
//! The simulator needs block hashes (`bhash` in the dataset schema) and
//! PoW-style hash puzzles, but cryptographic strength is irrelevant for a
//! scheduling simulation. [`Hash32`] carries 32 bytes; [`Hash32::digest`]
//! computes a SplitMix64-based mixing digest that is deterministic across
//! platforms, well distributed, and fast.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 256-bit (32-byte) hash value.
///
/// # Example
///
/// ```
/// use mvcom_types::Hash32;
///
/// let h = Hash32::digest(b"hello world");
/// assert_eq!(h, Hash32::digest(b"hello world"));
/// assert_ne!(h, Hash32::digest(b"hello worle"));
/// assert_eq!(h.to_hex().len(), 64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Hash32(pub [u8; 32]);

/// SplitMix64 finalizer: a strong 64-bit mixing function.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Hash32 {
    /// The all-zero hash.
    pub const ZERO: Hash32 = Hash32([0u8; 32]);

    /// Computes a deterministic, well-mixed (non-cryptographic) 256-bit
    /// digest of `data`.
    ///
    /// Internally runs four interleaved SplitMix64 lanes over the input,
    /// seeded with distinct constants, then finalizes each lane with the
    /// input length. This is *not* collision-resistant against adversaries;
    /// it exists to give the simulator realistic-looking, uniformly
    /// distributed hashes without a crypto dependency.
    pub fn digest(data: &[u8]) -> Hash32 {
        let mut lanes: [u64; 4] = [
            0x6A09_E667_F3BC_C908,
            0xBB67_AE85_84CA_A73B,
            0x3C6E_F372_FE94_F82B,
            0xA54F_F53A_5F1D_36F1,
        ];
        for chunk in data.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let w = u64::from_le_bytes(word);
            for (i, lane) in lanes.iter_mut().enumerate() {
                *lane = splitmix64(*lane ^ w.rotate_left(i as u32 * 16 + 1));
            }
        }
        let len = data.len() as u64;
        let mut out = [0u8; 32];
        for (i, lane) in lanes.iter().enumerate() {
            let finalized = splitmix64(lane ^ splitmix64(len ^ (i as u64)));
            out[i * 8..(i + 1) * 8].copy_from_slice(&finalized.to_le_bytes());
        }
        Hash32(out)
    }

    /// Digest of a `u64` seed — convenient for PoW nonce trials.
    pub fn digest_u64(value: u64) -> Hash32 {
        Hash32::digest(&value.to_le_bytes())
    }

    /// Returns the raw bytes.
    #[inline]
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Interprets the first 8 bytes as a little-endian `u64` — used to
    /// compare a PoW trial against a difficulty target.
    #[inline]
    pub fn prefix_u64(&self) -> u64 {
        // lint: allow(P1, Hash32 wraps a fixed [u8; 32]; the first 8 bytes always exist)
        u64::from_le_bytes(self.0[..8].try_into().expect("slice is 8 bytes"))
    }

    /// Number of leading zero *bits*, reading the hash as a big-endian
    /// 256-bit integer — the classic PoW difficulty measure.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut zeros = 0u32;
        for &byte in &self.0 {
            if byte == 0 {
                zeros += 8;
            } else {
                zeros += byte.leading_zeros();
                break;
            }
        }
        zeros
    }

    /// Lowercase hexadecimal rendering (64 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for byte in self.0 {
            use fmt::Write;
            // lint: allow(P1, fmt::Write to a String is infallible)
            write!(s, "{byte:02x}").expect("writing to String cannot fail");
        }
        s
    }
}

impl fmt::Debug for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash32({}…)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; 32]> for Hash32 {
    #[inline]
    fn from(bytes: [u8; 32]) -> Self {
        Hash32(bytes)
    }
}

impl AsRef<[u8]> for Hash32 {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(Hash32::digest(b"abc"), Hash32::digest(b"abc"));
        assert_eq!(Hash32::digest_u64(42), Hash32::digest_u64(42));
    }

    #[test]
    fn digest_differs_on_input_change() {
        assert_ne!(Hash32::digest(b"abc"), Hash32::digest(b"abd"));
        assert_ne!(Hash32::digest(b""), Hash32::digest(b"\0"));
        // Length is mixed in, so a zero-padded prefix must not collide.
        assert_ne!(Hash32::digest(b"ab"), Hash32::digest(b"ab\0"));
    }

    #[test]
    fn hex_is_64_lowercase_chars() {
        let hex = Hash32::digest(b"x").to_hex();
        assert_eq!(hex.len(), 64);
        assert!(hex
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn no_collisions_over_small_corpus() {
        let hashes: HashSet<Hash32> = (0u64..10_000).map(Hash32::digest_u64).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn prefix_u64_is_roughly_uniform() {
        // Mean of uniform u64 is 2^63; over 4096 samples the sample mean
        // should land within 5% of it.
        let n = 4096u64;
        let mean: f64 = (0..n)
            .map(|i| Hash32::digest_u64(i).prefix_u64() as f64)
            .sum::<f64>()
            / n as f64;
        let expected = 2f64.powi(63);
        assert!((mean - expected).abs() / expected < 0.05, "mean={mean:e}");
    }

    #[test]
    fn leading_zero_bits() {
        assert_eq!(Hash32::ZERO.leading_zero_bits(), 256);
        let mut one = [0u8; 32];
        one[0] = 0b0000_1000;
        assert_eq!(Hash32(one).leading_zero_bits(), 4);
        let mut full = [0u8; 32];
        full[0] = 0xFF;
        assert_eq!(Hash32(full).leading_zero_bits(), 0);
    }

    #[test]
    fn leading_zero_bits_distribution() {
        // P(leading_zero_bits >= k) = 2^-k; with 8192 samples we expect
        // about half to have >= 1 leading zero bit.
        let n = 8192;
        let at_least_one = (0..n)
            .filter(|&i| Hash32::digest_u64(i).leading_zero_bits() >= 1)
            .count();
        let frac = at_least_one as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn debug_is_truncated_display_is_full() {
        let h = Hash32::digest(b"z");
        assert!(format!("{h:?}").starts_with("Hash32("));
        assert_eq!(h.to_string().len(), 64);
    }
}
