//! Simulated time.
//!
//! The whole workspace measures time in *simulated seconds* on a single
//! monotone axis starting at `0.0`. [`SimTime`] is a thin wrapper around
//! `f64` that provides a **total order** (NaN is rejected at construction),
//! saturating subtraction, and the arithmetic the discrete-event simulator
//! and the scheduler need.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point on (or span of) the simulated time axis, in seconds.
///
/// `SimTime` doubles as both an instant and a duration, mirroring how the
/// paper treats latency values (`l_i`, `t_j`) as interchangeable scalars.
/// Values are always finite and non-negative except where produced by
/// [`SimTime::saturating_sub`], which clamps at zero.
///
/// # Example
///
/// ```
/// use mvcom_types::SimTime;
///
/// let formation = SimTime::from_secs(800.0);
/// let consensus = SimTime::from_secs(54.5);
/// assert_eq!((formation + consensus).as_secs(), 854.5);
/// assert!(formation > consensus);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A value greater than every finite instant; used as "never" / "∞"
    /// (e.g. the observed ping latency of a failed committee).
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Creates a time value from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative; simulated time is a monotone
    /// non-negative axis.
    #[inline]
    pub fn from_secs(secs: f64) -> SimTime {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative (got {secs})");
        SimTime(secs)
    }

    /// Creates a time value from milliseconds.
    #[inline]
    pub fn from_millis(millis: f64) -> SimTime {
        SimTime::from_secs(millis / 1000.0)
    }

    /// Returns the value in seconds.
    #[inline]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1000.0
    }

    /// Returns `true` if this value is the [`SimTime::INFINITY`] sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Subtraction that clamps at zero instead of going negative.
    ///
    /// Used for the cross-epoch DDL carry-over of paper Fig. 3: a refused
    /// committee re-enters the next epoch with latency
    /// `l' = saturating_sub(l, previous DDL)`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction forbids NaN, so total_cmp agrees with the numeric
        // order while keeping the impl panic-free.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞s")
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative; use
    /// [`SimTime::saturating_sub`] when the operands may be unordered.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.as_secs(), 1.5);
        assert_eq!(t.as_millis(), 1500.0);
        assert_eq!(SimTime::from_millis(250.0).as_secs(), 0.25);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn ordering_is_total_and_numeric() {
        let mut v = vec![
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::INFINITY,
            SimTime::from_secs(1.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(1.0),
                SimTime::from_secs(3.0),
                SimTime::INFINITY
            ]
        );
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(10.0);
        let b = SimTime::from_secs(4.0);
        assert_eq!((a + b).as_secs(), 14.0);
        assert_eq!((a - b).as_secs(), 6.0);
        assert_eq!((a * 2.0).as_secs(), 20.0);
        assert_eq!((a / 2.0).as_secs(), 5.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs(), 14.0);
        c -= b;
        assert_eq!(c.as_secs(), 10.0);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(5.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_secs(), 2.0);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn infinity_sentinel() {
        assert!(SimTime::INFINITY.is_infinite());
        assert!(!SimTime::from_secs(1e300).is_infinite());
        assert!(SimTime::INFINITY > SimTime::from_secs(1e300));
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimTime::INFINITY.to_string(), "∞s");
    }
}
