//! Core domain types shared by every crate in the MVCom workspace.
//!
//! This crate defines the vocabulary of the system reproduced from
//! *"MVCom: Scheduling Most Valuable Committees for the Large-Scale Sharded
//! Blockchain"* (ICDCS 2021): identifiers for nodes, committees, epochs and
//! shards; the simulated-time axis; the *two-phase latency* of a committee
//! (formation + intra-committee consensus); the per-shard features the final
//! committee evaluates; and the shared error type.
//!
//! Everything here is a plain data structure — no behaviour beyond
//! validation — so the simulator (`mvcom-simnet`, `mvcom-elastico`), the
//! consensus layer (`mvcom-pbft`) and the scheduler (`mvcom-core`) can
//! interoperate without depending on one another.
//!
//! # Example
//!
//! ```
//! use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
//!
//! let latency = TwoPhaseLatency::new(SimTime::from_secs(800.0), SimTime::from_secs(50.0));
//! let shard = ShardInfo::new(CommitteeId(3), 12_000, latency);
//! assert_eq!(shard.two_phase_latency().as_secs(), 850.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Unit tests may unwrap freely; library code goes through the P1 rule of
// `mvcom-lint` and the workspace `clippy::unwrap_used` deny set instead.
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod error;
pub mod hash;
pub mod id;
pub mod latency;
pub mod shard;
pub mod time;

pub use error::{Error, Result};
pub use hash::Hash32;
pub use id::{BlockId, CommitteeId, EpochId, NodeId, ShardId, TxId};
pub use latency::TwoPhaseLatency;
pub use latency::{approx_eq, max_by_f64, min_by_f64, sort_by_f64, sort_by_f64_desc};
pub use shard::ShardInfo;
pub use time::SimTime;
