//! The two-phase latency of a member committee.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// The *two-phase latency* of a member committee within one epoch.
///
/// The paper (§I, Fig. 2) defines this as the sum of:
///
/// 1. **formation latency** — the time the committee's nodes spend solving
///    the PoW identity puzzle and assembling the committee (Elastico
///    stages 1–2), and
/// 2. **consensus latency** — the time the committee spends running the
///    three PBFT phases to agree on its shard (Elastico stage 3).
///
/// The scheduler only ever consumes the total ([`TwoPhaseLatency::total`]),
/// but the split is preserved because Fig. 2 reports the two components
/// separately.
///
/// # Example
///
/// ```
/// use mvcom_types::{SimTime, TwoPhaseLatency};
///
/// let l = TwoPhaseLatency::new(SimTime::from_secs(600.0), SimTime::from_secs(54.5));
/// assert_eq!(l.total().as_secs(), 654.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct TwoPhaseLatency {
    formation: SimTime,
    consensus: SimTime,
}

impl TwoPhaseLatency {
    /// Creates a two-phase latency from its components.
    #[inline]
    pub fn new(formation: SimTime, consensus: SimTime) -> TwoPhaseLatency {
        TwoPhaseLatency {
            formation,
            consensus,
        }
    }

    /// Creates a latency whose total is `total`, attributed entirely to the
    /// formation phase. Useful when only the aggregate is known (e.g. when
    /// re-entering an epoch after a DDL carry-over).
    #[inline]
    pub fn from_total(total: SimTime) -> TwoPhaseLatency {
        TwoPhaseLatency {
            formation: total,
            consensus: SimTime::ZERO,
        }
    }

    /// The committee-formation latency (PoW election + overlay setup).
    #[inline]
    pub fn formation(self) -> SimTime {
        self.formation
    }

    /// The intra-committee PBFT consensus latency.
    #[inline]
    pub fn consensus(self) -> SimTime {
        self.consensus
    }

    /// The total two-phase latency `l_i` used by the MVCom objective.
    #[inline]
    pub fn total(self) -> SimTime {
        self.formation + self.consensus
    }

    /// Reduces the latency by `ddl`, clamping at zero — the Fig. 3 rule for
    /// a committee refused at epoch `j` re-entering epoch `j+1`.
    ///
    /// The reduction is applied to the formation component first (that phase
    /// happened earliest), then to the consensus component.
    pub fn carried_over(self, ddl: SimTime) -> TwoPhaseLatency {
        let new_formation = self.formation.saturating_sub(ddl);
        let remainder = ddl.saturating_sub(self.formation);
        TwoPhaseLatency {
            formation: new_formation,
            consensus: self.consensus.saturating_sub(remainder),
        }
    }
}

impl fmt::Display for TwoPhaseLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (formation {}, consensus {})",
            self.total(),
            self.formation,
            self.consensus
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn total_is_sum_of_phases() {
        let l = TwoPhaseLatency::new(secs(600.0), secs(54.5));
        assert_eq!(l.formation(), secs(600.0));
        assert_eq!(l.consensus(), secs(54.5));
        assert_eq!(l.total(), secs(654.5));
    }

    #[test]
    fn from_total_attributes_to_formation() {
        let l = TwoPhaseLatency::from_total(secs(100.0));
        assert_eq!(l.formation(), secs(100.0));
        assert_eq!(l.consensus(), SimTime::ZERO);
        assert_eq!(l.total(), secs(100.0));
    }

    #[test]
    fn carry_over_reduces_formation_first() {
        let l = TwoPhaseLatency::new(secs(600.0), secs(50.0));
        let carried = l.carried_over(secs(400.0));
        assert_eq!(carried.formation(), secs(200.0));
        assert_eq!(carried.consensus(), secs(50.0));
        assert_eq!(carried.total(), secs(250.0));
    }

    #[test]
    fn carry_over_spills_into_consensus() {
        let l = TwoPhaseLatency::new(secs(600.0), secs(50.0));
        let carried = l.carried_over(secs(620.0));
        assert_eq!(carried.formation(), SimTime::ZERO);
        assert_eq!(carried.consensus(), secs(30.0));
    }

    #[test]
    fn carry_over_clamps_at_zero() {
        let l = TwoPhaseLatency::new(secs(600.0), secs(50.0));
        let carried = l.carried_over(secs(10_000.0));
        assert_eq!(carried.total(), SimTime::ZERO);
    }

    #[test]
    fn ordering_follows_components() {
        let a = TwoPhaseLatency::new(secs(100.0), secs(1.0));
        let b = TwoPhaseLatency::new(secs(100.0), secs(2.0));
        assert!(a < b);
    }

    #[test]
    fn display_mentions_both_phases() {
        let l = TwoPhaseLatency::new(secs(1.0), secs(2.0));
        let s = l.to_string();
        assert!(s.contains("formation"));
        assert!(s.contains("consensus"));
    }
}
