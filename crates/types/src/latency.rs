//! The two-phase latency of a member committee, plus the total-order
//! float helpers ([`sort_by_f64`], [`max_by_f64`], [`approx_eq`]) that the
//! schedulers use wherever `f64` keys need ordering (lint rule F1).

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// The *two-phase latency* of a member committee within one epoch.
///
/// The paper (§I, Fig. 2) defines this as the sum of:
///
/// 1. **formation latency** — the time the committee's nodes spend solving
///    the PoW identity puzzle and assembling the committee (Elastico
///    stages 1–2), and
/// 2. **consensus latency** — the time the committee spends running the
///    three PBFT phases to agree on its shard (Elastico stage 3).
///
/// The scheduler only ever consumes the total ([`TwoPhaseLatency::total`]),
/// but the split is preserved because Fig. 2 reports the two components
/// separately.
///
/// # Example
///
/// ```
/// use mvcom_types::{SimTime, TwoPhaseLatency};
///
/// let l = TwoPhaseLatency::new(SimTime::from_secs(600.0), SimTime::from_secs(54.5));
/// assert_eq!(l.total().as_secs(), 654.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct TwoPhaseLatency {
    formation: SimTime,
    consensus: SimTime,
}

impl TwoPhaseLatency {
    /// Creates a two-phase latency from its components.
    #[inline]
    pub fn new(formation: SimTime, consensus: SimTime) -> TwoPhaseLatency {
        TwoPhaseLatency {
            formation,
            consensus,
        }
    }

    /// Creates a latency whose total is `total`, attributed entirely to the
    /// formation phase. Useful when only the aggregate is known (e.g. when
    /// re-entering an epoch after a DDL carry-over).
    #[inline]
    pub fn from_total(total: SimTime) -> TwoPhaseLatency {
        TwoPhaseLatency {
            formation: total,
            consensus: SimTime::ZERO,
        }
    }

    /// The committee-formation latency (PoW election + overlay setup).
    #[inline]
    pub fn formation(self) -> SimTime {
        self.formation
    }

    /// The intra-committee PBFT consensus latency.
    #[inline]
    pub fn consensus(self) -> SimTime {
        self.consensus
    }

    /// The total two-phase latency `l_i` used by the MVCom objective.
    #[inline]
    pub fn total(self) -> SimTime {
        self.formation + self.consensus
    }

    /// Reduces the latency by `ddl`, clamping at zero — the Fig. 3 rule for
    /// a committee refused at epoch `j` re-entering epoch `j+1`.
    ///
    /// The reduction is applied to the formation component first (that phase
    /// happened earliest), then to the consensus component.
    pub fn carried_over(self, ddl: SimTime) -> TwoPhaseLatency {
        let new_formation = self.formation.saturating_sub(ddl);
        let remainder = ddl.saturating_sub(self.formation);
        TwoPhaseLatency {
            formation: new_formation,
            consensus: self.consensus.saturating_sub(remainder),
        }
    }
}

impl fmt::Display for TwoPhaseLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (formation {}, consensus {})",
            self.total(),
            self.formation,
            self.consensus
        )
    }
}

// ---------------------------------------------------------------------------
// Total-order helpers for f64 keys (lint rule F1).
//
// `f64` is only `PartialOrd`, so `sort_by(|a, b| a.partial_cmp(b).unwrap())`
// panics on NaN and `==` comparisons silently mis-handle rounding. These
// helpers centralise the two sound alternatives — `total_cmp` ordering and
// tolerance-based equality — so call sites never spell either by hand.
// ---------------------------------------------------------------------------

/// Tolerance-based float equality: `|a - b| <= tol`, with `total_cmp`
/// equality as a backstop so identical non-finite values (both `+∞`, both
/// the same NaN bit pattern) still compare equal.
///
/// ```
/// use mvcom_types::latency::approx_eq;
///
/// assert!(approx_eq(0.1 + 0.2, 0.3, 1e-12));
/// assert!(!approx_eq(1.0, 1.1, 1e-12));
/// assert!(approx_eq(f64::INFINITY, f64::INFINITY, 1e-12));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol || a.total_cmp(&b) == Ordering::Equal
}

/// The item with the largest `f64` key under `total_cmp`, or `None` for an
/// empty iterator. NaN keys order above `+∞` (IEEE total order); ties keep
/// the *last* maximal item, matching [`Iterator::max_by`].
///
/// ```
/// use mvcom_types::latency::max_by_f64;
///
/// let best = max_by_f64(["a", "bb", "ccc"], |s| s.len() as f64);
/// assert_eq!(best, Some("ccc"));
/// ```
#[inline]
pub fn max_by_f64<T, I, F>(items: I, mut key: F) -> Option<T>
where
    I: IntoIterator<Item = T>,
    F: FnMut(&T) -> f64,
{
    items.into_iter().max_by(|a, b| key(a).total_cmp(&key(b)))
}

/// The item with the smallest `f64` key under `total_cmp`, or `None` for an
/// empty iterator. Ties keep the *first* minimal item, matching
/// [`Iterator::min_by`].
#[inline]
pub fn min_by_f64<T, I, F>(items: I, mut key: F) -> Option<T>
where
    I: IntoIterator<Item = T>,
    F: FnMut(&T) -> f64,
{
    items.into_iter().min_by(|a, b| key(a).total_cmp(&key(b)))
}

/// Sorts `items` ascending by an `f64` key under `total_cmp`. The sort is
/// stable and never panics: NaN keys sort to the end instead of aborting
/// the scheduler mid-epoch.
#[inline]
pub fn sort_by_f64<T, F>(items: &mut [T], mut key: F)
where
    F: FnMut(&T) -> f64,
{
    items.sort_by(|a, b| key(a).total_cmp(&key(b)));
}

/// Sorts `items` descending by an `f64` key under `total_cmp` — the shape
/// every greedy/repair pass uses ("best candidate first"). Stable, so
/// equal-key candidates keep their index order (deterministic across
/// seeds, lint rule D1).
#[inline]
pub fn sort_by_f64_desc<T, F>(items: &mut [T], mut key: F)
where
    F: FnMut(&T) -> f64,
{
    items.sort_by(|a, b| key(b).total_cmp(&key(a)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn total_is_sum_of_phases() {
        let l = TwoPhaseLatency::new(secs(600.0), secs(54.5));
        assert_eq!(l.formation(), secs(600.0));
        assert_eq!(l.consensus(), secs(54.5));
        assert_eq!(l.total(), secs(654.5));
    }

    #[test]
    fn from_total_attributes_to_formation() {
        let l = TwoPhaseLatency::from_total(secs(100.0));
        assert_eq!(l.formation(), secs(100.0));
        assert_eq!(l.consensus(), SimTime::ZERO);
        assert_eq!(l.total(), secs(100.0));
    }

    #[test]
    fn carry_over_reduces_formation_first() {
        let l = TwoPhaseLatency::new(secs(600.0), secs(50.0));
        let carried = l.carried_over(secs(400.0));
        assert_eq!(carried.formation(), secs(200.0));
        assert_eq!(carried.consensus(), secs(50.0));
        assert_eq!(carried.total(), secs(250.0));
    }

    #[test]
    fn carry_over_spills_into_consensus() {
        let l = TwoPhaseLatency::new(secs(600.0), secs(50.0));
        let carried = l.carried_over(secs(620.0));
        assert_eq!(carried.formation(), SimTime::ZERO);
        assert_eq!(carried.consensus(), secs(30.0));
    }

    #[test]
    fn carry_over_clamps_at_zero() {
        let l = TwoPhaseLatency::new(secs(600.0), secs(50.0));
        let carried = l.carried_over(secs(10_000.0));
        assert_eq!(carried.total(), SimTime::ZERO);
    }

    #[test]
    fn ordering_follows_components() {
        let a = TwoPhaseLatency::new(secs(100.0), secs(1.0));
        let b = TwoPhaseLatency::new(secs(100.0), secs(2.0));
        assert!(a < b);
    }

    #[test]
    fn display_mentions_both_phases() {
        let l = TwoPhaseLatency::new(secs(1.0), secs(2.0));
        let s = l.to_string();
        assert!(s.contains("formation"));
        assert!(s.contains("consensus"));
    }

    #[test]
    fn approx_eq_handles_rounding_and_non_finite_values() {
        assert!(approx_eq(0.1 + 0.2, 0.3, 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6, 1e-12));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(approx_eq(f64::NAN, f64::NAN, 0.0));
        assert!(!approx_eq(f64::NAN, 0.0, 1e9));
    }

    #[test]
    fn max_and_min_by_f64_survive_nan_keys() {
        let xs = [2.0, f64::NAN, 1.0, 3.0];
        // NaN is the IEEE total-order maximum; the minimum stays finite.
        assert!(max_by_f64(xs, |&x| x).unwrap().is_nan());
        assert_eq!(min_by_f64(xs, |&x| x), Some(1.0));
        assert_eq!(max_by_f64(std::iter::empty::<f64>(), |&x| x), None);
    }

    #[test]
    fn sorts_are_stable_and_nan_safe() {
        let mut pairs = [(0, 2.0), (1, 1.0), (2, 2.0), (3, f64::NAN)];
        sort_by_f64(&mut pairs, |p| p.1);
        assert_eq!(pairs.map(|p| p.0), [1, 0, 2, 3]); // equal keys keep order
        sort_by_f64_desc(&mut pairs, |p| p.1);
        assert_eq!(pairs.map(|p| p.0), [3, 0, 2, 1]);
    }
}
