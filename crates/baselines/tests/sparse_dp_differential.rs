//! Differential testing: the sparse (dominant-state) knapsack DP against
//! the dense-table DP it replaces at scale, plus the pruning invariant
//! that makes the sparse solver trustworthy — the Pareto frontier never
//! drops a dominant state.
//!
//! Solutions may legitimately differ between the two solvers when several
//! selections achieve the optimal value (reconstruction walks different
//! but equal-value paths), so agreement is asserted on utility and
//! feasibility, not on the selection bitset.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom_baselines::dp::DpConfig;
use mvcom_baselines::sparse_dp::{pareto_frontier, SparseDpSolver};
use mvcom_baselines::{check_outcome, DpSolver, Solver};
use mvcom_core::problem::{DdlPolicy, Instance, InstanceBuilder};
use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
use proptest::prelude::*;

/// A random instance at the satellite's |I| ≤ 500 differential scale:
/// tight-ish capacity so the knapsack actually binds, either deadline
/// policy so the MaxSelected rejection path is exercised too.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((1u64..3_000, 0u32..400), 2..500),
        1u32..20,
        1u64..40,
        0usize..3,
        prop_oneof![Just(DdlPolicy::MaxArrival), Just(DdlPolicy::MaxSelected)],
    )
        .prop_map(|(shards, alpha_half, cap_pct, n_min_div, policy)| {
            let total: u64 = shards.iter().map(|&(txs, _)| txs).sum();
            let n_min = match n_min_div {
                0 => 0,
                _ => shards.len() / (2 * n_min_div),
            };
            // The builder requires the N_min smallest shards to fit, so
            // floor the capacity there; otherwise 2.5%–100% of the total
            // size, from very tight to slack.
            let mut sizes: Vec<u64> = shards.iter().map(|&(txs, _)| txs).collect();
            sizes.sort_unstable();
            let n_min_floor: u64 = sizes.iter().take(n_min).sum();
            let capacity = (total * cap_pct * 25 / 1000).max(1).max(n_min_floor);
            InstanceBuilder::new()
                .alpha(f64::from(alpha_half) * 0.5)
                .capacity(capacity)
                .n_min(n_min)
                .ddl_policy(policy)
                .shards(
                    shards
                        .iter()
                        .enumerate()
                        .map(|(i, &(txs, lat_step))| {
                            ShardInfo::new(
                                CommitteeId(i as u32),
                                txs,
                                TwoPhaseLatency::from_total(SimTime::from_secs(
                                    f64::from(lat_step) * 2.5,
                                )),
                            )
                        })
                        .collect(),
                )
                .build()
                .expect("generated instances are valid")
        })
}

proptest! {
    /// Sparse and dense DP agree on every instance — same optimal value
    /// (to float-reassociation tolerance), both feasible, or the *same*
    /// rejection/infeasibility verdict.
    #[test]
    fn sparse_and_dense_dp_agree(
        inst in arb_instance(),
        max_buckets in prop_oneof![Just(16usize), Just(128), Just(512), Just(4096)],
    ) {
        let config = DpConfig { max_buckets };
        let dense = DpSolver::new(config).solve(&inst);
        let sparse = SparseDpSolver::new(config).solve(&inst);
        match (dense, sparse) {
            (Ok(dense), Ok(sparse)) => {
                check_outcome(&inst, &dense).unwrap();
                check_outcome(&inst, &sparse).unwrap();
                let tol = 1e-9 * (1.0 + dense.best_utility.abs());
                prop_assert!(
                    (dense.best_utility - sparse.best_utility).abs() < tol,
                    "dense {} vs sparse {}", dense.best_utility, sparse.best_utility
                );
            }
            (Err(dense), Err(sparse)) => {
                // Same failure class: MaxSelected rejection or repair
                // infeasibility — never one succeeding where the other
                // fails.
                prop_assert_eq!(dense.to_string(), sparse.to_string());
            }
            (dense, sparse) => {
                return Err(TestCaseError::fail(format!(
                    "solvers disagree on solvability: dense {dense:?} vs sparse {sparse:?}"
                )));
            }
        }
    }

    /// Pruning invariant: the frontier is strictly increasing in weight
    /// and value (no dominated state kept), and every achievable state of
    /// the exhaustive subset enumeration is dominated by some frontier
    /// state (no dominant state ever dropped).
    #[test]
    fn pruning_never_drops_a_dominant_state(
        items in proptest::collection::vec((0u32..12, -5.0f64..25.0), 1..12),
        buckets in 1u32..40,
    ) {
        let weights: Vec<u32> = items.iter().map(|&(w, _)| w).collect();
        let values: Vec<f64> = items.iter().map(|&(_, v)| v).collect();
        let frontier = pareto_frontier(&weights, &values, buckets);
        for pair in frontier.windows(2) {
            prop_assert!(pair[0].weight < pair[1].weight, "{:?}", frontier);
            prop_assert!(pair[0].value < pair[1].value, "{:?}", frontier);
        }
        // Exhaustive ground truth over all subsets of the DP-eligible
        // items (the solver skips non-positive values and over-budget
        // weights by construction).
        let eligible: Vec<(u32, f64)> = items
            .iter()
            .copied()
            .filter(|&(w, v)| v > 0.0 && w <= buckets)
            .collect();
        for mask in 0u32..(1 << eligible.len()) {
            let (mut w, mut v) = (0u64, 0.0f64);
            for (bit, &(wi, vi)) in eligible.iter().enumerate() {
                if mask >> bit & 1 == 1 {
                    w += u64::from(wi);
                    v += vi;
                }
            }
            if w > u64::from(buckets) {
                continue;
            }
            let dominated = frontier
                .iter()
                .any(|s| u64::from(s.weight) <= w && s.value >= v - 1e-9 * (1.0 + v.abs()));
            prop_assert!(
                dominated,
                "achievable state (w={w}, v={v}) not dominated by any frontier state: {frontier:?}"
            );
        }
    }
}
