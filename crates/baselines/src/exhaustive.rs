//! Exact optimum by exhaustive enumeration — the ground truth for tests.

use mvcom_core::{Instance, Solution};
use mvcom_types::{Error, Result};

use crate::{Solver, SolverOutcome};

/// Enumerates all `2^|I|` selections and returns the feasible optimum.
///
/// Limited to 26 shards (2²⁶ ≈ 6.7·10⁷ states); intended for validating the
/// heuristic solvers, not for production use.
///
/// # Example
///
/// ```
/// use mvcom_baselines::{ExhaustiveSolver, Solver};
/// use mvcom_core::problem::InstanceBuilder;
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// # fn main() -> Result<(), mvcom_types::Error> {
/// let instance = InstanceBuilder::new()
///     .alpha(2.0)
///     .capacity(250)
///     .shards((0..8).map(|i| ShardInfo::new(
///         CommitteeId(i), 50 + u64::from(i) * 10,
///         TwoPhaseLatency::from_total(SimTime::from_secs(100.0 + f64::from(i))),
///     )).collect())
///     .build()?;
/// let outcome = ExhaustiveSolver::new().solve(&instance)?;
/// assert!(instance.is_feasible(&outcome.best_solution));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSolver {
    _private: (),
}

impl ExhaustiveSolver {
    /// Creates the solver.
    pub fn new() -> ExhaustiveSolver {
        ExhaustiveSolver { _private: () }
    }
}

impl Solver for ExhaustiveSolver {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn solve(&self, instance: &Instance) -> Result<SolverOutcome> {
        let n = instance.len();
        if n > 26 {
            return Err(Error::invalid_instance(format!(
                "exhaustive enumeration capped at 26 shards, got {n}"
            )));
        }
        let mut best: Option<(f64, u64)> = None;
        for mask in 0u64..(1 << n) {
            if (mask.count_ones() as usize) < instance.n_min() {
                continue;
            }
            // Cheap capacity pre-check before building the Solution.
            let total: u64 = (0..n)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| instance.shards()[i].tx_count())
                .sum();
            if total > instance.capacity() {
                continue;
            }
            let sol = Solution::from_indices(n, (0..n).filter(|&i| mask >> i & 1 == 1), instance);
            let u = instance.utility(&sol);
            if best.is_none_or(|(bu, _)| u > bu) {
                best = Some((u, mask));
            }
        }
        let (best_utility, mask) =
            best.ok_or_else(|| Error::infeasible("no selection satisfies the constraints"))?;
        let best_solution =
            Solution::from_indices(n, (0..n).filter(|&i| mask >> i & 1 == 1), instance);
        Ok(SolverOutcome {
            solver: self.name().to_string(),
            best_utility,
            best_solution,
            trajectory: vec![(0, best_utility)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_outcome;
    use crate::test_support::tiny;
    use mvcom_core::problem::InstanceBuilder;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};

    #[test]
    fn finds_the_true_optimum() {
        let inst = tiny();
        let outcome = ExhaustiveSolver::new().solve(&inst).unwrap();
        check_outcome(&inst, &outcome).unwrap();
        // No feasible solution may beat it (spot-check a few).
        let all: Vec<usize> = (0..inst.len()).collect();
        for k in inst.n_min()..=inst.len().min(6) {
            let sol =
                mvcom_core::Solution::from_indices(inst.len(), all[..k].iter().copied(), &inst);
            if inst.is_feasible(&sol) {
                assert!(inst.utility(&sol) <= outcome.best_utility + 1e-9);
            }
        }
    }

    #[test]
    fn respects_n_min() {
        let inst = tiny();
        let outcome = ExhaustiveSolver::new().solve(&inst).unwrap();
        assert!(outcome.best_solution.selected_count() >= inst.n_min());
    }

    #[test]
    fn rejects_large_instances() {
        let inst = InstanceBuilder::new()
            .capacity(10_000)
            .shards(
                (0..27)
                    .map(|i| {
                        ShardInfo::new(
                            CommitteeId(i),
                            10,
                            TwoPhaseLatency::from_total(SimTime::from_secs(1.0 + f64::from(i))),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap();
        assert!(ExhaustiveSolver::new().solve(&inst).is_err());
    }

    #[test]
    fn selects_empty_when_all_marginals_negative_and_n_min_zero() {
        // One huge-age shard, alpha small: best is to select nothing.
        let inst = InstanceBuilder::new()
            .alpha(0.001)
            .capacity(1_000)
            .n_min(0)
            .shards(vec![
                ShardInfo::new(
                    CommitteeId(0),
                    100,
                    TwoPhaseLatency::from_total(SimTime::from_secs(0.0)),
                ),
                ShardInfo::new(
                    CommitteeId(1),
                    100,
                    TwoPhaseLatency::from_total(SimTime::from_secs(10_000.0)),
                ),
            ])
            .build()
            .unwrap();
        let outcome = ExhaustiveSolver::new().solve(&inst).unwrap();
        // Selecting shard 1 (zero age) gains 0.1; shard 0 loses ~10000.
        assert_eq!(
            outcome.best_solution.iter_selected().collect::<Vec<_>>(),
            vec![1]
        );
    }
}
